"""Kernel effect summaries: replay-safety classification of shared state.

The paper's transport (S6) is "windows that fit a packet" over UDP, and
:meth:`repro.runtime.host_rt.NclHost.retransmit_window` happily re-fires
a window whose kernel may already have executed on the switch. Whether
that is *correct* depends entirely on what the kernel does to shared
switch state. This module computes, per kernel and per shared symbol
(``_net_`` register array or ``ncl::BloomFilter``), where the update
sits in the **effect lattice**:

``none``
    the kernel never writes the symbol;
``idempotent``
    re-executing the kernel on the same window bytes leaves the symbol
    unchanged: a pure overwrite with a replay-stable value (window data,
    window metadata, constants), an ``|=``/``&=`` fold, a min/max-style
    ``Select`` clamp, or a Bloom-filter insert;
``monoid``
    a commutative fold (``+=``, ``-=``, ``^=``) of a replay-stable
    delta: replays commute but do not collapse -- re-execution changes
    the result (the classic double-count);
``unsafe``
    any other read-modify-write, or a write whose value or index
    depends on mutable switch state -- re-execution may produce an
    arbitrarily different result.

Orthogonally the analysis recognizes two **dedup-guard idioms** that
turn a ``monoid``/``unsafe`` update into an at-most-once one:

* *seq-dedup* (pattern A): the update is control-dependent on a compare
  of a ``_net_`` mark register indexed by a window-pure expression, and
  the same path stores a mark to that register;
* *bloom-dedup* (pattern B): the update sits on the miss branch of an
  ``ncl::bf_query`` whose path also performs the matching
  ``ncl::bf_insert``.

Findings are graded like the absint rules: ``proved`` when replay
provably changes the result (e.g. a ``+=`` delta proved non-zero by the
abstract interpreter), ``possible`` when the evidence admits it. The
summaries feed the protocol model checker in
:mod:`repro.analysis.proto`, the ``--emit effects`` dump, and the
per-tenant replay-safety verdicts of the deployment checker.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.absint import FunctionFacts, analyze_function
from repro.nir import ir

# -- the effect lattice -------------------------------------------------------

KIND_NONE = "none"
KIND_IDEMPOTENT = "idempotent"
KIND_MONOID = "monoid"
KIND_UNSAFE = "unsafe"

_KIND_ORDER = {KIND_NONE: 0, KIND_IDEMPOTENT: 1, KIND_MONOID: 2, KIND_UNSAFE: 3}

#: folds where applying twice equals applying once (x | c | c == x | c)
_IDEMPOTENT_FOLDS = frozenset({"or", "and"})
#: commutative folds where replays accumulate (x + c + c != x + c)
_MONOID_FOLDS = frozenset({"add", "sub", "xor"})

_GRADE_ORDER = {"proved": 1, "possible": 0}


def _worst_kind(kinds: List[str]) -> str:
    worst = KIND_NONE
    for kind in kinds:
        if _KIND_ORDER[kind] > _KIND_ORDER[worst]:
            worst = kind
    return worst


# -- analysis results ---------------------------------------------------------


class GuardInfo:
    """One recognized dedup guard in a kernel."""

    __slots__ = ("symbol", "space", "style", "branch", "miss_block", "grade")

    def __init__(
        self,
        symbol: str,
        space: str,
        style: str,
        branch: ir.CondBr,
        miss_block: ir.Block,
        grade: str,
    ) -> None:
        self.symbol = symbol
        self.space = space
        #: 'seq-dedup' (register mark) or 'bloom-dedup' (filter insert)
        self.style = style
        self.branch = branch
        self.miss_block = miss_block
        self.grade = grade


class EffectSite:
    """One instruction that updates a shared symbol."""

    __slots__ = (
        "instr", "symbol", "op", "kind", "fold", "grade", "guarded",
        "guard", "detail", "deps",
    )

    def __init__(
        self,
        instr: ir.Instr,
        symbol: str,
        op: str,
        kind: str,
        fold: Optional[str],
        grade: str,
        guarded: bool,
        guard: Optional[GuardInfo],
        detail: str,
        deps: FrozenSet[str],
    ) -> None:
        self.instr = instr
        self.symbol = symbol
        #: 'store' | 'memcpy' | 'bloom-insert'
        self.op = op
        self.kind = kind
        #: fold operator for read-modify-writes ('add', 'or', 'min', ...)
        self.fold = fold
        self.grade = grade
        self.guarded = guarded
        self.guard = guard
        self.detail = detail
        #: mutable state the stored value/index depends on, as sorted tokens
        self.deps = deps

    @property
    def line(self) -> int:
        loc = self.instr.loc
        return int(loc.line) if loc is not None else 0


class SymbolEffect:
    """The per-symbol join of every effect site in one kernel."""

    __slots__ = ("name", "space", "at_label", "kind", "guarded",
                 "partial_guard", "grade", "sites")

    def __init__(self, name: str, space: str, at_label: Optional[str],
                 sites: List[EffectSite]) -> None:
        self.name = name
        self.space = space
        self.at_label = at_label
        self.sites = sites
        self.kind = _worst_kind([s.kind for s in sites])
        guarded_flags = [s.guarded for s in sites]
        self.guarded = bool(sites) and all(guarded_flags)
        self.partial_guard = any(guarded_flags) and not all(guarded_flags)
        # the join grade: 'proved' only if every hazardous site is proved
        hazardous = [s for s in sites if s.kind != KIND_IDEMPOTENT]
        graded = hazardous or sites
        self.grade = (
            "proved"
            if all(s.grade == "proved" for s in graded)
            else "possible"
        )


class KernelEffects:
    """Effect summary for one kernel function."""

    __slots__ = ("function", "guards", "symbols")

    def __init__(self, function: str, guards: List[GuardInfo],
                 symbols: Dict[str, SymbolEffect]) -> None:
        self.function = function
        self.guards = guards
        self.symbols = symbols

    @property
    def replay_safe(self) -> bool:
        """True when every shared-state update is idempotent or covered
        by a dedup guard (at-most-once under replay)."""
        return all(
            sym.kind == KIND_IDEMPOTENT or sym.guarded
            for sym in self.symbols.values()
        )

    @property
    def verdict(self) -> str:
        """The per-window effect-semantics verdict this summary alone
        supports: 'exactly-once' (all idempotent -- replays converge),
        'at-most-once' (non-idempotent but guarded), or 'unsafe'."""
        if not self.replay_safe:
            return "unsafe"
        if any(
            sym.kind != KIND_IDEMPOTENT for sym in self.symbols.values()
        ):
            return "at-most-once"
        return "exactly-once"


# -- value dependence ---------------------------------------------------------


def _same_value(a: ir.Value, b: ir.Value, depth: int = 8) -> bool:
    """Structural equality of two *pure* SSA value trees (used to match
    the load and store indices of a read-modify-write). Loads of mutable
    state only compare equal as identical objects."""
    if a is b:
        return True
    if depth <= 0:
        return False
    if isinstance(a, ir.Const) and isinstance(b, ir.Const):
        return bool(a.value == b.value and a.ty.bits == b.ty.bits)
    if type(a) is not type(b):
        return False
    if isinstance(a, ir.BinOp) and isinstance(b, ir.BinOp):
        return a.op == b.op and all(
            _same_value(x, y, depth - 1)
            for x, y in zip(a.operands, b.operands)
        )
    if isinstance(a, ir.UnOp) and isinstance(b, ir.UnOp):
        return a.op == b.op and _same_value(
            a.operands[0], b.operands[0], depth - 1
        )
    if isinstance(a, ir.Cast) and isinstance(b, ir.Cast):
        return a.kind == b.kind and a.ty.bits == b.ty.bits and _same_value(
            a.operands[0], b.operands[0], depth - 1
        )
    if isinstance(a, ir.WinField) and isinstance(b, ir.WinField):
        return a.field == b.field
    if isinstance(a, ir.LocField) and isinstance(b, ir.LocField):
        return a.field == b.field
    if isinstance(a, ir.LoadParam) and isinstance(b, ir.LoadParam):
        return a.param is b.param and _same_value(
            a.operands[0], b.operands[0], depth - 1
        )
    return False


class _DepWalker:
    """Computes the set of mutable-state tokens a value depends on.

    Tokens: ``self`` (a load of the symbol/index being stored), and
    ``net:NAME`` / ``ctrl:NAME`` / ``map:NAME`` / ``bloom:NAME`` /
    ``extern`` for everything else mutable. Window data, window/location
    metadata and constants contribute nothing: they are byte-identical
    on every attempt of a window.
    """

    def __init__(self, self_ref: Optional[ir.GlobalRef],
                 self_index: Optional[ir.Value]) -> None:
        self.self_ref = self_ref
        self.self_index = self_index
        self._memo: Dict[int, FrozenSet[str]] = {}
        self._active: Set[int] = set()

    def deps(self, value: ir.Value) -> FrozenSet[str]:
        key = id(value)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if key in self._active:  # phi cycle: no *new* deps along the loop
            return frozenset()
        self._active.add(key)
        try:
            out = self._deps(value)
        finally:
            self._active.discard(key)
        self._memo[key] = out
        return out

    def _deps(self, value: ir.Value) -> FrozenSet[str]:
        if isinstance(value, (ir.Const, ir.Undef, ir.Param)):
            return frozenset()
        if isinstance(value, (ir.WinField, ir.LocField, ir.LocLabel)):
            return frozenset()
        if isinstance(value, ir.LoadParam):
            return self.deps(value.operands[0])
        if isinstance(value, ir.LoadElem):
            ref = value.ref
            if (
                self.self_ref is not None
                and ref is self.self_ref
                and self.self_index is not None
                and _same_value(value.index, self.self_index)
            ):
                return frozenset({"self"}) | self.deps(value.index)
            return frozenset({f"{ref.space}:{ref.name}"}) | self.deps(
                value.index
            )
        if isinstance(value, ir.CtrlRead):
            out = {f"ctrl:{value.ref.name}"}
            if value.index is not None:
                return frozenset(out) | self.deps(value.index)
            return frozenset(out)
        if isinstance(value, (ir.MapLookup, ir.MapFound, ir.MapValue)):
            ref = _map_ref(value)
            name = ref.name if ref is not None else "?"
            deps: FrozenSet[str] = frozenset({f"map:{name}"})
            for op in value.operands:
                deps |= self.deps(op)
            return deps
        if isinstance(value, ir.BloomOp):
            deps = frozenset({f"bloom:{value.ref.name}"})
            for op in value.operands:
                deps |= self.deps(op)
            return deps
        if isinstance(value, (ir.Load, ir.Alloca, ir.CallFn)):
            # pre-mem2reg memory or an unsummarized call: be conservative
            return frozenset({"extern"})
        if isinstance(value, ir.Instr):
            deps = frozenset()
            for op in value.operands:
                deps |= self.deps(op)
            return deps
        return frozenset({"extern"})


def _map_ref(value: ir.Instr) -> Optional[ir.GlobalRef]:
    if isinstance(value, ir.MapLookup):
        return value.ref
    for op in value.operands:
        if isinstance(op, ir.Instr):
            found = _map_ref(op)
            if found is not None:
                return found
    return None


def _strip_pure(value: ir.Value) -> ir.Value:
    """Peel casts off a value (they never change replay stability)."""
    while isinstance(value, ir.Cast):
        value = value.operands[0]
    return value


# -- guard recognition --------------------------------------------------------


def _edge_dominated(fn: ir.Function, src: ir.Block,
                    dst: ir.Block) -> Set[ir.Block]:
    """Blocks reachable from entry *only* through the edge src->dst."""
    if not fn.blocks:
        return set()
    seen = {fn.entry}
    work = [fn.entry]
    while work:
        block = work.pop()
        term = block.terminator
        if term is None:
            continue
        for succ in term.successors():
            if block is src and succ is dst:
                continue
            if succ not in seen:
                seen.add(succ)
                work.append(succ)
    return {b for b in fn.blocks if b not in seen}


def _const_differs(value: ir.Value, other: object) -> bool:
    root = _strip_pure(value)
    return isinstance(root, ir.Const) and bool(root.value != other)


def _cond_root(cond: ir.Value) -> Tuple[ir.Value, bool]:
    """Strip casts and logical negation, tracking polarity."""
    negated = False
    while True:
        if isinstance(cond, ir.Cast):
            cond = cond.operands[0]
        elif isinstance(cond, ir.UnOp) and cond.op == "lnot":
            negated = not negated
            cond = cond.operands[0]
        else:
            return cond, negated


def _find_guards(fn: ir.Function, facts: Optional[FunctionFacts]
                 ) -> List[Tuple[GuardInfo, Set[ir.Block]]]:
    """Recognize dedup-guard branches and the blocks they protect."""
    guards: List[Tuple[GuardInfo, Set[ir.Block]]] = []
    walker = _DepWalker(None, None)
    for block in fn.blocks:
        term = block.terminator
        if not isinstance(term, ir.CondBr):
            continue
        if facts is not None and block not in facts.reachable:
            continue
        root, negated = _cond_root(term.cond)

        # Pattern B: bloom-dedup -- effects on the query-miss branch.
        if isinstance(root, ir.BloomOp) and root.op == "query":
            # query true means "seen": the miss branch is the false edge.
            miss = term.then if negated else term.other
            region = _edge_dominated(fn, block, miss)
            insert_keys = [
                instr
                for region_block in region
                for instr in region_block.instrs
                if isinstance(instr, ir.BloomOp)
                and instr.op == "insert"
                and instr.ref is root.ref
            ]
            if insert_keys:
                grade = (
                    "proved"
                    if any(
                        _same_value(i.operands[0], root.operands[0])
                        for i in insert_keys
                    )
                    else "possible"
                )
                guards.append((
                    GuardInfo(root.ref.name, root.ref.space, "bloom-dedup",
                              term, miss, grade),
                    region,
                ))
            continue

        # Pattern A: seq-dedup -- a compare of a mark register with a
        # window-pure index; the protected path stores the mark back.
        if not (isinstance(root, ir.BinOp) and root.op in ir.BinOp.COMPARES):
            continue
        for load_side in (root.operands[0], root.operands[1]):
            load = _strip_pure(load_side)
            if not (isinstance(load, ir.LoadElem)
                    and load.ref.space == "net"):
                continue
            if walker.deps(load.index):
                continue  # the mark index itself must be window-pure
            other = (
                root.operands[1]
                if load_side is root.operands[0]
                else root.operands[0]
            )
            if walker.deps(other):
                continue
            for miss in (term.then, term.other):
                region = _edge_dominated(fn, block, miss)
                marks = [
                    instr
                    for region_block in region
                    for instr in region_block.instrs
                    if isinstance(instr, ir.StoreElem)
                    and instr.ref is load.ref
                    and _same_value(instr.index, load.index)
                ]
                if not marks:
                    continue
                grade = "possible"
                other_root = _strip_pure(other)
                if (
                    root.op in ("eq", "ne")
                    and isinstance(other_root, ir.Const)
                    and all(
                        _const_differs(m.value, other_root.value)
                        for m in marks
                    )
                ):
                    # after marking, the compare can never re-take the
                    # miss edge: the guard provably fires at most once
                    grade = "proved"
                guards.append((
                    GuardInfo(load.ref.name, load.ref.space, "seq-dedup",
                              term, miss, grade),
                    region,
                ))
                break
            break
    return guards


# -- site classification ------------------------------------------------------


def _classify_store(store: ir.StoreElem, walker: _DepWalker,
                    facts: Optional[FunctionFacts]
                    ) -> Tuple[str, Optional[str], str, str, FrozenSet[str]]:
    """Classify one StoreElem: (kind, fold, grade, detail, deps)."""
    value = _strip_pure(store.value)
    index_deps = walker.deps(store.index)
    value_deps = walker.deps(store.value)
    deps = index_deps | value_deps
    other_deps = deps - {"self"}
    ctrl_like = {d for d in other_deps if d.split(":", 1)[0] in ("ctrl", "map")}
    hard_deps = other_deps - ctrl_like

    if "self" not in deps:
        if not other_deps:
            return (KIND_IDEMPOTENT, None, "proved",
                    "overwrite with a replay-stable value", deps)
        if not hard_deps:
            return (KIND_IDEMPOTENT, None, "possible",
                    "overwrite; value/index stable unless the control "
                    "plane intervenes between attempts", deps)
        return (KIND_UNSAFE, None, "possible",
                "overwrite whose value or index depends on mutable "
                "switch state ({})".format(", ".join(sorted(hard_deps))),
                deps)

    # A read-modify-write of the stored element itself.
    if hard_deps:
        return (KIND_UNSAFE, None, "possible",
                "read-modify-write entangled with other mutable state "
                "({})".format(", ".join(sorted(hard_deps))), deps)

    fold = _match_fold(value, walker)
    if fold is None:
        return (KIND_UNSAFE, None, "possible",
                "read-modify-write with no recognized idempotent or "
                "commutative-monoid shape", deps)
    op, delta = fold
    if op in _IDEMPOTENT_FOLDS or op in ("min", "max", "select"):
        grade = "proved" if not ctrl_like else "possible"
        return (KIND_IDEMPOTENT, op, grade,
                f"idempotent '{op}' fold (replays collapse)", deps)
    if op == "identity":
        return (KIND_IDEMPOTENT, op, "proved",
                "stores the element back unchanged", deps)
    # commutative monoid: replays accumulate; proved when the delta is
    # proved non-zero by the abstract interpreter
    grade = "possible"
    if delta is not None and facts is not None:
        abs_delta = facts.value_of(delta)
        if abs_delta is not None and abs_delta.proved_nonzero():
            grade = "proved"
    elif isinstance(delta, ir.Const) and delta.value != 0:
        grade = "proved"
    return (KIND_MONOID, op,
            grade, f"commutative '{op}' fold (replays accumulate)", deps)


def _match_fold(value: ir.Value, walker: _DepWalker
                ) -> Optional[Tuple[str, Optional[ir.Value]]]:
    """Match the shape of a self-RMW value: returns (op, delta)."""

    def is_self_load(v: ir.Value) -> bool:
        v = _strip_pure(v)
        return isinstance(v, ir.LoadElem) and walker.deps(v) == frozenset(
            {"self"}
        ) | walker.deps(v.index)

    value = _strip_pure(value)
    if is_self_load(value):
        return ("identity", None)
    if isinstance(value, ir.BinOp) and value.op in (
        _IDEMPOTENT_FOLDS | _MONOID_FOLDS
    ):
        lhs, rhs = value.operands[0], value.operands[1]
        if is_self_load(lhs) and "self" not in walker.deps(rhs):
            return (value.op, rhs)
        if (value.op != "sub" and is_self_load(rhs)
                and "self" not in walker.deps(lhs)):
            return (value.op, lhs)
        return None
    if isinstance(value, ir.Select):
        cond, a, b = (value.operands[0], value.operands[1], value.operands[2])
        root, _ = _cond_root(cond)
        sides = (a, b)
        if any(is_self_load(s) for s in sides) and isinstance(root, ir.BinOp):
            cmp_sides = [_strip_pure(s) for s in root.operands]
            if any(is_self_load(s) for s in cmp_sides):
                # min/max/clamp: select(P(x, c), x, c) is idempotent
                return ("select", None)
        return None
    return None


# -- the per-kernel analysis --------------------------------------------------


class _RawSite:
    __slots__ = ("instr", "ref", "op", "kind", "fold", "grade", "detail",
                 "deps", "block")

    def __init__(self, instr: ir.Instr, ref: ir.GlobalRef, op: str,
                 kind: str, fold: Optional[str], grade: str, detail: str,
                 deps: FrozenSet[str], block: Optional[ir.Block]) -> None:
        self.instr = instr
        self.ref = ref
        self.op = op
        self.kind = kind
        self.fold = fold
        self.grade = grade
        self.detail = detail
        self.deps = deps
        self.block = block


def _collect_sites(fn: ir.Function, facts: Optional[FunctionFacts],
                   seen_fns: Optional[Set[str]] = None) -> List[_RawSite]:
    """Every shared-state update in ``fn``, including (interprocedurally)
    those of helper functions it calls; callee sites are attributed to
    the caller's callsite block for guard purposes."""
    if seen_fns is None:
        seen_fns = set()
    if fn.name in seen_fns:
        return []
    seen_fns = seen_fns | {fn.name}
    sites: List[_RawSite] = []
    for block in fn.blocks:
        if facts is not None and facts.reachable and (
            block not in facts.reachable
        ):
            continue
        for instr in block.instrs:
            if isinstance(instr, ir.StoreElem) and instr.ref.space in (
                "net",
            ):
                walker = _DepWalker(instr.ref, instr.index)
                kind, fold, grade, detail, deps = _classify_store(
                    instr, walker, facts
                )
                sites.append(_RawSite(instr, instr.ref, "store", kind, fold,
                                      grade, detail, deps, block))
            elif isinstance(instr, ir.BloomOp) and instr.op == "insert":
                sites.append(_RawSite(
                    instr, instr.ref, "bloom-insert", KIND_IDEMPOTENT, None,
                    "proved", "Bloom-filter insert (set union)",
                    frozenset(), block,
                ))
            elif isinstance(instr, ir.Memcpy):
                dst = instr.dst
                if dst.ref is None or dst.ref.space not in ("net",):
                    continue
                walker = _DepWalker(dst.ref, None)
                deps = walker.deps(instr.dst_off) | walker.deps(instr.nbytes)
                src = instr.src
                if src.ref is not None:
                    if src.ref is dst.ref:
                        deps |= frozenset({"self"})
                    elif src.ref.space in ("net", "ctrl", "map", "bloom"):
                        deps |= frozenset({f"{src.ref.space}:{src.ref.name}"})
                deps |= walker.deps(instr.src_off)
                ctrl_like = {
                    d for d in deps
                    if d.split(":", 1)[0] in ("ctrl", "map")
                }
                hard = deps - ctrl_like - {"self"}
                if "self" in deps or hard:
                    kind, grade = KIND_UNSAFE, "possible"
                    detail = (
                        "memcpy into switch memory from mutable state "
                        "({})".format(", ".join(sorted(deps)))
                    )
                elif ctrl_like:
                    kind, grade = KIND_IDEMPOTENT, "possible"
                    detail = ("memcpy overwrite; stable unless the control "
                              "plane intervenes between attempts")
                else:
                    kind, grade = KIND_IDEMPOTENT, "proved"
                    detail = "memcpy overwrite with replay-stable bytes"
                sites.append(_RawSite(instr, dst.ref, "memcpy", kind, None,
                                      grade, detail, deps, block))
            elif isinstance(instr, ir.CallFn):
                for callee_site in _collect_sites(
                    instr.callee, None, seen_fns
                ):
                    sites.append(_RawSite(
                        callee_site.instr, callee_site.ref, callee_site.op,
                        callee_site.kind, callee_site.fold,
                        callee_site.grade,
                        callee_site.detail
                        + f" (via call to {instr.callee.name!r})",
                        callee_site.deps, block,
                    ))
    return sites


def analyze_kernel_effects(fn: ir.Function,
                           facts: Optional[FunctionFacts] = None
                           ) -> KernelEffects:
    """Effect summary of one SSA kernel function."""
    guards = _find_guards(fn, facts)
    sites = _collect_sites(fn, facts)

    # Marking stores of a recognized guard are bookkeeping, not payload:
    # drop them from the guard symbol so the mark register itself does
    # not read as an extra effect (it is an idempotent overwrite anyway,
    # but the summary reads better without it).
    guard_syms = {g.symbol for g, _ in guards if g.style == "seq-dedup"}

    by_symbol: Dict[str, List[EffectSite]] = {}
    refs: Dict[str, ir.GlobalRef] = {}
    for raw in sites:
        guard: Optional[GuardInfo] = None
        for info, region in guards:
            if raw.block is not None and raw.block in region:
                if guard is None or (
                    _GRADE_ORDER[info.grade] > _GRADE_ORDER[guard.grade]
                ):
                    guard = info
        if (
            raw.ref.name in guard_syms
            and raw.op == "store"
            and raw.kind == KIND_IDEMPOTENT
        ):
            continue  # the mark write itself
        if raw.op == "bloom-insert" and any(
            g.symbol == raw.ref.name and g.style == "bloom-dedup"
            for g, _ in guards
        ):
            continue  # the guard's own insert
        site = EffectSite(
            raw.instr, raw.ref.name, raw.op, raw.kind, raw.fold, raw.grade,
            guard is not None, guard, raw.detail, raw.deps,
        )
        refs[raw.ref.name] = raw.ref
        by_symbol.setdefault(raw.ref.name, []).append(site)

    symbols = {
        name: SymbolEffect(
            name, refs[name].space, refs[name].at_label, site_list,
        )
        for name, site_list in by_symbol.items()
    }
    return KernelEffects(fn.name, [g for g, _ in guards], symbols)


def analyze_module_effects(
    module: ir.Module,
    label_ids: Optional[Dict[str, int]] = None,
) -> Dict[str, KernelEffects]:
    """Effect summaries for every kernel of a per-switch module, keyed
    and iterated by kernel name (sorted, for deterministic output)."""
    out: Dict[str, KernelEffects] = {}
    for name in sorted(module.functions):
        fn = module.functions[name]
        if fn.kind is ir.FunctionKind.HELPER:
            continue
        facts: Optional[FunctionFacts] = None
        try:
            facts = analyze_function(fn, label_ids=label_ids)
        except Exception:
            facts = None
        out[name] = analyze_kernel_effects(fn, facts)
    return out


# -- rendering (byte-deterministic, golden-testable) --------------------------


def _render_site(site: EffectSite) -> str:
    loc = site.instr.loc
    where = f"line {loc.line}" if loc is not None else "line ?"
    bits = [site.kind]
    if site.fold is not None:
        bits.append(f"fold={site.fold}")
    bits.append(site.grade)
    if site.guarded and site.guard is not None:
        bits.append(f"guarded[{site.guard.style}:{site.guard.symbol}]")
    deps = ",".join(sorted(site.deps - {"self"}))
    if deps:
        bits.append(f"deps={deps}")
    return f"    {where}: {site.op} {' '.join(bits)} -- {site.detail}"


def render_kernel_effects(effects: KernelEffects) -> str:
    lines = [f"kernel {effects.function}:"]
    for guard in sorted(effects.guards, key=lambda g: (g.symbol, g.style)):
        lines.append(
            f"  guard {guard.style} on {guard.space} "
            f"'{guard.symbol}' ({guard.grade})"
        )
    for name in sorted(effects.symbols):
        sym = effects.symbols[name]
        label = f" @ \"{sym.at_label}\"" if sym.at_label else ""
        guard_note = (
            " guarded" if sym.guarded
            else " PARTIALLY-guarded" if sym.partial_guard
            else ""
        )
        lines.append(
            f"  {sym.space} '{sym.name}'{label}: {sym.kind} "
            f"({sym.grade}){guard_note}"
        )
        for site in sorted(
            sym.sites, key=lambda s: (s.line, s.op, s.detail)
        ):
            lines.append(_render_site(site))
    lines.append(f"  verdict: {effects.verdict}")
    return "\n".join(lines)


def render_module_effects(summaries: Dict[str, KernelEffects]) -> str:
    return "\n\n".join(
        render_kernel_effects(summaries[name]) for name in sorted(summaries)
    ) + "\n"
