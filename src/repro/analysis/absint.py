"""Abstract interpretation over SSA NIR: intervals composed with known-bits.

This is the value-flow analysis backing three consumers (paper S5's
"analysis and optimization" stage):

* lint precision -- the ``overflow`` / ``width-truncation`` /
  ``dead-branch`` / ``shift-range`` / ``div-by-zero`` rules grade their
  findings *proved* (the analysis shows the bad outcome on every
  execution reaching the site) vs *possible* (the computed ranges admit
  it) instead of firing on syntax;
* the ``rangesimplify`` NIR pass (:mod:`repro.nir.passes.rangesimplify`)
  materializes proved-singleton values as constants at -O2;
* the translation validator (:mod:`repro.analysis.transval`) compares
  per-pass invariants under ``nclc build --verify-opt``.

The abstract value (:class:`AbsVal`) tracks, per scalar SSA value:

* an **interval** ``[lo, hi]`` over the *wrapped representative* domain
  the interpreter stores -- ``[0, 2^bits)`` for unsigned types,
  ``[-2^(bits-1), 2^(bits-1))`` for signed ones (NCL arithmetic wraps at
  the declared width, see :mod:`repro.util.intops`);
* **known bits** ``zeros``/``ones`` masks over the low ``bits`` of the
  two's-complement pattern (``zeros & ones == 0``).

The two domains exchange information after every transfer
(:meth:`AbsVal.reduced`): a known sign bit tightens the interval, a
non-negative interval pins leading zero bits, a singleton interval pins
the whole pattern.

The fixed point iterates blocks in reverse postorder with *conditional*
reachability (edges proved infeasible by branch conditions do not feed
phis) and widens unstable interval bounds at loop-carried values after a
few rounds, so loops (host pipelines keep them) terminate quickly.

Everything here is deterministic: no hashing of ids, no iteration over
unordered sets; the :func:`render_module_facts` dump renumbers values in
block order and is byte-stable for golden tests (``nclc --emit absint``).
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.ncl.types import is_signed, scalar_bits
from repro.nir import ir
from repro.nir.cfg import reverse_postorder
from repro.util import intops

#: rounds before unstable interval bounds are widened to the type range
WIDEN_AFTER = 3
#: hard cap on fixed-point rounds (safety net; never reached in practice)
MAX_ROUNDS = 64


def _scalar_info(ty) -> Optional[Tuple[int, bool]]:
    """(bits, signed) for scalar types, None for everything else."""
    try:
        return scalar_bits(ty), is_signed(ty)
    except Exception:
        return None


def _type_range(bits: int, signed: bool) -> Tuple[int, int]:
    if signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


class AbsVal:
    """One abstract scalar: interval over representatives + known bits."""

    __slots__ = ("bits", "signed", "lo", "hi", "zeros", "ones")

    def __init__(
        self, bits: int, signed: bool, lo: int, hi: int, zeros: int = 0, ones: int = 0
    ):
        self.bits = bits
        self.signed = signed
        self.lo = lo
        self.hi = hi
        self.zeros = zeros
        self.ones = ones

    # -- constructors --------------------------------------------------

    @classmethod
    def top(cls, bits: int, signed: bool) -> "AbsVal":
        lo, hi = _type_range(bits, signed)
        return cls(bits, signed, lo, hi).reduced()

    @classmethod
    def bottom(cls, bits: int, signed: bool) -> "AbsVal":
        m = intops.mask(bits)
        return cls(bits, signed, 1, 0, m, m)

    @classmethod
    def const(cls, value: int, bits: int, signed: bool) -> "AbsVal":
        rep = intops.wrap(value, bits, signed)
        pat = rep & intops.mask(bits)
        return cls(bits, signed, rep, rep, ~pat & intops.mask(bits), pat)

    @classmethod
    def from_type(cls, ty) -> Optional["AbsVal"]:
        info = _scalar_info(ty)
        if info is None:
            return None
        return cls.top(*info)

    # -- predicates ----------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    @property
    def is_singleton(self) -> bool:
        return self.lo == self.hi

    @property
    def singleton(self) -> Optional[int]:
        return self.lo if self.lo == self.hi else None

    def is_top(self) -> bool:
        return (self.lo, self.hi) == _type_range(self.bits, self.signed) and (
            self.zeros == 0 and self.ones == 0
        )

    def informative(self) -> bool:
        """Did the analysis learn anything beyond the declared width?

        The *possible*-grade lint findings gate on this: a warning about
        a full-width unknown value would fire on half of every program.
        """
        tlo, thi = _type_range(self.bits, self.signed)
        return self.lo > tlo or self.hi < thi

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def proved_nonzero(self) -> bool:
        return self.ones != 0 or self.lo > 0 or self.hi < 0

    def proved_zero(self) -> bool:
        return self.singleton == 0

    # -- lattice operations --------------------------------------------

    def join(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return AbsVal(
            self.bits,
            self.signed,
            min(self.lo, other.lo),
            max(self.hi, other.hi),
            self.zeros & other.zeros,
            self.ones & other.ones,
        ).reduced()

    def widened(self, new: "AbsVal") -> "AbsVal":
        """Jump unstable bounds straight to the type range (loop headers)."""
        tlo, thi = _type_range(self.bits, self.signed)
        lo = self.lo if new.lo >= self.lo else tlo
        hi = self.hi if new.hi <= self.hi else thi
        return AbsVal(self.bits, self.signed, lo, hi, new.zeros, new.ones).reduced()

    def reduced(self) -> "AbsVal":
        """Exchange information between the two domains; clamp to type."""
        bits, signed = self.bits, self.signed
        m = intops.mask(bits)
        tlo, thi = _type_range(bits, signed)
        lo, hi = max(self.lo, tlo), min(self.hi, thi)
        zeros, ones = self.zeros & m, self.ones & m
        if lo > hi or zeros & ones:
            return AbsVal.bottom(bits, signed)
        # interval -> bits: common leading pattern bits of the two bounds
        # (patterns compare only when the range does not straddle zero).
        if lo >= 0 or hi < 0:
            pa, pb = lo & m, hi & m
            diff = pa ^ pb
            keep = m & ~((1 << diff.bit_length()) - 1)
            ones |= pa & keep
            zeros |= ~pa & keep
        if zeros & ones:
            return AbsVal.bottom(bits, signed)
        # bits -> interval: min/max representable patterns
        umin, umax = ones, m & ~zeros
        sign = 1 << (bits - 1)
        if not signed or zeros & sign:
            blo, bhi = umin, umax
            if signed:
                bhi = min(bhi, thi)
        elif ones & sign:
            blo, bhi = umin - (1 << bits), umax - (1 << bits)
        else:
            blo = ((umin | sign) & m) - (1 << bits)
            bhi = umax & ~sign
        lo, hi = max(lo, blo), min(hi, bhi)
        if lo > hi:
            return AbsVal.bottom(bits, signed)
        return AbsVal(bits, signed, lo, hi, zeros, ones)

    # -- views ---------------------------------------------------------

    def unsigned_range(self, width: Optional[int] = None) -> Tuple[int, int]:
        """Range of ``to_unsigned(rep, width)`` (the bit pattern widened)."""
        width = self.bits if width is None else width
        if self.lo >= 0:
            return self.lo, self.hi
        if self.hi < 0:
            off = 1 << width
            return self.lo + off, self.hi + off
        return 0, (1 << width) - 1

    def trailing_known(self) -> int:
        known = self.zeros | self.ones
        t = 0
        while t < self.bits and known & (1 << t):
            t += 1
        return t

    # -- rendering -----------------------------------------------------

    def pattern(self) -> str:
        """The known-bits pattern, MSB first: '0', '1' or 'x' per bit."""
        out = []
        for i in range(self.bits - 1, -1, -1):
            bit = 1 << i
            out.append("1" if self.ones & bit else "0" if self.zeros & bit else "x")
        return "".join(out)

    def render(self) -> str:
        if self.is_bottom:
            return "bottom"
        return f"[{self.lo}, {self.hi}] {self.pattern()}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, AbsVal) and (
            self.bits, self.signed, self.lo, self.hi, self.zeros, self.ones
        ) == (other.bits, other.signed, other.lo, other.hi, other.zeros, other.ones)

    def __hash__(self) -> int:
        return hash((self.bits, self.lo, self.hi, self.zeros, self.ones))

    def __repr__(self) -> str:
        sign = "i" if self.signed else "u"
        return f"AbsVal({sign}{self.bits} {self.render()})"


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------


def _wrap_interval(lo: int, hi: int, bits: int, signed: bool) -> Tuple[int, int]:
    """Exact (unbounded) result range -> wrapped representative range."""
    if hi - lo >= (1 << bits):
        return _type_range(bits, signed)
    wl = intops.wrap(lo, bits, signed)
    wh = intops.wrap(hi, bits, signed)
    if wl <= wh:
        return wl, wh
    return _type_range(bits, signed)


def _trailing_bits(op: str, a: AbsVal, b: AbsVal, bits: int) -> Tuple[int, int]:
    """Known low bits of add/sub/mul (exact modulo 2^t on known suffixes)."""
    t = min(a.trailing_known(), b.trailing_known(), bits)
    if t == 0:
        return 0, 0
    low = (1 << t) - 1
    if op == "add":
        v = (a.ones + b.ones) & low
    elif op == "sub":
        v = (a.ones - b.ones) & low
    else:  # mul
        v = (a.ones * b.ones) & low
    return low & ~v, v


def exact_range(op: str, a: AbsVal, b: AbsVal) -> Optional[Tuple[int, int]]:
    """The *unwrapped* result range of add/sub/mul over representatives.

    This is what the overflow lint compares against the representable
    range: disjoint means every execution wraps, overlap means some may.
    """
    if a.is_bottom or b.is_bottom:
        return None
    if op == "add":
        return a.lo + b.lo, a.hi + b.hi
    if op == "sub":
        return a.lo - b.hi, a.hi - b.lo
    if op == "mul":
        corners = [
            a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi,
        ]
        return min(corners), max(corners)
    return None


def _binop_arith(op: str, a: AbsVal, b: AbsVal, bits: int, signed: bool) -> AbsVal:
    m = intops.mask(bits)
    if op in ("add", "sub", "mul"):
        lo, hi = _wrap_interval(*exact_range(op, a, b), bits, signed)
        zeros, ones = _trailing_bits(op, a, b, bits)
        return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()

    if op in ("and", "or", "xor"):
        if op == "and":
            zeros = a.zeros | b.zeros
            ones = a.ones & b.ones
        elif op == "or":
            zeros = a.zeros & b.zeros
            ones = a.ones | b.ones
        else:
            both = (a.zeros | a.ones) & (b.zeros | b.ones)
            val = (a.ones ^ b.ones) & both
            zeros, ones = both & ~val, val
        lo, hi = _type_range(bits, signed)
        if a.lo >= 0 and b.lo >= 0:
            if op == "and":
                lo, hi = 0, min(a.hi, b.hi)
            else:
                width = max(a.hi.bit_length(), b.hi.bit_length())
                cap = min((1 << width) - 1, _type_range(bits, signed)[1])
                lo, hi = (max(a.lo, b.lo), cap) if op == "or" else (0, cap)
        return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()

    if op in ("shl", "lshr", "ashr"):
        return _shift(op, a, b, bits, signed)

    if op in ("udiv", "urem", "sdiv", "srem"):
        return _divide(op, a, b, bits, signed)

    return AbsVal.top(bits, signed)


def _shift(op: str, a: AbsVal, b: AbsVal, bits: int, signed: bool) -> AbsVal:
    # The interpreter's semantics: negative amounts trap, amounts >= bits
    # reduce mod bits. Only in-range amounts [0, bits) yield information.
    if b.lo < 0 or b.hi >= bits:
        return AbsVal.top(bits, signed)
    s = b.singleton
    m = intops.mask(bits)
    if s is None:
        # known trailing zeros for shl by at least b.lo
        if op == "shl" and b.lo > 0:
            return AbsVal(
                bits, signed, *_type_range(bits, signed), (1 << b.lo) - 1, 0
            ).reduced()
        return AbsVal.top(bits, signed)
    if op == "shl":
        lo, hi = _wrap_interval(a.lo << s, a.hi << s, bits, signed)
        zeros = ((a.zeros << s) | ((1 << s) - 1)) & m
        ones = (a.ones << s) & m
        return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()
    if op == "lshr":
        # operates on the unsigned pattern, result wraps at the type
        ulo, uhi = a.unsigned_range()
        lo, hi = _wrap_interval(ulo >> s, uhi >> s, bits, signed)
        zeros = ((a.zeros >> s) | (m & ~(m >> s))) & m
        ones = (a.ones >> s) & m
        return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()
    # ashr: floor-divide the signed representative by 2^s (monotone)
    lo, hi = a.lo >> s, a.hi >> s
    sign = 1 << (bits - 1)
    if a.zeros & sign:  # known non-negative: behaves like lshr
        zeros = ((a.zeros >> s) | (m & ~(m >> s))) & m
        ones = (a.ones >> s) & m
        return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()
    return AbsVal(bits, signed, lo, hi).reduced()


def _divide(op: str, a: AbsVal, b: AbsVal, bits: int, signed: bool) -> AbsVal:
    if b.lo <= 0 <= b.hi:
        # divisor may be zero: the instruction may trap; no result info
        # (recorded separately as the instruction's div status).
        return AbsVal.top(bits, signed)
    if op in ("udiv", "urem") and (a.lo < 0 or b.lo < 0):
        return AbsVal.top(bits, signed)
    if op == "udiv":
        return AbsVal(bits, signed, a.lo // b.hi, a.hi // b.lo).reduced()
    if op == "urem":
        if a.hi < b.lo:
            return AbsVal(bits, signed, a.lo, a.hi, a.zeros, a.ones).reduced()
        return AbsVal(bits, signed, 0, b.hi - 1).reduced()
    if op == "sdiv":
        corners = []
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                corners.append(intops.checked_sdiv(x, y))
        lo, hi = _wrap_interval(min(corners), max(corners), bits, signed)
        return AbsVal(bits, signed, lo, hi).reduced()
    # srem: sign follows the dividend, magnitude < max |divisor|
    mag = max(abs(b.lo), abs(b.hi)) - 1
    lo = -mag if a.lo < 0 else 0
    hi = mag if a.hi > 0 else 0
    if a.hi < abs(b.lo) and a.lo >= 0 and b.lo > 0 and a.hi < b.lo:
        lo, hi = a.lo, a.hi
    return AbsVal(bits, signed, lo, hi).reduced()


_CMP_NEGATE = {"eq": "ne", "ne": "eq"}


def _compare(op: str, a: AbsVal, b: AbsVal) -> AbsVal:
    """BOOL result of a compare; [0,0]/[1,1] when provable."""
    verdict = compare_verdict(op, a, b)
    if verdict is None:
        return AbsVal(8, False, 0, 1).reduced()
    return AbsVal.const(int(verdict), 8, False)


def compare_verdict(op: str, a: AbsVal, b: AbsVal) -> Optional[bool]:
    """True/False when the compare is decided by the ranges, else None."""
    if a.is_bottom or b.is_bottom:
        return None
    if op in ("eq", "ne"):
        disjoint = a.hi < b.lo or b.hi < a.lo
        if not disjoint and a.bits == b.bits:
            # known-bits disagreement proves inequality
            if (a.ones & b.zeros) or (b.ones & a.zeros):
                disjoint = True
        if disjoint:
            return op == "ne"
        if a.is_singleton and b.is_singleton and a.lo == b.lo:
            return op == "eq"
        return None
    if op.startswith("u"):
        # unsigned compares reinterpret both patterns at 64 bits
        alo, ahi = a.unsigned_range(64)
        blo, bhi = b.unsigned_range(64)
    else:
        alo, ahi, blo, bhi = a.lo, a.hi, b.lo, b.hi
    rel = op[1:]
    if rel == "lt":
        return True if ahi < blo else False if alo >= bhi else None
    if rel == "le":
        return True if ahi <= blo else False if alo > bhi else None
    if rel == "gt":
        return True if alo > bhi else False if ahi <= blo else None
    if rel == "ge":
        return True if alo >= bhi else False if ahi < blo else None
    return None


# ---------------------------------------------------------------------------
# The fixed-point analyzer
# ---------------------------------------------------------------------------


class FunctionFacts:
    """Everything the analysis proved about one function."""

    def __init__(self, fn: ir.Function):
        self.fn = fn
        #: AbsVal per value-producing instruction (by object identity)
        self.values: Dict[ir.Instr, AbsVal] = {}
        #: blocks the analysis could not rule out
        self.reachable: Set[ir.Block] = set()
        #: CFG edges proved never taken ((src, dst) pairs)
        self.infeasible_edges: Set[Tuple[ir.Block, ir.Block]] = set()
        #: CondBr -> the proved direction (True = then, False = else)
        self.branch_decisions: Dict[ir.CondBr, bool] = {}
        #: division/remainder status: 'zero' (divisor proved 0) | 'maybe'
        self.div_status: Dict[ir.BinOp, str] = {}
        #: shift-amount status: 'neg' | 'oob' | 'maybe'
        self.shift_status: Dict[ir.BinOp, str] = {}
        #: join of all reachable return values (None for void/no info)
        self.ret_value: Optional[AbsVal] = None
        self.rounds = 0

    def value_of(self, value: ir.Value) -> Optional[AbsVal]:
        """The abstract value of any operand (Const/Param/Undef/Instr)."""
        if isinstance(value, ir.Instr):
            return self.values.get(value)
        info = _scalar_info(value.ty)
        if info is None:
            return None
        if isinstance(value, ir.Const):
            return AbsVal.const(value.value, *info)
        return AbsVal.top(*info)


class _Analyzer:
    def __init__(
        self,
        fn: ir.Function,
        label_ids: Optional[Dict[str, int]] = None,
        win_ext: Optional[Dict[str, int]] = None,
    ):
        self.fn = fn
        self.label_ids = dict(label_ids or {})
        self.win_ext = dict(win_ext or {})
        self.facts = FunctionFacts(fn)
        self.updates: Dict[ir.Instr, int] = {}

    # -- operand access ------------------------------------------------

    def get(self, value: ir.Value) -> Optional[AbsVal]:
        if isinstance(value, ir.Instr):
            return self.facts.values.get(value)
        info = _scalar_info(value.ty)
        if info is None:
            return None
        if isinstance(value, ir.Const):
            return AbsVal.const(value.value, *info)
        # Params and Undef carry no information beyond their width.
        return AbsVal.top(*info)

    # -- the fixed point -----------------------------------------------

    def run(self) -> FunctionFacts:
        if not self.fn.blocks:
            return self.facts
        rpo = reverse_postorder(self.fn)
        for round_no in range(1, MAX_ROUNDS + 1):
            self.facts.rounds = round_no
            reachable, feasible = self._reachability()
            changed = False
            for block in rpo:
                if block not in reachable:
                    continue
                for instr in block.instrs:
                    if isinstance(instr, ir.Phi):
                        new = self._eval_phi(instr, block, reachable, feasible)
                    else:
                        new = self._transfer(instr)
                    if new is None:
                        continue
                    changed |= self._update(instr, new, round_no)
            if not changed:
                break
        self._finalize()
        return self.facts

    def _update(self, instr: ir.Instr, new: AbsVal, round_no: int) -> bool:
        old = self.facts.values.get(instr)
        if old is not None:
            new = old.join(new)
            if new == old:
                return False
            self.updates[instr] = self.updates.get(instr, 0) + 1
            if self.updates[instr] > WIDEN_AFTER or round_no >= MAX_ROUNDS - 1:
                new = old.widened(new)
                if new == old:
                    return False
        self.facts.values[instr] = new
        return True

    def _reachability(self):
        """Blocks/edges feasible under the current branch proofs."""
        reachable: Set[ir.Block] = set()
        feasible: Set[Tuple[ir.Block, ir.Block]] = set()
        work = [self.fn.entry]
        while work:
            block = work.pop()
            if block in reachable:
                continue
            reachable.add(block)
            term = block.terminator
            if term is None:
                continue
            targets = list(term.successors())
            if isinstance(term, ir.CondBr):
                cond = self.get(term.cond)
                if cond is not None and not cond.is_bottom:
                    if cond.proved_nonzero():
                        targets = [term.then]
                    elif cond.proved_zero():
                        targets = [term.other]
            for succ in targets:
                feasible.add((block, succ))
                work.append(succ)
        return reachable, feasible

    def _eval_phi(self, phi, block, reachable, feasible) -> Optional[AbsVal]:
        info = _scalar_info(phi.ty)
        if info is None:
            return None
        result: Optional[AbsVal] = None
        for value, pred in phi.incoming:
            if pred not in reachable or (pred, block) not in feasible:
                continue
            v = self.get(value)
            if v is None:
                continue
            result = v if result is None else result.join(v)
        return result

    # -- instruction transfer ------------------------------------------

    def _transfer(self, instr: ir.Instr) -> Optional[AbsVal]:
        info = _scalar_info(instr.ty)
        if isinstance(instr, ir.BinOp):
            return self._transfer_binop(instr)
        if info is None:
            return None
        bits, signed = info
        if isinstance(instr, ir.UnOp):
            a = self.get(instr.operands[0])
            if instr.op == "lnot":
                if a is None:
                    return AbsVal(8, False, 0, 1).reduced()
                if a.proved_nonzero():
                    return AbsVal.const(0, 8, False)
                if a.proved_zero():
                    return AbsVal.const(1, 8, False)
                return AbsVal(8, False, 0, 1).reduced()
            if a is None:
                return AbsVal.top(bits, signed)
            if instr.op == "neg":
                lo, hi = _wrap_interval(-a.hi, -a.lo, bits, signed)
                zeros, ones = _trailing_bits(
                    "sub", AbsVal.const(0, bits, signed), a, bits
                )
                return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()
            # bitwise not
            lo, hi = _wrap_interval(-a.hi - 1, -a.lo - 1, bits, signed)
            m = intops.mask(bits)
            return AbsVal(bits, signed, lo, hi, a.ones & m, a.zeros & m).reduced()
        if isinstance(instr, ir.Cast):
            return self._transfer_cast(instr, bits, signed)
        if isinstance(instr, ir.Select):
            cond = self.get(instr.operands[0])
            a = self.get(instr.operands[1])
            b = self.get(instr.operands[2])
            if cond is not None:
                if cond.proved_nonzero():
                    return a
                if cond.proved_zero():
                    return b
            if a is None or b is None:
                return AbsVal.top(bits, signed)
            return a.join(b)
        if isinstance(instr, (ir.MapFound, ir.BloomOp)):
            return AbsVal(8, False, 0, 1).reduced()
        if isinstance(instr, ir.LocLabel):
            if instr.label in self.label_ids:
                return AbsVal.const(self.label_ids[instr.label], bits, signed)
            return AbsVal.top(bits, signed)
        if isinstance(instr, ir.WinField):
            if instr.field in self.win_ext:
                return AbsVal.const(self.win_ext[instr.field], bits, signed)
            return AbsVal.top(bits, signed)
        # Loads, params, ctrl reads, calls, map values, location ids:
        # nothing is known beyond the declared width.
        return AbsVal.top(bits, signed)

    def _transfer_binop(self, instr: ir.BinOp) -> Optional[AbsVal]:
        a = self.get(instr.lhs)
        b = self.get(instr.rhs)
        if instr.op in ir.BinOp.COMPARES:
            if a is None or b is None:
                return AbsVal(8, False, 0, 1).reduced()
            return _compare(instr.op, a, b)
        info = _scalar_info(instr.ty)
        if info is None:
            return None
        bits, signed = info
        if a is None or b is None:
            return AbsVal.top(bits, signed)
        if a.is_bottom or b.is_bottom:
            return AbsVal.bottom(bits, signed)
        # syntactic identities the interval product misses
        if instr.lhs is instr.rhs and isinstance(instr.lhs, ir.Instr):
            if instr.op in ("sub", "xor"):
                return AbsVal.const(0, bits, signed)
            if instr.op in ("and", "or"):
                return a.reduced()
        # record trap facts (consumed by the lint rules)
        if instr.op in ("udiv", "sdiv", "urem", "srem"):
            if b.singleton == 0:
                self.facts.div_status[instr] = "zero"
            elif b.lo <= 0 <= b.hi:
                self.facts.div_status[instr] = "maybe"
            else:
                self.facts.div_status.pop(instr, None)
        if instr.op in ("shl", "lshr", "ashr"):
            if b.hi < 0:
                self.facts.shift_status[instr] = "neg"
            elif b.lo >= bits:
                self.facts.shift_status[instr] = "oob"
            elif b.lo < 0 or b.hi >= bits:
                self.facts.shift_status[instr] = "maybe"
            else:
                self.facts.shift_status.pop(instr, None)
        return _binop_arith(instr.op, a, b, bits, signed)

    def _transfer_cast(self, instr: ir.Cast, bits: int, signed: bool) -> AbsVal:
        a = self.get(instr.operands[0])
        if instr.kind == "bool":
            if a is not None:
                if a.proved_nonzero():
                    return AbsVal.const(1, 8, False)
                if a.proved_zero():
                    return AbsVal.const(0, 8, False)
            return AbsVal(8, False, 0, 1).reduced()
        src_info = _scalar_info(instr.operands[0].ty)
        if a is None or src_info is None:
            return AbsVal.top(bits, signed)
        src_bits, _src_signed = src_info
        msrc = intops.mask(src_bits)
        mdst = intops.mask(bits)
        if instr.kind == "trunc":
            lo, hi = _wrap_interval(a.lo, a.hi, bits, signed)
            return AbsVal(
                bits, signed, lo, hi, a.zeros & mdst, a.ones & mdst
            ).reduced()
        if instr.kind == "zext":
            ulo, uhi = a.unsigned_range()
            lo, hi = _wrap_interval(ulo, uhi, bits, signed)
            zeros = (a.zeros & msrc) | (mdst & ~msrc)
            return AbsVal(bits, signed, lo, hi, zeros, a.ones & msrc).reduced()
        # sext: read the low src_bits as a signed quantity, then wrap
        half = 1 << (src_bits - 1)
        if a.hi < half and a.lo >= -half:
            slo, shi = a.lo, a.hi
        elif a.lo >= half:
            slo, shi = a.lo - (1 << src_bits), a.hi - (1 << src_bits)
        else:
            slo, shi = -half, half - 1
        lo, hi = _wrap_interval(slo, shi, bits, signed)
        sign = half
        zeros, ones = a.zeros & msrc, a.ones & msrc
        if zeros & sign:
            zeros |= mdst & ~msrc
        elif ones & sign:
            ones |= mdst & ~msrc
        return AbsVal(bits, signed, lo, hi, zeros, ones).reduced()

    # -- wrap-up -------------------------------------------------------

    def _finalize(self) -> None:
        reachable, feasible = self._reachability()
        self.facts.reachable = reachable
        ret: Optional[AbsVal] = None
        for block in self.fn.blocks:
            if block not in reachable:
                continue
            term = block.terminator
            if isinstance(term, ir.CondBr):
                for succ in term.successors():
                    if (block, succ) not in feasible:
                        self.facts.infeasible_edges.add((block, succ))
                cond = self.get(term.cond)
                if cond is not None and not cond.is_bottom:
                    if cond.proved_nonzero():
                        self.facts.branch_decisions[term] = True
                    elif cond.proved_zero():
                        self.facts.branch_decisions[term] = False
            elif isinstance(term, ir.Ret) and term.value is not None:
                v = self.get(term.value)
                if v is not None:
                    ret = v if ret is None else ret.join(v)
        self.facts.ret_value = ret


def analyze_function(
    fn: ir.Function,
    label_ids: Optional[Dict[str, int]] = None,
    win_ext: Optional[Dict[str, int]] = None,
) -> FunctionFacts:
    """Run the abstract interpreter to fixed point over one SSA function.

    ``label_ids`` resolves ``_locid("...")`` probes to constants (pass
    the AND's label map); ``win_ext`` pins window-extension fields the
    way window specialization would.
    """
    return _Analyzer(fn, label_ids, win_ext).run()


def analyze_module(
    module: ir.Module,
    label_ids: Optional[Dict[str, int]] = None,
) -> Dict[str, FunctionFacts]:
    """Facts for every function of *module*, keyed and ordered by name."""
    return {
        name: analyze_function(module.functions[name], label_ids)
        for name in sorted(module.functions)
    }


# ---------------------------------------------------------------------------
# Deterministic fact dump (``nclc --emit absint`` and golden tests)
# ---------------------------------------------------------------------------


def render_function_facts(facts: FunctionFacts) -> str:
    """Byte-stable rendering: values renumbered in block order (the raw
    instruction ids come from a process-global counter and would differ
    between compiles of the same source)."""
    fn = facts.fn
    number: Dict[ir.Instr, int] = {}
    for block in fn.blocks:
        for instr in block.instrs:
            number[instr] = len(number)

    def name_of(value: ir.Value) -> str:
        if isinstance(value, ir.Instr):
            return f"%{number.get(value, '?')}"
        return value.short()

    lines = [f"func {fn.name}"]
    for block in fn.blocks:
        mark = "" if block in facts.reachable else "  ; unreachable"
        lines.append(f"  {block.label}:{mark}")
        for instr in block.instrs:
            if isinstance(instr, ir.CondBr):
                decided = facts.branch_decisions.get(instr)
                note = ""
                if decided is not None:
                    note = f"  ; always {'then' if decided else 'else'}"
                lines.append(
                    f"    condbr {name_of(instr.cond)}, {instr.then.label}, "
                    f"{instr.other.label}{note}"
                )
                continue
            if isinstance(instr, ir.Ret):
                if instr.value is not None:
                    lines.append(f"    ret {name_of(instr.value)}")
                else:
                    lines.append("    ret")
                continue
            if isinstance(instr, ir.Br):
                lines.append(f"    br {instr.target.label}")
                continue
            val = facts.values.get(instr)
            if val is None:
                continue
            ops = ", ".join(name_of(op) for op in instr.operands)
            mnem = instr.mnemonic
            if isinstance(instr, ir.BinOp):
                mnem = instr.op
            elif isinstance(instr, ir.UnOp):
                mnem = instr.op
            elif isinstance(instr, ir.Cast):
                mnem = instr.kind
            head = f"%{number[instr]} = {mnem} {ops}".rstrip()
            lines.append(f"    {head} : {val.render()}")
    if facts.ret_value is not None:
        lines.append(f"  ret value: {facts.ret_value.render()}")
    return "\n".join(lines)


def render_module_facts(facts: Dict[str, FunctionFacts]) -> str:
    parts = [render_function_facts(facts[name]) for name in sorted(facts)]
    return "\n\n".join(parts) + "\n"
