"""The shipped `nclc lint` rule set.

Every rule reports through the shared :class:`repro.diag.DiagnosticSink`
with a stable code; the catalog lives in ``docs/DIAGNOSTICS.md``. Codes:

======== ===================== =========================================
code     rule                  finding
======== ===================== =========================================
NCL0701  race                  unserialized shared-state access
NCL0702  uninit-read           variable may be read before assignment
NCL0703  dead-store            stored value is never read
NCL0704  unreachable-code      statement can never execute
NCL0705  unbounded-loop        kernel loop cannot unroll to PISA
NCL0706  dead-branch           branch condition proved constant
NCL0801  width-truncation      implicit narrowing conversion
NCL0802  shift-range           shift amount out of range
NCL0803  overflow              arithmetic overflows its declared width
NCL0805  div-by-zero           division or remainder by zero
NCL0901  unused-kernel         _out_ kernel never launched via ncl::out
NCL0902  unused-kernel         _in_ kernel never registered via ncl::in
NCL0903  unused-window-field   window extension field never read
NCL0610  pisa-resources        general multiply unavailable on target
NCL0611  pisa-resources        register-array access budget exceeded
NCL0612  pisa-resources        PHV bit budget exceeded
NCL0613  pisa-resources        pipeline stage budget exceeded
NCL0614  pisa-resources        match-action table budget exceeded
======== ===================== =========================================

The value-flow rules (``dead-branch``, ``width-truncation``,
``shift-range``, ``overflow``, ``div-by-zero``) consume the abstract
interpreter's interval + known-bits facts
(:meth:`repro.analysis.AnalysisContext.absint_functions`) and grade each
finding: *proved* (error severity -- the property holds on every
execution reaching the site) or *possible* (warning severity -- the
computed ranges admit it). A site that the ranges rule out is
suppressed entirely, which is what keeps the shipped examples
lint-clean. Because helpers are inlined before the analysis, one source
location can occur in several analysis contexts; a finding is *proved*
only when every occurrence proves it, and suppressed only when every
occurrence is ruled out.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import AnalysisContext, Rule, register
from repro.analysis.absint import exact_range
from repro.analysis.dataflow import dead_stores, may_uninit_reads
from repro.diag import Span
from repro.ncl import ast
from repro.ncl.parser import const_eval
from repro.ncl.sema import TranslationUnit
from repro.ncl.types import is_signed, scalar_bits
from repro.nir import ir

#: host runtime calls that WRITE switch-resident state from the control plane
_HOST_WRITE_CALLS = ("ncl::ctrl_wr", "ncl::map_insert", "ncl::map_erase")

_SPACE_WORD = {
    "net": "switch memory",
    "ctrl": "control variable",
    "map": "Map",
    "bloom": "BloomFilter",
}


def _bits(ty) -> Optional[int]:
    try:
        return scalar_bits(ty)
    except Exception:
        return None


def _absint_missed(ctx: AnalysisContext) -> List[ir.Function]:
    """Functions the abstract interpreter produced no facts for.

    Value-flow rules fall back to their pre-absint (purely syntactic)
    checks on these so that a function SSA construction chokes on still
    gets the cheap findings.
    """
    analyzed = {fn.name for fn, _facts in ctx.absint_functions()}
    if ctx.module is None:
        return []
    return [
        fn for name, fn in ctx.module.functions.items() if name not in analyzed
    ]


def _range_note(what: str, val) -> str:
    """A human-readable evidence note for one abstract value."""
    if val.is_singleton:
        return f"{what} is always {val.lo}"
    return f"{what} is in [{val.lo}, {val.hi}]"


def _grade_site(grades: List[str]) -> Optional[str]:
    """Collapse per-occurrence grades for one source site.

    ``grades`` holds one of ``"clean"``/``"proved"``/``"possible"`` per
    analysis context the site occurred in (helpers are inlined, so one
    site can occur several times). Proved needs *every* occurrence
    proved; all-clean suppresses; anything mixed is merely possible.
    """
    if not grades or all(g == "clean" for g in grades):
        return None
    if all(g == "proved" for g in grades):
        return "proved"
    return "possible"


def _gvar_decl(unit: TranslationUnit, name: str) -> Optional[ast.GlobalVar]:
    for table in (unit.net_globals, unit.ctrl_vars, unit.maps, unit.blooms):
        if name in table:
            return table[name]
    return None


def _host_functions(unit: TranslationUnit) -> List[ast.FuncDecl]:
    """Host (non-kernel) functions with bodies, in declaration order.

    ``unit.functions`` also holds switch-side helper functions; a helper
    is any function reachable from a kernel, which the callers of this
    function do not need to distinguish -- helpers cannot contain
    ``ncl::`` runtime calls anyway (sema rejects them).
    """
    return [d for d in unit.functions.values() if d.body is not None]


class _StateAccess:
    """One touch of a switch-resident symbol, attributed to a party."""

    __slots__ = ("party", "party_desc", "label", "is_write", "loc")

    def __init__(self, party, party_desc, label, is_write, loc):
        self.party = party  # kernel name, or "<host>"
        self.party_desc = party_desc
        self.label = label  # the accessing kernel's _at_ label (None = all)
        self.is_write = is_write
        self.loc = loc


def _instr_accesses(instr: ir.Instr) -> List[Tuple[ir.GlobalRef, bool]]:
    """(ref, is_write) pairs for one instruction."""
    out: List[Tuple[ir.GlobalRef, bool]] = []
    if isinstance(instr, ir.LoadElem):
        out.append((instr.ref, False))
    elif isinstance(instr, ir.StoreElem):
        out.append((instr.ref, True))
    elif isinstance(instr, ir.CtrlRead):
        out.append((instr.ref, False))
    elif isinstance(instr, ir.MapLookup):
        out.append((instr.ref, False))
    elif isinstance(instr, ir.BloomOp):
        out.append((instr.ref, instr.op == "insert"))
    elif isinstance(instr, ir.Memcpy):
        if instr.src.ref is not None:
            out.append((instr.src.ref, False))
        if instr.dst.ref is not None:
            out.append((instr.dst.ref, True))
    return [(ref, w) for ref, w in out if ref.space in _SPACE_WORD]


def _callees(fn: ir.Function) -> Set[str]:
    return {
        i.callee.name for i in fn.instructions() if isinstance(i, ir.CallFn)
    }


@register
class SharedStateRaceRule(Rule):
    """The shared-state race detector (the tentpole analysis).

    A symbol races when at least two parties (distinct kernels, or a
    kernel plus the host control plane) touch it, at least one touch is
    a write, and nothing serializes them onto a single switch: the
    symbol must carry an ``_at_`` pin and every accessing kernel must be
    unpinned (versioning then confines its access to the symbol's
    switch) or pinned to the *same* label. Host control-plane writes to
    a pinned symbol are serialized by the runtime.
    """

    name = "race"
    codes = ("NCL0701",)
    about = "shared switch state written concurrently without _at_ serialization"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        accesses: Dict[str, List[_StateAccess]] = {}

        # Kernel-side accesses from NIR, with helper accesses attributed
        # to every kernel that (transitively) calls the helper.
        direct: Dict[str, List[Tuple[ir.GlobalRef, bool, object]]] = {}
        for fn in ctx.module.functions.values():
            sites = []
            for instr in fn.instructions():
                for ref, is_write in _instr_accesses(instr):
                    sites.append((ref, is_write, instr.loc))
            direct[fn.name] = sites
        callgraph = {
            fn.name: _callees(fn) for fn in ctx.module.functions.values()
        }
        for fn in ctx.module.kernels():
            reachable = [fn.name]
            frontier = list(callgraph.get(fn.name, ()))
            while frontier:
                callee = frontier.pop()
                if callee in reachable:
                    continue
                reachable.append(callee)
                frontier.extend(callgraph.get(callee, ()))
            desc = f"kernel '{fn.name}'"
            for owner in reachable:
                for ref, is_write, loc in direct.get(owner, ()):
                    accesses.setdefault(ref.name, []).append(
                        _StateAccess(fn.name, desc, fn.at_label, is_write, loc)
                    )

        # Host-side control-plane writes from the AST.
        for decl in _host_functions(ctx.unit):
            if decl.is_kernel:
                continue
            for node in decl.body.walk():
                if not (isinstance(node, ast.Call) and node.name in _HOST_WRITE_CALLS):
                    continue
                target = node.args[0] if node.args else None
                if isinstance(target, ast.Unary) and target.op == "&":
                    target = target.operand
                if not isinstance(target, ast.Ident):
                    continue
                if target.name not in ctx.module.globals:
                    continue
                accesses.setdefault(target.name, []).append(
                    _StateAccess(
                        "<host>", "the host control plane", None, True, target.loc
                    )
                )

        for name, ref in ctx.module.globals.items():
            if ref.space not in _SPACE_WORD:
                continue
            touches = accesses.get(name, [])
            writes = [a for a in touches if a.is_write]
            parties = {a.party for a in touches}
            if not writes or len(parties) < 2:
                continue
            kernel_labels = {a.label for a in touches if a.party != "<host>"}
            serialized = ref.at_label is not None and all(
                label in (None, ref.at_label) for label in kernel_labels
            )
            if serialized:
                continue
            self._report(ctx, name, ref, touches, writes)

    def _report(self, ctx, name, ref, touches, writes) -> None:
        primary = next((w for w in writes if w.loc is not None), writes[0])
        other = next(
            (
                a
                for a in touches
                if a.party != primary.party and a.loc is not None
            ),
            None,
        )
        party_descs = sorted({a.party_desc for a in touches})
        what = _SPACE_WORD[ref.space]
        message = (
            f"possible race on {what} '{name}': accessed by "
            f"{' and '.join(party_descs)} with at least one write and no "
            "single-switch _at_ serialization"
        )
        secondary = []
        if other is not None:
            verb = "written" if other.is_write else "read"
            secondary.append(
                Span(other.loc, len(name), f"{verb} by {other.party_desc}")
            )
        loc = primary.loc
        if loc is None:
            decl = _gvar_decl(ctx.unit, name)
            loc = decl.loc if decl is not None else None
        ctx.sink.warning(
            "NCL0701",
            message,
            loc,
            length=len(name),
            secondary=secondary,
            notes=[
                f"written by {primary.party_desc} here",
            ],
            fixit=(
                f"pin '{name}' and every kernel that touches it to one "
                'switch with _at_("...") to serialize access'
            ),
            rule=self.name,
        )


@register
class UninitReadRule(Rule):
    name = "uninit-read"
    codes = ("NCL0702",)
    about = "local variable may be read before it is assigned"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        for fn in ctx.module.functions.values():
            seen = set()
            for slot_name, load in may_uninit_reads(fn):
                key = (slot_name, load.loc)
                if load.loc is None or key in seen:
                    continue
                seen.add(key)
                ctx.sink.warning(
                    "NCL0702",
                    f"'{slot_name}' may be read before it is assigned "
                    f"in '{fn.name}'",
                    load.loc,
                    length=len(slot_name),
                    fixit=f"initialize '{slot_name}' at its declaration",
                    rule=self.name,
                )


@register
class DeadStoreRule(Rule):
    name = "dead-store"
    codes = ("NCL0703",)
    about = "a stored value is overwritten or discarded before any read"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        for fn in ctx.module.functions.values():
            seen = set()
            for slot_name, store in dead_stores(fn):
                key = (slot_name, store.loc)
                if store.loc is None or key in seen:
                    continue
                seen.add(key)
                ctx.sink.warning(
                    "NCL0703",
                    f"value stored to '{slot_name}' is never read",
                    store.loc,
                    length=len(slot_name),
                    rule=self.name,
                )


def _stmt_terminates(stmt: ast.Stmt) -> bool:
    """Conservatively: does control definitely not fall out of *stmt*?"""
    if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
        return True
    if isinstance(stmt, ast.Block):
        return any(_stmt_terminates(s) for s in stmt.stmts)
    if isinstance(stmt, ast.If):
        return (
            stmt.orelse is not None
            and _stmt_terminates(stmt.then)
            and _stmt_terminates(stmt.orelse)
        )
    return False


@register
class UnreachableCodeRule(Rule):
    """AST-level, because the lowerer prunes dead blocks before any NIR
    analysis could see them."""

    name = "unreachable-code"
    codes = ("NCL0704",)
    about = "statements that no control path reaches"

    def run(self, ctx: AnalysisContext) -> None:
        for decl in ctx.unit.program.functions:
            if decl.body is None:
                continue
            for node in decl.body.walk():
                if not isinstance(node, ast.Block):
                    continue
                for i, stmt in enumerate(node.stmts[:-1]):
                    if _stmt_terminates(stmt):
                        after = node.stmts[i + 1]
                        ctx.sink.warning(
                            "NCL0704",
                            f"unreachable code in '{decl.name}'",
                            after.loc,
                            secondary=[
                                Span(stmt.loc, 1, "control leaves the block here")
                            ],
                            rule=self.name,
                        )
                        break


def _loop_breaks_out(stmt: ast.Node) -> bool:
    """Does this loop-body subtree leave the *enclosing* loop?"""
    if isinstance(stmt, (ast.Break, ast.Return)):
        return True
    if isinstance(stmt, (ast.While, ast.For)):
        return False  # its breaks bind to the nested loop
    return any(_loop_breaks_out(child) for child in stmt.children())


def _kernel_side_decls(unit: TranslationUnit) -> List[ast.FuncDecl]:
    """Kernels plus every helper transitively called from one."""
    decls = [info.decl for info in unit.kernels.values()]
    reachable: Set[str] = set()
    frontier: List[str] = []
    for decl in decls:
        for node in decl.body.walk() if decl.body else ():
            if isinstance(node, ast.Call) and node.name in unit.functions:
                frontier.append(node.name)
    while frontier:
        name = frontier.pop()
        if name in reachable:
            continue
        helper = unit.functions.get(name)
        if helper is None or helper.body is None:
            continue
        reachable.add(name)
        for node in helper.body.walk():
            if isinstance(node, ast.Call) and node.name in unit.functions:
                frontier.append(node.name)
    decls.extend(unit.functions[n] for n in unit.functions if n in reachable)
    return decls


@register
class UnboundedLoopRule(Rule):
    name = "unbounded-loop"
    codes = ("NCL0705",)
    about = "kernel loop with no bounded trip count (cannot unroll)"

    def run(self, ctx: AnalysisContext) -> None:
        for decl in _kernel_side_decls(ctx.unit):
            if decl.body is None:
                continue
            for node in decl.body.walk():
                if isinstance(node, ast.While):
                    cond, body = node.cond, node.body
                elif isinstance(node, ast.For):
                    cond, body = node.cond, node.body
                else:
                    continue
                if cond is None:
                    infinite = True
                else:
                    value = const_eval(cond)
                    infinite = value is not None and value != 0
                if infinite and not _loop_breaks_out(body):
                    ctx.sink.warning(
                        "NCL0705",
                        f"loop in '{decl.name}' never terminates and cannot "
                        "be unrolled for the PISA pipeline",
                        node.loc,
                        notes=[
                            "switch-side loops are fully unrolled at compile "
                            "time and need a bounded trip count"
                        ],
                        rule=self.name,
                    )


@register
class DeadBranchRule(Rule):
    """Range-proved constant branch conditions (proved-only: a branch
    the analysis cannot decide is simply not a finding).

    Literal-constant conditions are skipped -- ``while (1)`` and
    config-macro idioms are deliberate, and unbounded-loop/unreachable-
    code already cover their pathological cases.
    """

    name = "dead-branch"
    codes = ("NCL0706",)
    about = "branch condition proved always true / always false"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        sites: Dict[object, List[Optional[bool]]] = {}
        for fn, facts in ctx.absint_functions():
            for block in fn.blocks:
                if block not in facts.reachable:
                    continue
                term = block.terminator
                if not isinstance(term, ir.CondBr):
                    continue
                if isinstance(term.cond, ir.Const):
                    continue
                # branches are synthesized by the lowerer; the condition
                # expression is what carries the source location
                loc = term.loc or getattr(term.cond, "loc", None)
                if loc is None:
                    continue
                sites.setdefault(loc, []).append(
                    facts.branch_decisions.get(term)
                )
        for loc, decisions in sites.items():
            if any(d is None for d in decisions):
                continue  # undecided in at least one context
            if len(set(decisions)) != 1:
                continue  # proved, but in different directions per context
            taken = decisions[0]
            dead = "else" if taken else "then"
            ctx.sink.error(
                "NCL0706",
                f"condition is always {'true' if taken else 'false'}; the "
                f"{dead} branch never executes",
                loc,
                notes=[
                    "proved by interval and known-bits analysis of every "
                    "path reaching this branch"
                ],
                rule=self.name,
                status="proved",
            )


@register
class WidthTruncationRule(Rule):
    name = "width-truncation"
    codes = ("NCL0801",)
    about = "implicit conversion to a narrower integer"
    requires_nir = True

    @staticmethod
    def _implicit_truncs(fn: ir.Function):
        for instr in fn.instructions():
            if (
                isinstance(instr, ir.Cast)
                and instr.kind == "trunc"
                and not instr.explicit
                and instr.loc is not None
            ):
                from_bits = _bits(instr.operands[0].ty)
                to_bits = _bits(instr.ty)
                if from_bits is not None and to_bits is not None:
                    yield instr, from_bits, to_bits

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        sites: Dict[Tuple, List[str]] = {}
        evidence: Dict[Tuple, object] = {}
        for fn, facts in ctx.absint_functions():
            for instr, from_bits, to_bits in self._implicit_truncs(fn):
                key = (instr.loc, from_bits, to_bits)
                val = facts.value_of(instr.operands[0])
                lo, hi = (
                    (-(1 << (to_bits - 1)), (1 << (to_bits - 1)) - 1)
                    if is_signed(instr.ty)
                    else (0, (1 << to_bits) - 1)
                )
                if val is None:
                    grade = "possible"
                elif val.is_bottom or (lo <= val.lo and val.hi <= hi):
                    grade = "clean"  # unreachable, or the value fits
                elif val.hi < lo or val.lo > hi:
                    grade = "proved"
                    evidence[key] = val
                else:
                    grade = "possible"
                    if val.informative():
                        evidence.setdefault(key, val)
                sites.setdefault(key, []).append(grade)
        for fn in _absint_missed(ctx):
            for instr, from_bits, to_bits in self._implicit_truncs(fn):
                sites.setdefault(
                    (instr.loc, from_bits, to_bits), []
                ).append("possible")

        for (loc, from_bits, to_bits), grades in sites.items():
            status = _grade_site(grades)
            if status is None:
                continue
            val = evidence.get((loc, from_bits, to_bits))
            notes = [_range_note("the truncated value", val)] if val else None
            if status == "proved":
                ctx.sink.error(
                    "NCL0801",
                    f"implicit truncation from {from_bits}-bit to "
                    f"{to_bits}-bit always loses data: no value in range "
                    f"is representable after narrowing",
                    loc,
                    notes=notes,
                    fixit="mask or range-check the value before narrowing it",
                    rule=self.name,
                    status=status,
                )
            else:
                ctx.sink.warning(
                    "NCL0801",
                    f"implicit truncation from {from_bits}-bit to "
                    f"{to_bits}-bit value may lose data",
                    loc,
                    notes=notes,
                    fixit="write an explicit cast if the narrowing is intended",
                    rule=self.name,
                    status=status,
                )


@register
class ShiftRangeRule(Rule):
    """Shift amounts, graded by the interpreter's trap semantics: a
    negative amount traps, an amount >= the width silently reduces
    modulo the width (almost never what the author meant)."""

    name = "shift-range"
    codes = ("NCL0802",)
    about = "shift amount negative or >= the shifted value's width"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        sites: Dict[object, List[str]] = {}
        details: Dict[object, Tuple] = {}
        for fn, facts in ctx.absint_functions():
            for instr in fn.instructions():
                if not (
                    isinstance(instr, ir.BinOp)
                    and instr.op in ("shl", "lshr", "ashr")
                    and instr.loc is not None
                ):
                    continue
                bits = _bits(instr.ty)
                if bits is None:
                    continue
                status = facts.shift_status.get(instr)
                amount = facts.value_of(instr.rhs)
                if status in ("neg", "oob"):
                    grade = "proved"
                elif status == "maybe" and amount is not None and amount.informative():
                    grade = "possible"
                else:
                    grade = "clean"
                sites.setdefault(instr.loc, []).append(grade)
                if grade != "clean" and instr.loc not in details:
                    details[instr.loc] = (status, bits, amount)
        for fn in _absint_missed(ctx):
            for instr in fn.instructions():
                if (
                    isinstance(instr, ir.BinOp)
                    and instr.op in ("shl", "lshr", "ashr")
                    and instr.loc is not None
                    and isinstance(instr.rhs, ir.Const)
                ):
                    bits = _bits(instr.ty)
                    if bits is None:
                        continue
                    amount = instr.rhs.value
                    if amount < 0 or amount >= bits:
                        sites.setdefault(instr.loc, []).append("proved")
                        details.setdefault(
                            instr.loc, ("neg" if amount < 0 else "oob", bits, None)
                        )
                    else:
                        sites.setdefault(instr.loc, []).append("clean")

        for loc, grades in sites.items():
            graded = _grade_site(grades)
            if graded is None:
                continue
            status, bits, amount = details[loc]
            notes = [_range_note("the shift amount", amount)] if amount else None
            if graded == "proved" and status == "neg":
                message = (
                    "shift amount is always negative, which traps at runtime"
                )
            elif graded == "proved":
                message = (
                    f"shift amount is always out of range for a {bits}-bit "
                    "value (amounts are reduced modulo the width)"
                )
            else:
                message = (
                    f"shift amount may be out of range for a {bits}-bit value"
                )
            report = ctx.sink.error if graded == "proved" else ctx.sink.warning
            report(
                "NCL0802", message, loc, notes=notes, rule=self.name,
                status=graded,
            )


@register
class OverflowRule(Rule):
    """Wrapping arithmetic, graded against the *unwrapped* result range:
    disjoint from the representable range means every execution wraps
    (proved); an overlap flags only when both operand ranges are
    informative, so full-width unknowns stay quiet."""

    name = "overflow"
    codes = ("NCL0803",)
    about = "arithmetic whose result overflows its declared width"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        sites: Dict[object, List[str]] = {}
        details: Dict[object, Tuple] = {}
        for fn, facts in ctx.absint_functions():
            for instr in fn.instructions():
                if not (
                    isinstance(instr, ir.BinOp)
                    and instr.op in ("add", "sub", "mul")
                    and instr.loc is not None
                ):
                    continue
                bits = _bits(instr.ty)
                if bits is None:
                    continue
                a = facts.value_of(instr.lhs)
                b = facts.value_of(instr.rhs)
                grade = "clean"
                if a is not None and b is not None:
                    exact = exact_range(instr.op, a, b)
                    signed = is_signed(instr.ty)
                    lo = -(1 << (bits - 1)) if signed else 0
                    hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
                    if exact is not None:
                        ex_lo, ex_hi = exact
                        if ex_lo > hi or ex_hi < lo:
                            grade = "proved"
                        elif (ex_lo < lo or ex_hi > hi) and (
                            a.informative() and b.informative()
                        ):
                            grade = "possible"
                        if grade != "clean" and instr.loc not in details:
                            details[instr.loc] = (bits, signed, ex_lo, ex_hi)
                sites.setdefault(instr.loc, []).append(grade)
        # No syntactic fallback: const-const arithmetic is exactly what
        # the analyzer proves even with top inputs, and anything else
        # was never reportable without ranges.

        for loc, grades in sites.items():
            graded = _grade_site(grades)
            if graded is None:
                continue
            bits, signed, ex_lo, ex_hi = details[loc]
            kind = "signed" if signed else "unsigned"
            if graded == "proved" and ex_lo == ex_hi:
                message = (
                    f"expression always evaluates to {ex_lo}, which "
                    f"overflows {bits}-bit {kind} arithmetic"
                )
            elif graded == "proved":
                message = (
                    f"arithmetic always overflows: the exact result range "
                    f"[{ex_lo}, {ex_hi}] lies entirely outside {bits}-bit "
                    f"{kind} range"
                )
            else:
                message = (
                    f"arithmetic may overflow {bits}-bit {kind} range: the "
                    f"exact result can reach [{ex_lo}, {ex_hi}]"
                )
            report = ctx.sink.error if graded == "proved" else ctx.sink.warning
            report(
                "NCL0803", message, loc,
                notes=["results wrap modulo the declared width at runtime"],
                rule=self.name, status=graded,
            )


@register
class DivByZeroRule(Rule):
    name = "div-by-zero"
    codes = ("NCL0805",)
    about = "division or remainder whose divisor can be zero"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        sites: Dict[object, List[str]] = {}
        evidence: Dict[object, object] = {}
        for fn, facts in ctx.absint_functions():
            for instr in fn.instructions():
                if not (
                    isinstance(instr, ir.BinOp)
                    and instr.op in ("udiv", "sdiv", "urem", "srem")
                    and instr.loc is not None
                ):
                    continue
                status = facts.div_status.get(instr)
                divisor = facts.value_of(instr.rhs)
                if status == "zero":
                    grade = "proved"
                elif (
                    status == "maybe"
                    and divisor is not None
                    and divisor.informative()
                ):
                    grade = "possible"
                else:
                    grade = "clean"
                sites.setdefault(instr.loc, []).append(grade)
                if grade != "clean" and divisor is not None:
                    evidence.setdefault(instr.loc, divisor)
        for fn in _absint_missed(ctx):
            for instr in fn.instructions():
                if (
                    isinstance(instr, ir.BinOp)
                    and instr.op in ("udiv", "sdiv", "urem", "srem")
                    and instr.loc is not None
                ):
                    const_zero = (
                        isinstance(instr.rhs, ir.Const) and instr.rhs.value == 0
                    )
                    sites.setdefault(instr.loc, []).append(
                        "proved" if const_zero else "clean"
                    )

        for loc, grades in sites.items():
            graded = _grade_site(grades)
            if graded is None:
                continue
            val = evidence.get(loc)
            notes = [_range_note("the divisor", val)] if val else None
            if graded == "proved":
                ctx.sink.error(
                    "NCL0805",
                    "divisor is always zero; this division traps on every "
                    "execution",
                    loc, notes=notes, rule=self.name, status=graded,
                )
            else:
                ctx.sink.warning(
                    "NCL0805",
                    "divisor may be zero",
                    loc, notes=notes,
                    fixit="guard the division or prove the divisor nonzero",
                    rule=self.name, status=graded,
                )


@register
class UnusedKernelRule(Rule):
    """Only meaningful when the program ships its own host driver code;
    examples driven from Python (no host functions) stay silent."""

    name = "unused-kernel"
    codes = ("NCL0901", "NCL0902")
    about = "kernel defined but never launched/registered by host code"

    def run(self, ctx: AnalysisContext) -> None:
        hosts = [d for d in _host_functions(ctx.unit) if not d.is_kernel]
        if not hosts:
            return
        used_out: Set[str] = set()
        used_in: Set[str] = set()
        for decl in hosts:
            for node in decl.body.walk():
                if not isinstance(node, ast.Call):
                    continue
                if node.name not in ("ncl::out", "ncl::in") or not node.args:
                    continue
                target = node.args[0]
                if isinstance(target, ast.Ident):
                    (used_out if node.name == "ncl::out" else used_in).add(
                        target.name
                    )
        for name, info in ctx.unit.out_kernels.items():
            if name not in used_out:
                ctx.sink.warning(
                    "NCL0901",
                    f"outgoing kernel '{name}' is defined but never "
                    "launched with ncl::out",
                    info.decl.loc,
                    length=len(name),
                    rule=self.name,
                )
        for name, info in ctx.unit.in_kernels.items():
            if name not in used_in:
                ctx.sink.warning(
                    "NCL0902",
                    f"incoming kernel '{name}' is defined but never "
                    "registered with ncl::in",
                    info.decl.loc,
                    length=len(name),
                    rule=self.name,
                )


@register
class UnusedWindowFieldRule(Rule):
    name = "unused-window-field"
    codes = ("NCL0903",)
    about = "window extension field that no kernel reads"

    def run(self, ctx: AnalysisContext) -> None:
        ext = ctx.unit.program.window_ext
        user_fields = ctx.unit.window_fields[3:]  # skip seq/from/last builtins
        if ext is None or not user_fields:
            return
        read: Set[str] = set()
        for decl in ctx.unit.program.functions:
            if decl.body is None:
                continue
            for node in decl.body.walk():
                if (
                    isinstance(node, ast.Member)
                    and isinstance(node.base, ast.Ident)
                    and node.base.name == "window"
                ):
                    read.add(node.field)
        for fname, _fty in user_fields:
            if fname not in read:
                ctx.sink.warning(
                    "NCL0903",
                    f"window extension field '{fname}' is never read by "
                    "any kernel",
                    ext.loc,
                    notes=[
                        "the field still travels in every NCP window header; "
                        "remove it to save PHV bits and wire bytes"
                    ],
                    rule=self.name,
                )


def _longest_block_path(fn: ir.Function) -> int:
    """Blocks on the longest acyclic entry path (a stage-count proxy)."""
    depth: Dict[ir.Block, int] = {}
    on_path: Set[ir.Block] = set()

    def visit(block: ir.Block) -> int:
        if block in depth:
            return depth[block]
        if block in on_path:
            return 0  # back edge: loops are unrolled later, ignore here
        on_path.add(block)
        best = 0
        for succ in block.successors():
            best = max(best, visit(succ))
        on_path.discard(block)
        depth[block] = 1 + best
        return depth[block]

    return visit(fn.entry) if fn.blocks else 0


@register
class PisaResourceRule(Rule):
    """Early, explained versions of the backend's accept/reject budgets.

    Estimates are made on pre-unroll NIR, so they are lower bounds; the
    P4 backend remains authoritative. The point (paper S5/S6) is telling
    the programmer *which construct* spends the budget instead of a late
    opaque rejection.
    """

    name = "pisa-resources"
    codes = ("NCL0610", "NCL0611", "NCL0612", "NCL0613", "NCL0614")
    about = "stage/table/PHV/register budget estimates vs the chip profile"
    requires_nir = True

    def run(self, ctx: AnalysisContext) -> None:
        assert ctx.module is not None
        profile = ctx.profile
        header_bits = sum(
            b for _, ty in ctx.module.window_fields if (b := _bits(ty))
        )
        for fn in ctx.module.kernels(ir.FunctionKind.OUT_KERNEL):
            decl_loc = None
            info = ctx.unit.out_kernels.get(fn.name)
            if info is not None:
                decl_loc = info.decl.loc
            self._check_mul(ctx, fn, profile)
            self._check_register_accesses(ctx, fn, profile)
            self._check_phv(ctx, fn, profile, header_bits, decl_loc)
            self._check_stages_tables(ctx, fn, profile, decl_loc)

    def _check_mul(self, ctx, fn, profile) -> None:
        if profile.supports_mul:
            return
        for instr in fn.instructions():
            if not (isinstance(instr, ir.BinOp) and instr.op == "mul"):
                continue
            if any(
                isinstance(op, ir.Const)
                and op.value > 0
                and op.value & (op.value - 1) == 0
                for op in instr.operands
            ):
                continue  # strength-reduces to a shift
            ctx.sink.warning(
                "NCL0610",
                f"kernel '{fn.name}' multiplies two non-constant values; "
                f"the '{profile.name}' ALU has no general multiply",
                instr.loc,
                notes=[
                    "multiplication by a power-of-two constant is fine "
                    "(it strength-reduces to a shift)"
                ],
                rule=self.name,
            )

    def _check_register_accesses(self, ctx, fn, profile) -> None:
        counts: Dict[str, int] = {}
        first_loc: Dict[str, object] = {}
        for instr in fn.instructions():
            for ref, _w in _instr_accesses(instr):
                if ref.space != "net":
                    continue
                counts[ref.name] = counts.get(ref.name, 0) + 1
                if ref.name not in first_loc and instr.loc is not None:
                    first_loc[ref.name] = instr.loc
        for name, count in counts.items():
            if count <= profile.max_register_accesses_per_array:
                continue
            ctx.sink.warning(
                "NCL0611",
                f"kernel '{fn.name}' makes {count} accesses per window to "
                f"register array '{name}'; profile '{profile.name}' allows "
                f"{profile.max_register_accesses_per_array}",
                first_loc.get(name),
                length=len(name),
                notes=[
                    "the register-splitting transformation can divide some "
                    "arrays across stages; otherwise restructure the kernel "
                    "to a single read-modify-write per array"
                ],
                rule=self.name,
            )

    def _check_phv(self, ctx, fn, profile, header_bits, decl_loc) -> None:
        data_bits = 0
        for param in fn.params:
            pointee = (
                param.ty.pointee
                if hasattr(param.ty, "pointee") and param.ty.is_pointer
                else param.ty
            )
            data_bits += _bits(pointee) or 0
        est = header_bits + data_bits
        if est > profile.phv_bits:
            ctx.sink.warning(
                "NCL0612",
                f"window for kernel '{fn.name}' needs an estimated {est} "
                f"PHV bits (header {header_bits} + data {data_bits}); "
                f"profile '{profile.name}' provides {profile.phv_bits}",
                decl_loc,
                length=len(fn.name),
                rule=self.name,
            )

    def _check_stages_tables(self, ctx, fn, profile, decl_loc) -> None:
        est_stages = _longest_block_path(fn)
        est_tables = sum(
            1
            for i in fn.instructions()
            if i.has_side_effects and not isinstance(i, (ir.Br, ir.Ret))
        )
        if est_stages > profile.max_stages:
            ctx.sink.warning(
                "NCL0613",
                f"kernel '{fn.name}' spans an estimated {est_stages} pipeline "
                f"stages before unrolling; profile '{profile.name}' has "
                f"{profile.max_stages}",
                decl_loc,
                length=len(fn.name),
                notes=["loop unrolling multiplies this estimate further"],
                rule=self.name,
            )
        if est_tables > profile.max_tables:
            ctx.sink.warning(
                "NCL0614",
                f"kernel '{fn.name}' lowers to an estimated {est_tables} "
                f"table applications; profile '{profile.name}' allows "
                f"{profile.max_tables}",
                decl_loc,
                length=len(fn.name),
                rule=self.name,
            )
