"""The NCP protocol model checker (``nclc check-proto``).

Composes the kernel effect summaries of :mod:`repro.analysis.effects`
with a small **explicit-state model checker** that exhaustively explores
per-window NCP interleavings:

* ``send`` -- the host puts attempt 0 on the wire;
* ``deliver`` -- an in-flight attempt reaches the switch and the kernel
  executes (reorder is implicit: any in-flight attempt may deliver);
* ``drop`` -- an in-flight attempt is lost;
* ``duplicate`` -- the network duplicates an in-flight attempt;
* ``retransmit`` -- the host presumes loss and re-sends (attempt
  numbering as carried in the INT trailer -- the host *cannot* know
  whether the previous attempt already executed);
* ``restart`` -- a switch loses all register state and dedup marks.

The checked property is **at-most-once effect semantics** per window:
no non-idempotent shared-state update may apply twice to surviving
switch state. When the property fails, the checker emits the *minimal*
counterexample schedule (breadth-first search) as part of a
byte-deterministic ``repro.proto/1`` report; the schedule replays in
the simulator via :func:`replay_counterexample`, reproducing the
double-count on a real :class:`~repro.runtime.Cluster`.

Checks are registered like the deployment checks -- a separate registry
run only by ``check-proto`` but listed by ``nclc lint --list-rules``
and folded into :func:`repro.diag.codes.all_codes`.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.effects import (
    KIND_IDEMPOTENT,
    KIND_MONOID,
    KIND_UNSAFE,
    KernelEffects,
)
from repro.diag import DiagnosticSink, Severity, Span
from repro.diag.export import diagnostic_dict
from repro.errors import ReproError, SourceLocation
from repro.nclc.driver import CompiledProgram

SCHEMA = "repro.proto/1"

_GUARD_FIXIT = (
    "guard the update on a per-window dedup mark, e.g. "
    "`if (seen[window.seq & 63] == 0) { seen[window.seq & 63] = 1; ... }`"
)


def _span(loc: Optional[SourceLocation],
          label: Optional[str] = None) -> Optional[Span]:
    return Span(loc, 1, label) if loc is not None else None


# ---------------------------------------------------------------------------
# The explicit-state model checker
# ---------------------------------------------------------------------------


class TrackedSymbol:
    """A non-idempotent shared symbol the model must account for."""

    __slots__ = ("name", "guarded", "label", "guard_label", "grade")

    def __init__(self, name: str, guarded: bool, label: str,
                 guard_label: str, grade: str) -> None:
        self.name = name
        self.guarded = guarded
        self.label = label
        self.guard_label = guard_label
        self.grade = grade


class Counterexample:
    __slots__ = ("symbol", "applied", "schedule")

    def __init__(self, symbol: str, applied: int,
                 schedule: List[Dict[str, object]]) -> None:
        self.symbol = symbol
        self.applied = applied
        self.schedule = schedule

    def to_json(self) -> Dict[str, object]:
        return {
            "symbol": self.symbol,
            "applied": self.applied,
            "schedule": list(self.schedule),
        }


class ModelResult:
    __slots__ = ("kernel", "switch", "verdict", "counterexample",
                 "states_explored")

    def __init__(self, kernel: str, switch: str, verdict: str,
                 counterexample: Optional[Counterexample],
                 states_explored: int) -> None:
        self.kernel = kernel
        self.switch = switch
        self.verdict = verdict
        self.counterexample = counterexample
        self.states_explored = states_explored


# state tuple layout:
#   (sent, inflight attempts (sorted), retx_used, dup_used,
#    guard_marked, applied counts, restarted labels (sorted))
_State = Tuple[bool, Tuple[int, ...], int, bool, bool,
               Tuple[int, ...], Tuple[str, ...]]

_Action = Tuple[str, object]


def _actions(state: _State, max_retx: int, max_dup: int,
             labels: Sequence[str]) -> List[_Action]:
    sent, inflight, retx, dup, _marked, _applied, restarted = state
    out: List[_Action] = []
    if not sent:
        out.append(("send", 0))
        return out
    distinct = sorted(set(inflight))
    for pkt in distinct:
        out.append(("deliver", pkt))
    if retx < max_retx:
        out.append(("retransmit", retx + 1))
    if not dup:
        for pkt in distinct:
            out.append(("duplicate", pkt))
    for pkt in distinct:
        out.append(("drop", pkt))
    for label in labels:
        if label not in restarted:
            out.append(("restart", label))
    return out


def _apply(state: _State, action: _Action, tracked: Sequence[TrackedSymbol],
           has_guard: bool) -> _State:
    sent, inflight, retx, dup, marked, applied, restarted = state
    kind, arg = action
    if kind == "send":
        return (True, tuple(sorted(inflight + (0,))), retx, dup, marked,
                applied, restarted)
    if kind == "retransmit":
        attempt = int(arg)  # type: ignore[call-overload]
        return (sent, tuple(sorted(inflight + (attempt,))), attempt, dup,
                marked, applied, restarted)
    if kind == "duplicate":
        attempt = int(arg)  # type: ignore[call-overload]
        return (sent, tuple(sorted(inflight + (attempt,))), retx, True,
                marked, applied, restarted)
    if kind == "drop":
        attempt = int(arg)  # type: ignore[call-overload]
        remaining = list(inflight)
        remaining.remove(attempt)
        return (sent, tuple(remaining), retx, dup, marked, applied,
                restarted)
    if kind == "deliver":
        attempt = int(arg)  # type: ignore[call-overload]
        remaining = list(inflight)
        remaining.remove(attempt)
        new_applied = list(applied)
        for i, sym in enumerate(tracked):
            if sym.guarded and marked:
                continue  # the dedup guard absorbs the replay
            new_applied[i] = min(2, new_applied[i] + 1)
        return (sent, tuple(remaining), retx, dup, marked or has_guard,
                tuple(new_applied), restarted)
    if kind == "restart":
        label = str(arg)
        new_applied = list(applied)
        new_marked = marked
        for i, sym in enumerate(tracked):
            if sym.label == label:
                new_applied[i] = 0  # the state the effect lives in is gone
            if sym.guarded and sym.guard_label == label:
                new_marked = False  # ... but so may be the dedup mark
        return (sent, inflight, retx, dup, new_marked, tuple(new_applied),
                tuple(sorted(set(restarted) | {label})))
    raise ReproError(f"unknown model action {kind!r}")


def _schedule_entry(action: _Action) -> Dict[str, object]:
    kind, arg = action
    if kind == "restart":
        return {"action": "restart", "switch": arg}
    return {"action": kind, "attempt": arg}


def check_kernel_model(
    effects: KernelEffects,
    switch_label: str,
    symbol_labels: Optional[Dict[str, Optional[str]]] = None,
    max_retx: int = 1,
    max_dup: int = 1,
) -> ModelResult:
    """Exhaustively explore the window interleavings of one kernel.

    ``symbol_labels`` maps shared-symbol names to their pinned switch
    label (``None`` meaning "lives on the kernel's switch"); it defaults
    to the ``at_label`` recorded in the effect summary.
    """
    labels_of = dict(symbol_labels or {})

    def label_of(symbol: str) -> str:
        pinned = labels_of.get(symbol)
        if pinned is None:
            sym = effects.symbols.get(symbol)
            pinned = sym.at_label if sym is not None else None
        return pinned if pinned is not None else switch_label

    guard_labels = {g.symbol: label_of(g.symbol) for g in effects.guards}
    tracked: List[TrackedSymbol] = []
    for name in sorted(effects.symbols):
        sym = effects.symbols[name]
        if sym.kind == KIND_IDEMPOTENT or sym.kind == "none":
            continue
        guard_label = label_of(name)
        if sym.guarded and sym.sites and sym.sites[0].guard is not None:
            guard_label = guard_labels.get(
                sym.sites[0].guard.symbol, guard_label
            )
        tracked.append(TrackedSymbol(
            name, sym.guarded and not sym.partial_guard, label_of(name),
            guard_label, sym.grade,
        ))

    if not tracked:
        return ModelResult(effects.function, switch_label, effects.verdict,
                           None, 1)

    has_guard = bool(effects.guards)
    labels = sorted(
        {s.label for s in tracked}
        | {s.guard_label for s in tracked if s.guarded}
    )
    init: _State = (False, (), 0, False, False,
                    tuple(0 for _ in tracked), ())
    parents: Dict[_State, Tuple[_State, _Action]] = {}
    seen = {init}
    queue: Deque[_State] = deque([init])
    violation: Optional[Tuple[_State, int]] = None
    while queue and violation is None:
        state = queue.popleft()
        for action in _actions(state, max_retx, max_dup, labels):
            nxt = _apply(state, action, tracked, has_guard)
            if nxt in seen:
                continue
            seen.add(nxt)
            parents[nxt] = (state, action)
            for i, count in enumerate(nxt[5]):
                if count >= 2:
                    violation = (nxt, i)
                    break
            if violation is not None:
                break
            queue.append(nxt)

    if violation is None:
        return ModelResult(effects.function, switch_label, effects.verdict,
                           None, len(seen))

    end_state, sym_index = violation
    schedule: List[Dict[str, object]] = []
    cursor = end_state
    while cursor in parents:
        prev, action = parents[cursor]
        schedule.append(_schedule_entry(action))
        cursor = prev
    schedule.reverse()
    cx = Counterexample(tracked[sym_index].name, 2, schedule)
    return ModelResult(effects.function, switch_label, "unsafe", cx,
                       len(seen))


# ---------------------------------------------------------------------------
# Check registry (mirrors repro.analysis.deploy.checks)
# ---------------------------------------------------------------------------


class ProtoContext:
    """Shared state for the transport-safety checks of one program."""

    def __init__(self, program: CompiledProgram,
                 sink: Optional[DiagnosticSink] = None) -> None:
        self.program = program
        self.sink = sink if sink is not None else DiagnosticSink()
        self._summaries: Optional[Dict[str, Dict[str, KernelEffects]]] = None
        self._results: Optional[Dict[Tuple[str, str], ModelResult]] = None

    def effect_summaries(self) -> Dict[str, Dict[str, KernelEffects]]:
        if self._summaries is None:
            self._summaries = self.program.effect_summaries()
        return self._summaries

    def model_results(self) -> Dict[Tuple[str, str], ModelResult]:
        if self._results is None:
            self._results = {}
            for label, kernels in sorted(self.effect_summaries().items()):
                for name in sorted(kernels):
                    self._results[(label, name)] = check_kernel_model(
                        kernels[name], label
                    )
        return self._results

    def kernel_loc(self, kernel: str) -> Optional[SourceLocation]:
        info = self.program.unit.out_kernels.get(kernel)
        loc = getattr(info, "loc", None)
        return loc if isinstance(loc, SourceLocation) else None


class ProtoCheck:
    """Base class: one family of transport-safety findings."""

    name = "unnamed"
    codes: Tuple[str, ...] = ()
    about = ""

    def run(self, ctx: ProtoContext) -> None:
        raise NotImplementedError


_REGISTRY: Dict[str, ProtoCheck] = {}


def register(cls: Type[ProtoCheck]) -> Type[ProtoCheck]:
    check = cls()
    if not isinstance(check, ProtoCheck):
        raise ValueError(f"{cls.__name__} is not a ProtoCheck")
    if check.name in _REGISTRY:
        raise ValueError(f"duplicate proto check name {check.name!r}")
    _REGISTRY[check.name] = check
    return cls


def all_checks() -> List[ProtoCheck]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def run_checks(ctx: ProtoContext,
               checks: Optional[Sequence[ProtoCheck]] = None) -> None:
    for check in (checks if checks is not None else all_checks()):
        check.run(ctx)
    ctx.sink.dedupe()


@register
class EffectClassification(ProtoCheck):
    """NCL0850/NCL0851/NCL0852: unguarded non-idempotent updates."""

    name = "effects"
    codes = ("NCL0850", "NCL0851", "NCL0852")
    about = "classify kernel shared-state updates for replay safety"

    def run(self, ctx: ProtoContext) -> None:
        for _label, kernels in sorted(ctx.effect_summaries().items()):
            for kname in sorted(kernels):
                eff = kernels[kname]
                for sname in sorted(eff.symbols):
                    sym = eff.symbols[sname]
                    for site in sym.sites:
                        if site.guarded:
                            continue
                        loc = site.instr.loc
                        if site.kind == KIND_UNSAFE and "self" in site.deps:
                            ctx.sink.error(
                                "NCL0850",
                                f"kernel {kname!r}: read-modify-write of "
                                f"switch memory {sname!r} is unsafe on "
                                f"replay: {site.detail}",
                                loc=loc,
                                notes=[
                                    "a retransmitted window re-executes the "
                                    "kernel; this update does not collapse "
                                    "or commute under re-execution",
                                ],
                                fixit=_GUARD_FIXIT,
                                rule=self.name,
                                status=site.grade,
                            )
                        elif site.kind == KIND_UNSAFE:
                            ctx.sink.warning(
                                "NCL0852",
                                f"kernel {kname!r}: overwrite of switch "
                                f"memory {sname!r} is not replay-stable: "
                                f"{site.detail}",
                                loc=loc,
                                notes=[
                                    "re-executing the kernel on the same "
                                    "window bytes may store a different "
                                    "value or target a different element",
                                ],
                                fixit=_GUARD_FIXIT,
                                rule=self.name,
                                status=site.grade,
                            )
                        elif site.kind == KIND_MONOID:
                            ctx.sink.warning(
                                "NCL0851",
                                f"kernel {kname!r}: unguarded "
                                f"commutative fold into switch memory "
                                f"{sname!r}: {site.detail}",
                                loc=loc,
                                notes=[
                                    "replays of the same window accumulate "
                                    "(the classic double-count); add a "
                                    "dedup guard or make the fold "
                                    "idempotent",
                                ],
                                fixit=_GUARD_FIXIT,
                                rule=self.name,
                                status=site.grade,
                            )


@register
class GuardCoverage(ProtoCheck):
    """NCL0853: a dedup guard that misses some update sites."""

    name = "guard-coverage"
    codes = ("NCL0853",)
    about = "every update of a guarded symbol must sit behind the guard"

    def run(self, ctx: ProtoContext) -> None:
        for _label, kernels in sorted(ctx.effect_summaries().items()):
            for kname in sorted(kernels):
                eff = kernels[kname]
                for sname in sorted(eff.symbols):
                    sym = eff.symbols[sname]
                    if not sym.partial_guard:
                        continue
                    unguarded = [s for s in sym.sites if not s.guarded]
                    loc = unguarded[0].instr.loc if unguarded else None
                    ctx.sink.warning(
                        "NCL0853",
                        f"kernel {kname!r}: dedup guard covers only some "
                        f"updates of {sname!r} "
                        f"({len(sym.sites) - len(unguarded)} of "
                        f"{len(sym.sites)} sites guarded)",
                        loc=loc,
                        notes=[
                            "an update outside the guarded branch still "
                            "re-executes on replay",
                        ],
                        fixit="move every update of the symbol inside the "
                        "guarded branch",
                        rule=self.name,
                        status="possible",
                    )


@register
class RestartHazard(ProtoCheck):
    """NCL0855: guard mark and guarded effect on different switches."""

    name = "restart-hazard"
    codes = ("NCL0855",)
    about = "a dedup mark must restart together with the state it guards"

    def run(self, ctx: ProtoContext) -> None:
        for label, kernels in sorted(ctx.effect_summaries().items()):
            for kname in sorted(kernels):
                eff = kernels[kname]
                for sname in sorted(eff.symbols):
                    sym = eff.symbols[sname]
                    if sym.kind == KIND_IDEMPOTENT or not sym.guarded:
                        continue
                    guard = next(
                        (s.guard for s in sym.sites if s.guard is not None),
                        None,
                    )
                    if guard is None:
                        continue
                    guard_sym = eff.symbols.get(guard.symbol)
                    guard_label = (
                        guard_sym.at_label
                        if guard_sym is not None and guard_sym.at_label
                        else self._global_label(ctx, label, guard.symbol)
                    ) or label
                    effect_label = sym.at_label or label
                    if guard_label == effect_label:
                        continue
                    site = sym.sites[0]
                    ctx.sink.warning(
                        "NCL0855",
                        f"kernel {kname!r}: dedup mark {guard.symbol!r} "
                        f"lives on switch {guard_label!r} but the guarded "
                        f"update of {sname!r} executes on "
                        f"{effect_label!r}",
                        loc=site.instr.loc,
                        notes=[
                            f"a restart of {guard_label!r} clears the mark "
                            "but not the effect: the next retransmit "
                            "re-applies it",
                        ],
                        fixit="pin the mark register and the guarded state "
                        "to the same _at_ label",
                        rule=self.name,
                        status="possible",
                    )

    @staticmethod
    def _global_label(ctx: ProtoContext, label: str,
                      symbol: str) -> Optional[str]:
        module = ctx.program.switch_modules.get(label)
        if module is None:
            return None
        ref = module.globals.get(symbol)
        return ref.at_label if ref is not None else None


@register
class WindowModel(ProtoCheck):
    """NCL0854: the model checker found a violating schedule."""

    name = "window-model"
    codes = ("NCL0854",)
    about = "exhaustive window-interleaving search for double-applies"

    def run(self, ctx: ProtoContext) -> None:
        for (label, kname), result in sorted(ctx.model_results().items()):
            cx = result.counterexample
            if cx is None:
                continue
            eff = ctx.effect_summaries()[label][kname]
            sym = eff.symbols.get(cx.symbol)
            loc: Optional[SourceLocation] = None
            grade = "possible"
            if sym is not None and sym.sites:
                loc = sym.sites[0].instr.loc
                grade = sym.grade
            steps = ", ".join(_describe_step(s) for s in cx.schedule)
            ctx.sink.error(
                "NCL0854",
                f"kernel {kname!r} on switch {label!r}: window "
                f"interleaving applies the update of {cx.symbol!r} "
                f"{cx.applied}x (at-most-once violated)",
                loc=loc,
                notes=[
                    f"minimal counterexample ({len(cx.schedule)} steps): "
                    f"{steps}",
                    "replay it in the simulator: nclc check-proto --json "
                    "| repro.analysis.proto.replay_counterexample",
                ],
                fixit=_GUARD_FIXIT,
                rule=self.name,
                status=grade,
            )


def _describe_step(step: Dict[str, object]) -> str:
    action = step.get("action")
    if action == "restart":
        return f"restart({step.get('switch')})"
    return f"{action}(a{step.get('attempt')})"


def check_program(program: CompiledProgram,
                  sink: Optional[DiagnosticSink] = None) -> ProtoContext:
    """Run every registered transport-safety check over a program."""
    ctx = ProtoContext(program, sink)
    run_checks(ctx)
    return ctx


# ---------------------------------------------------------------------------
# The repro.proto/1 report
# ---------------------------------------------------------------------------


def build_report(ctx: ProtoContext) -> Dict[str, object]:
    kernels: List[Dict[str, object]] = []
    summaries = ctx.effect_summaries()
    results = ctx.model_results()
    for label in sorted(summaries):
        for kname in sorted(summaries[label]):
            eff = summaries[label][kname]
            result = results[(label, kname)]
            effects_json: List[Dict[str, object]] = []
            for sname in sorted(eff.symbols):
                sym = eff.symbols[sname]
                effects_json.append({
                    "symbol": sym.name,
                    "space": sym.space,
                    "kind": sym.kind,
                    "grade": sym.grade,
                    "guarded": sym.guarded,
                    "partial_guard": sym.partial_guard,
                    "sites": [
                        {
                            "line": site.line,
                            "op": site.op,
                            "kind": site.kind,
                            "fold": site.fold,
                            "grade": site.grade,
                            "guarded": site.guarded,
                            "detail": site.detail,
                        }
                        for site in sorted(
                            sym.sites,
                            key=lambda s: (s.line, s.op, s.detail),
                        )
                    ],
                })
            kernels.append({
                "kernel": kname,
                "switch": label,
                "guards": [
                    {"style": g.style, "symbol": g.symbol, "grade": g.grade}
                    for g in sorted(
                        eff.guards, key=lambda g: (g.symbol, g.style)
                    )
                ],
                "effects": effects_json,
                "verdict": result.verdict,
                "states_explored": result.states_explored,
                "counterexample": (
                    result.counterexample.to_json()
                    if result.counterexample is not None
                    else None
                ),
            })
    sink = ctx.sink
    return {
        "schema": SCHEMA,
        "opt_level": ctx.program.opt_level,
        "kernels": kernels,
        "diagnostics": [diagnostic_dict(d) for d in sink.sorted()],
        "summary": {
            "errors": sink.count(Severity.ERROR),
            "warnings": sink.count(Severity.WARNING),
            "notes": sink.count(Severity.NOTE),
        },
        "safe": not sink.has_errors,
    }


def render_report_json(ctx: ProtoContext) -> str:
    return json.dumps(build_report(ctx), indent=2, sort_keys=True) + "\n"


def render_report_text(ctx: ProtoContext) -> str:
    from repro.diag.render import SourceMap, render_text

    lines: List[str] = []
    summaries = ctx.effect_summaries()
    results = ctx.model_results()
    for label in sorted(summaries):
        for kname in sorted(summaries[label]):
            eff = summaries[label][kname]
            result = results[(label, kname)]
            lines.append(f"== kernel {kname} @ {label}")
            for guard in sorted(eff.guards,
                                key=lambda g: (g.symbol, g.style)):
                lines.append(
                    f"  guard {guard.style} on {guard.symbol!r} "
                    f"({guard.grade})"
                )
            for sname in sorted(eff.symbols):
                sym = eff.symbols[sname]
                note = (
                    " guarded" if sym.guarded
                    else " PARTIALLY-guarded" if sym.partial_guard
                    else ""
                )
                lines.append(
                    f"  effect {sym.space} {sym.name!r}: {sym.kind} "
                    f"({sym.grade}){note}"
                )
            lines.append(
                f"  verdict: {result.verdict} "
                f"({result.states_explored} states explored)"
            )
            cx = result.counterexample
            if cx is not None:
                lines.append(
                    f"  minimal counterexample "
                    f"({len(cx.schedule)} steps, {cx.symbol!r} "
                    f"applied {cx.applied}x):"
                )
                for i, step in enumerate(cx.schedule, 1):
                    lines.append(f"    {i}. {_describe_step(step)}")
            lines.append("")
    diag_text = render_text(ctx.sink, SourceMap({}), summary=False)
    if diag_text.strip():
        lines.append(diag_text.rstrip("\n"))
        lines.append("")
    sink = ctx.sink
    if sink.has_errors:
        lines.append(
            f"transport-safety: UNSAFE "
            f"({sink.count(Severity.ERROR)} error(s), "
            f"{sink.count(Severity.WARNING)} warning(s))"
        )
    else:
        lines.append(
            f"transport-safety: SAFE "
            f"({sink.count(Severity.WARNING)} warning(s))"
        )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Counterexample replay: drive a real Cluster through the schedule
# ---------------------------------------------------------------------------


def replay_counterexample(
    program: CompiledProgram,
    switch: str,
    kernel: str,
    schedule: Sequence[Dict[str, object]],
    chunk_value: int = 1,
) -> Dict[str, List[int]]:
    """Replay a model-checker schedule against the simulator.

    Builds a 1:1 :class:`~repro.runtime.Cluster` from the program and
    maps the abstract actions onto the real transport: ``send`` /
    ``retransmit`` / ``duplicate`` put (re-)transmissions on the wire,
    ``deliver`` runs the simulator until the fabric drains (the kernel
    executes on the switch), ``restart`` swaps in a fresh
    :class:`~repro.pisa.switch_dev.PisaSwitch` (all registers zeroed).
    Returns the switch's register arrays after the schedule, keyed by
    symbol name -- the seeded double-count is directly observable.
    """
    from repro.ncp.window import Window
    from repro.pisa.switch_dev import PisaSwitch
    from repro.runtime import Cluster

    cluster = Cluster.from_program(program)
    host_labels = sorted(node.label for node in program.and_spec.hosts)
    if not host_labels:
        raise ReproError("program has no hosts to replay from")
    src = cluster.host(host_labels[0])
    dst = host_labels[1] if len(host_labels) > 1 else host_labels[0]
    config = program.window_configs.get(kernel)
    if config is None:
        raise ReproError(f"{kernel!r} is not a compiled outgoing kernel")
    chunks = [[chunk_value] * n for n in config.mask]
    window = Window(0, chunks, ext=dict(config.ext), last=True,
                    from_node=src.node_id)
    for step in schedule:
        action = step.get("action")
        if action == "send":
            src.out_window(kernel, 0, chunks, dst, last=True)
        elif action in ("retransmit", "duplicate"):
            src.retransmit_window(kernel, window, dst)
        elif action == "deliver":
            cluster.run()
        elif action == "drop":
            raise ReproError(
                "cannot replay 'drop' without loss injection; minimal "
                "counterexamples never need it"
            )
        elif action == "restart":
            label = str(step.get("switch"))
            node = cluster.switches.get(label)
            if node is None:
                raise ReproError(f"no switch {label!r} in the deployment")
            node.switch = PisaSwitch(
                program.switch_programs[label], label
            )
        else:
            raise ReproError(f"unknown schedule action {action!r}")
    cluster.run()
    node = cluster.switches.get(switch)
    if node is None:
        raise ReproError(f"no switch {switch!r} in the deployment")
    arrays = node.switch.registers.arrays
    return {
        name[len("reg_"):]: list(values)
        for name, values in sorted(arrays.items())
        if name.startswith("reg_")
    }
