"""The ``nclc lint`` pipeline: frontend recovery + analyses in one call.

Runs as much of the compiler front half as the program's health allows,
never stopping at the first problem:

1. parse (fail-fast: a syntax error ends the pipeline as one diagnostic);
2. semantic analysis in error-recovery mode (every sema error collected,
   poisoned constructs survive for later stages);
3. lenient lowering to NIR (functions that cannot lower are dropped);
4. conformance checking against a real or synthesized AND;
5. the :mod:`repro.analysis.rules` rule set.

The synthesized AND includes every label the program references -- not
just the pinned ones a compile would require -- so `lint` never invents
unknown-label errors for label probes like ``location.id == _locid(..)``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import repro.analysis as analysis
from repro.andspec.model import AndSpec, parse_and
from repro.diag import DiagnosticSink, diagnostic_from_error
from repro.errors import NclSyntaxError, NclTypeError
from repro.ncl import analyze, parse
from repro.ncl.sema import TranslationUnit
from repro.nir import ir
from repro.nir.lower import lower_unit
from repro.nclc.conformance import check_module
from repro.pisa.arch import ArchProfile, profile_by_name


class LintResult:
    """Outcome of linting one source file (or several into one sink)."""

    def __init__(
        self,
        sink: DiagnosticSink,
        unit: Optional[TranslationUnit] = None,
        module: Optional[ir.Module] = None,
    ):
        self.sink = sink
        self.unit = unit
        self.module = module

    @property
    def exit_code(self) -> int:
        return 1 if self.sink.has_errors else 0


def _referenced_labels(
    unit: TranslationUnit, module: Optional[ir.Module]
) -> List[str]:
    """Every AND label the program mentions, pinning or probing."""
    labels = set()
    for info in unit.kernels.values():
        if info.at_label:
            labels.add(info.at_label)
    for table in (unit.net_globals, unit.ctrl_vars, unit.maps, unit.blooms):
        for gvar in table.values():
            if gvar.at_label:
                labels.add(gvar.at_label)
    if module is not None:
        for fn in module.functions.values():
            for instr in fn.instructions():
                if isinstance(instr, ir.LocLabel):
                    labels.add(instr.label)
                elif isinstance(instr, ir.Fwd) and instr.label is not None:
                    labels.add(instr.label)
    return sorted(labels)


def _synthesize_and(labels: List[str]) -> AndSpec:
    """Chain AND ``h0 -- s... -- h1`` covering every referenced label
    (mirrors the compile driver's default, but over the superset)."""
    spec = AndSpec()
    spec.add_host("h0")
    for label in labels or ["s1"]:
        spec.add_switch(label)
    spec.add_host("h1")
    prev = "h0"
    for label in labels or ["s1"]:
        spec.add_link(prev, label)
        prev = label
    spec.add_link(prev, "h1")
    return spec


def lint_source(
    source: str,
    filename: str = "<ncl>",
    *,
    defines=None,
    and_text: Optional[str] = None,
    profile: Union[ArchProfile, str, None] = None,
    rules: Optional[Sequence[str]] = None,
    werror: bool = False,
    sink: Optional[DiagnosticSink] = None,
) -> LintResult:
    """Lint one NCL source; all findings land in *sink* (or a fresh one).

    *rules* takes ``-W``-style selection specs (``["race", "no-overflow"]``);
    unknown names raise ``ValueError``. *profile* is an
    :class:`ArchProfile` or its name; the PISA-resource rule checks
    against it (default ``bmv2``, whose budgets are effectively
    unlimited).
    """
    sink = sink if sink is not None else DiagnosticSink()
    selected = analysis.select_rules(rules)
    if isinstance(profile, str) or profile is None:
        profile = profile_by_name(profile)

    try:
        program = parse(source, filename, defines)
    except NclSyntaxError as exc:
        sink.add(diagnostic_from_error(exc))
        if werror:
            sink.promote_warnings()
        return LintResult(sink)

    unit = analyze(program, sink=sink)

    try:
        module: Optional[ir.Module] = lower_unit(unit, lenient=True)
    except NclTypeError as exc:
        # Lenient lowering swallows per-function failures; a module-level
        # failure with a clean sema pass is a real finding of its own.
        sink.add(diagnostic_from_error(exc))
        module = None

    and_spec = (
        parse_and(and_text)
        if and_text is not None
        else _synthesize_and(_referenced_labels(unit, module))
    )

    if module is not None:
        check_module(module, and_spec, sink=sink, unit=unit)

    ctx = analysis.AnalysisContext(unit, module, sink, profile, and_spec)
    analysis.run_rules(ctx, selected)

    if werror:
        sink.promote_warnings()
    return LintResult(sink, unit, module)
