"""Slot dataflow over pre-SSA NIR (def-use analyses for the linter).

Both analyses work on freshly lowered functions, *before* mem2reg: every
NCL local is still an :class:`repro.nir.ir.Alloca` slot, reads are
``Load`` and writes are ``Store``. The lowerer marks an uninitialized
declaration with ``Store(slot, Undef)``, which is exactly the gen-point
the may-uninitialized analysis needs.

* :func:`may_uninit_reads` -- forward may-analysis: which ``Load``s can
  observe a slot that was declared but never assigned on some path.
* :func:`dead_stores` -- backward liveness: which ``Store``s are
  overwritten (or fall off the function) before any ``Load`` sees them.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.nir import ir


def _block_order(fn: ir.Function) -> List[ir.Block]:
    return list(fn.blocks)


def may_uninit_reads(fn: ir.Function) -> List[Tuple[str, ir.Load]]:
    """``(slot_name, load)`` for every load that may read an
    uninitialized slot on at least one path from the entry."""
    blocks = _block_order(fn)
    preds = fn.predecessors()
    # in/out: set of slots that MAY hold their declaration-time Undef.
    in_sets: Dict[ir.Block, Set[ir.Alloca]] = {b: set() for b in blocks}
    out_sets: Dict[ir.Block, Set[ir.Alloca]] = {b: set() for b in blocks}

    def transfer(block: ir.Block, live_undef: Set[ir.Alloca]) -> Set[ir.Alloca]:
        state = set(live_undef)
        for instr in block.instrs:
            if isinstance(instr, ir.Store):
                if isinstance(instr.value, ir.Undef):
                    state.add(instr.slot)
                else:
                    state.discard(instr.slot)
        return state

    changed = True
    while changed:
        changed = False
        for block in blocks:
            in_set = set()
            for pred in preds[block]:
                in_set |= out_sets[pred]
            out_set = transfer(block, in_set)
            if in_set != in_sets[block] or out_set != out_sets[block]:
                in_sets[block], out_sets[block] = in_set, out_set
                changed = True

    findings: List[Tuple[str, ir.Load]] = []
    for block in blocks:
        state = set(in_sets[block])
        for instr in block.instrs:
            if isinstance(instr, ir.Load) and instr.slot in state:
                findings.append((instr.slot.name, instr))
            elif isinstance(instr, ir.Store):
                if isinstance(instr.value, ir.Undef):
                    state.add(instr.slot)
                else:
                    state.discard(instr.slot)
    return findings


def dead_stores(fn: ir.Function) -> List[Tuple[str, ir.Store]]:
    """``(slot_name, store)`` for every store whose value no load can
    observe (overwritten first, or the slot is never read at all).

    Declaration markers (``Store(slot, Undef)``) are not reported -- the
    uninitialized-read analysis owns those.
    """
    blocks = _block_order(fn)
    succs = {b: b.successors() for b in blocks}
    # live-in/live-out: slots whose current value may still be loaded.
    live_in: Dict[ir.Block, Set[ir.Alloca]] = {b: set() for b in blocks}
    live_out: Dict[ir.Block, Set[ir.Alloca]] = {b: set() for b in blocks}

    def transfer(block: ir.Block, live: Set[ir.Alloca]) -> Set[ir.Alloca]:
        state = set(live)
        for instr in reversed(block.instrs):
            if isinstance(instr, ir.Store):
                state.discard(instr.slot)
            elif isinstance(instr, ir.Load):
                state.add(instr.slot)
        return state

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out_set = set()
            for succ in succs[block]:
                out_set |= live_in[succ]
            in_set = transfer(block, out_set)
            if out_set != live_out[block] or in_set != live_in[block]:
                live_out[block], live_in[block] = out_set, in_set
                changed = True

    findings: List[Tuple[str, ir.Store]] = []
    for block in blocks:
        state = set(live_out[block])
        for instr in reversed(block.instrs):
            if isinstance(instr, ir.Store):
                if instr.slot not in state and not isinstance(instr.value, ir.Undef):
                    findings.append((instr.slot.name, instr))
                state.discard(instr.slot)
            elif isinstance(instr, ir.Load):
                state.add(instr.slot)
    findings.sort(key=lambda f: f[1].id)
    return findings
