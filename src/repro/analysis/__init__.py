"""Rule-based static analysis over NCL ASTs and NIR (`nclc lint`).

The paper's pitch is that nclc moves in-network programming from
"trial-and-error against a P4 backend" to a feedback loop with real
compiler diagnostics. This package is the analysis half of that loop: a
registry of :class:`Rule` objects, each inspecting the analyzed
translation unit (AST level) and/or the lowered NIR module, and
reporting findings into a :class:`repro.diag.DiagnosticSink`.

Layering:

* :mod:`repro.analysis.dataflow` -- reusable slot dataflow (may-uninit,
  dead stores) over pre-SSA NIR;
* :mod:`repro.analysis.rules` -- the shipped rule set (shared-state race
  detector, def-use lints, PISA-resource explanations, ...);
* :mod:`repro.analysis.linter` -- the ``lint_source`` pipeline gluing
  frontend error recovery, lenient lowering, conformance checking and
  the rules together (what ``python -m repro.nclc lint`` runs).

Rules are selected by name (``-W race``/``-W no-dead-store`` on the
CLI); every finding carries the rule name and a stable ``NCLxxxx`` code.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.diag import DiagnosticSink
from repro.ncl.sema import TranslationUnit
from repro.nir import ir
from repro.pisa.arch import ArchProfile, BMV2


class AnalysisContext:
    """Everything a rule may look at.

    ``module`` is ``None`` when lowering produced nothing (e.g. the
    program had no kernels, or recovery poisoned all of them); rules
    that need NIR must tolerate that by declaring ``requires_nir``.
    """

    def __init__(
        self,
        unit: TranslationUnit,
        module: Optional[ir.Module],
        sink: DiagnosticSink,
        profile: Optional[ArchProfile] = None,
        and_spec: object = None,
    ) -> None:
        self.unit = unit
        self.module = module
        self.sink = sink
        self.profile = profile or BMV2
        self.and_spec = and_spec
        self._absint_fns: Optional[List[Tuple[object, object]]] = None

    def absint_functions(self) -> List[Tuple[object, object]]:
        """Lazily-computed ``[(ssa_function, FunctionFacts)]`` pairs.

        The lint module is pre-SSA (lenient lowering output), so each
        function is cloned, inlined and mem2reg-promoted before the
        abstract interpreter runs; source locations survive the cloning,
        which is what lets range-graded rules anchor findings back to
        the original program. Functions that cannot be brought into SSA
        (error recovery poisoned them) simply contribute no facts.
        """
        if self._absint_fns is not None:
            return self._absint_fns
        self._absint_fns = []
        if self.module is None:
            return self._absint_fns
        from repro.analysis.absint import analyze_function
        from repro.nir.passes import run_function_pipeline
        from repro.nir.passes.clone import clone_function

        label_ids = None
        if self.and_spec is not None:
            try:
                label_ids = self.and_spec.label_ids()
            except Exception:
                label_ids = None
        for name in self.module.functions:
            fn = self.module.functions[name]
            try:
                ssa = clone_function(fn)
                run_function_pipeline(ssa, ("inline", "mem2reg"), verify=False)
                facts = analyze_function(ssa, label_ids=label_ids)
            except Exception:
                continue
            self._absint_fns.append((ssa, facts))
        return self._absint_fns


class Rule:
    """One analysis. Subclasses set the metadata and implement ``run``."""

    #: CLI-facing name (``-W <name>`` / ``-W no-<name>``).
    name: str = "?"
    #: diagnostic codes this rule may emit (documentation + docs table).
    codes: Sequence[str] = ()
    #: one-line description for ``--list-rules`` and the docs.
    about: str = ""
    #: the rule inspects NIR and is skipped when no module lowered.
    requires_nir: bool = False

    def run(self, ctx: AnalysisContext) -> None:
        raise NotImplementedError


#: Registry in definition order -- the order rules run in.
_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (one shared instance) to the registry."""
    instance = cls()
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate analysis rule {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def all_rules() -> List[Rule]:
    return list(_REGISTRY.values())


def rule_names() -> List[str]:
    return list(_REGISTRY)


def select_rules(specs: Optional[Sequence[str]] = None) -> List[Rule]:
    """Resolve ``-W``-style selection specs to an ordered rule list.

    * no specs: every registered rule;
    * positive names (``race``): run exactly the listed rules;
    * ``no-<name>``: remove a rule from the selection (combines with
      either of the above).

    Unknown names raise ``ValueError`` (the CLI turns that into exit 2).
    """
    positives: List[str] = []
    negatives: List[str] = []
    for spec in specs or []:
        target = negatives if spec.startswith("no-") else positives
        target.append(spec[3:] if spec.startswith("no-") else spec)
    for name in positives + negatives:
        if name != "all" and name not in _REGISTRY:
            known = ", ".join(_REGISTRY)
            raise ValueError(f"unknown analysis rule {name!r} (known: {known})")
    if positives and "all" not in positives:
        enabled = [n for n in _REGISTRY if n in positives]
    else:
        enabled = list(_REGISTRY)
    return [_REGISTRY[n] for n in enabled if n not in negatives]


def run_rules(ctx: AnalysisContext, rules: Optional[Sequence[Rule]] = None) -> None:
    """Run *rules* (default: all) over the context, in registry order."""
    for rule in select_rules() if rules is None else rules:
        if rule.requires_nir and ctx.module is None:
            continue
        rule.run(ctx)


# Import for side effect: populates the registry. Kept at the bottom so
# rules.py can import the framework names above from this module.
from repro.analysis import rules as _rules  # noqa: E402,F401
from repro.analysis.linter import LintResult, lint_source  # noqa: E402

__all__ = [
    "AnalysisContext",
    "Rule",
    "register",
    "all_rules",
    "rule_names",
    "select_rules",
    "run_rules",
    "LintResult",
    "lint_source",
]
