"""The whole-fabric deployment checks (the ``check-deploy`` rule set).

Four analysis families, mirroring the ``repro.analysis`` lint registry
but operating on a :class:`~repro.analysis.deploy.model.Deployment`
(N compiled programs on one fabric) instead of a single program:

* **admission** (NCL0910--0914): sum each switch's co-resident resource
  estimates (stages, PHV, SRAM, tables, actions) against its chip
  profile, with per-tenant attribution in the notes;
* **isolation** (NCL0920--0922): disjoint NCP kernel-id spaces,
  ``_ctrl_`` namespace aliasing, and cross-tenant shared-state writes
  on one physical switch;
* **placement** (NCL0930--0932): every mapped label lands on a real
  switch, every overlay node is covered, and every overlay edge has a
  fabric path that interposes none of the tenant's other switches;
* **transport** (NCL0940--0941): window frames fit the path MTU
  unfragmented (switches do not execute kernels on fragments), and the
  headroom left for INT telemetry -- the latter graded
  ``proved``/``possible`` by interval reasoning over the hop count,
  like the absint-graded lint rules;
* **replay-safety** (NCL0856): every tenant kernel is run through the
  effect-summary analysis plus the NCP window model checker of
  :mod:`repro.analysis.proto`; a tenant whose kernel double-applies a
  shared-state update under retransmission is flagged with its minimal
  counterexample schedule, and every tenant's per-kernel verdict rides
  in the ``repro.deploy/1`` report (``replay_safety``).

Every check emits stable ``NCL09xx`` codes registered in
:mod:`repro.diag.codes`; :func:`run_checks` finishes with
:meth:`repro.diag.DiagnosticSink.dedupe`, because several checks see
the same site from multiple contexts (every switch, every tenant pair).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import networkx as nx

from repro.analysis.deploy.model import Deployment, TenantDeployment
from repro.analysis.proto import ModelResult, check_kernel_model
from repro.analysis.rules import _SPACE_WORD, _callees, _instr_accesses
from repro.andspec.fabric import FabricSpec
from repro.diag import DiagnosticSink, Span
from repro.errors import SourceLocation
from repro.nir.ir import GlobalRef, Module
from repro.ncp.fragment import FRAG_KERNEL_BIT
from repro.ncp.wire import ETH_FIELDS, IPV4_FIELDS, NCP_FIELDS, UDP_FIELDS
from repro.obs.int import HOP_BYTES, TAIL_BYTES, IntConfig

#: fixed eth+ipv4+udp+NCP framing every window pays before its payload
HEADER_BYTES: int = (
    sum(b for _, b in ETH_FIELDS)
    + sum(b for _, b in IPV4_FIELDS)
    + sum(b for _, b in UDP_FIELDS)
    + sum(b for _, b in NCP_FIELDS)
) // 8


class _EdgePath:
    """The fabric path chosen for one overlay edge of one tenant."""

    __slots__ = ("path", "bottleneck_mtu", "switch_hops", "narrow_link")

    def __init__(
        self,
        path: List[str],
        bottleneck_mtu: int,
        switch_hops: int,
        narrow_link: Tuple[str, str, int],
    ) -> None:
        self.path = path
        #: max-min link MTU over all admissible paths (the widest path)
        self.bottleneck_mtu = bottleneck_mtu
        #: switches traversed on the chosen (widest, then shortest) path
        self.switch_hops = switch_hops
        #: ``(a, b, mtu)`` of the path's narrowest link
        self.narrow_link = narrow_link


class DeployContext:
    """Everything a deployment check may look at, with shared caches."""

    def __init__(self, deployment: Deployment, sink: DiagnosticSink) -> None:
        self.deployment = deployment
        self.sink = sink
        self._graph: Optional[nx.Graph] = None
        self._host_assignments: Dict[
            str, Tuple[Dict[str, str], List[Tuple[str, str]]]
        ] = {}
        self._edge_paths: Dict[
            str, Dict[Tuple[str, str], Optional[_EdgePath]]
        ] = {}
        self._replay: Dict[str, Dict[Tuple[str, str], "ModelResult"]] = {}

    # -- fabric views --------------------------------------------------

    @property
    def fabric(self) -> FabricSpec:
        return self.deployment.fabric

    def graph(self) -> nx.Graph:
        """The fabric as a networkx graph; edges carry ``mtu``."""
        if self._graph is None:
            g = nx.Graph()
            for node in self.fabric.nodes.values():
                g.add_node(node.name, kind=node.kind)
            for link in self.fabric.links:
                g.add_edge(link.a, link.b, mtu=link.mtu)
            self._graph = g
        return self._graph

    # -- per-tenant views ----------------------------------------------

    def host_assignment(
        self, tenant: TenantDeployment
    ) -> Tuple[Dict[str, str], List[Tuple[str, str]]]:
        if tenant.name not in self._host_assignments:
            self._host_assignments[tenant.name] = tenant.resolve_hosts(
                self.fabric
            )
        return self._host_assignments[tenant.name]

    def valid_switch_placement(
        self, tenant: TenantDeployment
    ) -> Dict[str, str]:
        """The tenant's ``map`` entries that name a real overlay label
        and a real fabric switch (bad entries are NCL0932 findings and
        excluded here so downstream checks do not cascade)."""
        overlay = {n.label for n in tenant.program.and_spec.switches}
        out: Dict[str, str] = {}
        for label, target in tenant.placement.items():
            if label not in overlay:
                continue
            node = self.fabric.nodes.get(target)
            if node is None or not node.is_switch:
                continue
            out[label] = target
        return out

    def residents(
        self, switch: str
    ) -> List[Tuple[TenantDeployment, str]]:
        """``(tenant, overlay_label)`` pairs placed on *switch*, in
        tenant declaration order."""
        out: List[Tuple[TenantDeployment, str]] = []
        for tenant in self.deployment.tenants:
            for label, target in sorted(
                self.valid_switch_placement(tenant).items()
            ):
                if target == switch:
                    out.append((tenant, label))
        return out

    def node_images(self, tenant: TenantDeployment) -> Dict[str, str]:
        """Overlay label -> fabric node, for hosts and switches alike."""
        images = dict(self.valid_switch_placement(tenant))
        assignment, _problems = self.host_assignment(tenant)
        images.update(assignment)
        return images

    def edge_paths(
        self, tenant: TenantDeployment
    ) -> Dict[Tuple[str, str], Optional[_EdgePath]]:
        """Chosen fabric path per overlay edge (None = unreachable)."""
        if tenant.name not in self._edge_paths:
            self._edge_paths[tenant.name] = self._route_tenant(tenant)
        return self._edge_paths[tenant.name]

    def replay_results(
        self, tenant: TenantDeployment
    ) -> Dict[Tuple[str, str], ModelResult]:
        """Per-kernel transport-safety model-checker results for one
        tenant: ``(overlay_label, kernel) -> ModelResult`` (cached; the
        same machinery ``nclc check-proto`` runs on a single program)."""
        if tenant.name not in self._replay:
            results: Dict[Tuple[str, str], ModelResult] = {}
            for label, kernels in sorted(
                tenant.program.effect_summaries().items()
            ):
                for name in sorted(kernels):
                    results[(label, name)] = check_kernel_model(
                        kernels[name], label
                    )
            self._replay[tenant.name] = results
        return self._replay[tenant.name]

    def _route_tenant(
        self, tenant: TenantDeployment
    ) -> Dict[Tuple[str, str], Optional[_EdgePath]]:
        graph = self.graph()
        images = self.node_images(tenant)
        mapped = set(self.valid_switch_placement(tenant).values())
        out: Dict[Tuple[str, str], Optional[_EdgePath]] = {}
        for a, b in tenant.program.and_spec.edges:
            src, dst = images.get(a), images.get(b)
            if src is None or dst is None or src == dst:
                continue  # placement check reports the missing image
            # Admissible interior nodes: switches that are not *other*
            # mapped switches of this tenant (kernel execution order,
            # as in map_overlay), and no hosts (hosts do not forward).
            allowed = {
                n
                for n, d in graph.nodes(data=True)
                if d["kind"] == "switch" and n not in (mapped - {src, dst})
            } | {src, dst}
            sub = graph.subgraph(allowed)
            if src not in sub or dst not in sub or not nx.has_path(
                sub, src, dst
            ):
                out[(a, b)] = None
                continue
            out[(a, b)] = self._widest_path(sub, src, dst)
        return out

    @staticmethod
    def _widest_path(sub: nx.Graph, src: str, dst: str) -> _EdgePath:
        """Widest-bottleneck path (max-min MTU), shortest among those."""
        thresholds = sorted(
            {d["mtu"] for _, _, d in sub.edges(data=True)}, reverse=True
        )
        for mtu in thresholds:
            wide = nx.Graph(
                (a, b, d)
                for a, b, d in sub.edges(data=True)
                if d["mtu"] >= mtu
            )
            if src in wide and dst in wide and nx.has_path(wide, src, dst):
                path = nx.shortest_path(wide, src, dst)
                hops = sum(
                    1 for n in path if sub.nodes[n]["kind"] == "switch"
                )
                narrow = min(
                    (
                        (a, b, sub.edges[a, b]["mtu"])
                        for a, b in zip(path, path[1:])
                    ),
                    key=lambda e: e[2],
                )
                a, b, link_mtu = narrow
                if a > b:
                    a, b = b, a
                return _EdgePath(path, mtu, hops, (a, b, link_mtu))
        raise AssertionError("caller guaranteed a path exists")


class DeployCheck:
    """One whole-fabric analysis. Subclasses set metadata + ``run``."""

    #: registry/docs-facing name (also ``--check``-selectable).
    name: str = "?"
    #: stable diagnostic codes this check may emit.
    codes: Sequence[str] = ()
    #: one-line description for ``--list-rules`` and the docs.
    about: str = ""

    def run(self, ctx: DeployContext) -> None:
        raise NotImplementedError


#: Registry in definition order -- the order checks run in.
_REGISTRY: Dict[str, DeployCheck] = {}


def register(cls: Type[DeployCheck]) -> Type[DeployCheck]:
    """Class decorator adding a check (one shared instance)."""
    instance = cls()
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate deploy check {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def all_checks() -> List[DeployCheck]:
    return list(_REGISTRY.values())


def run_checks(
    ctx: DeployContext, checks: Optional[Sequence[DeployCheck]] = None
) -> None:
    """Run *checks* (default: all), then dedupe the sink: several checks
    legitimately reach one finding from multiple contexts."""
    for check in all_checks() if checks is None else checks:
        check.run(ctx)
    ctx.sink.dedupe()


def _span(
    loc: Optional[SourceLocation], label: Optional[str] = None
) -> Optional[Span]:
    return Span(loc, 1, label) if loc is not None else None


# ---------------------------------------------------------------------------
# admission: NCL0910-0914
# ---------------------------------------------------------------------------


@register
class ResourceAdmissionCheck(DeployCheck):
    """Per-switch resource admission (the multi-tenant budget sum).

    Each compiled program carries the backend's per-label
    :class:`repro.p4.backend.AcceptanceReport`; an individual program
    fits its switch by construction (the backend rejected it
    otherwise), but co-residents *sum*. This check folds every resident
    estimate per fabric switch and compares against the switch's own
    chip profile, attributing the total tenant-by-tenant.
    """

    name = "admission"
    codes = ("NCL0910", "NCL0911", "NCL0912", "NCL0913", "NCL0914")
    about = "summed co-resident resource demand within each switch's chip profile"

    #: (code, AcceptanceReport attr, ArchProfile attr, human unit)
    RESOURCES: Sequence[Tuple[str, str, str, str]] = (
        ("NCL0910", "stages", "max_stages", "pipeline stages"),
        ("NCL0911", "phv_bits", "phv_bits", "PHV bits"),
        ("NCL0912", "sram_bytes", "sram_bytes", "bytes of register SRAM"),
        ("NCL0913", "tables", "max_tables", "match-action tables"),
        ("NCL0914", "actions", "max_actions", "actions"),
    )

    def run(self, ctx: DeployContext) -> None:
        for node in sorted(ctx.fabric.switches, key=lambda n: n.name):
            residents = ctx.residents(node.name)
            reports = [
                (tenant, label, tenant.program.reports[label])
                for tenant, label in residents
                if label in tenant.program.reports
            ]
            if not reports:
                continue
            profile = ctx.fabric.switch_profile(node.name)
            for code, rep_attr, cap_attr, unit in self.RESOURCES:
                used = sum(getattr(rep, rep_attr) for _, _, rep in reports)
                cap = getattr(profile, cap_attr)
                if used <= cap:
                    continue
                notes = [
                    f"tenant '{t.name}' ('{label}' of {t.program_path}) "
                    f"needs {getattr(rep, rep_attr)} {unit}"
                    for t, label, rep in sorted(
                        reports,
                        key=lambda r: (-getattr(r[2], rep_attr), r[0].name),
                    )
                ]
                secondary = [
                    s
                    for t, label, _rep in reports
                    if (
                        s := _span(
                            t.anchor(label),
                            f"tenant '{t.name}' places '{label}' here",
                        )
                    )
                    is not None
                ]
                ctx.sink.error(
                    code,
                    f"switch '{node.name}' ({profile.name}) over capacity: "
                    f"{len(reports)} co-resident programs need {used} {unit} "
                    f"but the chip has {cap}",
                    loc=node.loc,
                    secondary=secondary,
                    notes=notes,
                    fixit=(
                        "move a tenant to another switch or deploy "
                        f"'{node.name}' with a larger chip profile"
                    ),
                    rule=self.name,
                    status="proved",
                )


# ---------------------------------------------------------------------------
# isolation: NCL0920-0922
# ---------------------------------------------------------------------------


@register
class KernelIdIsolationCheck(DeployCheck):
    """NCP kernel-id space disjointness.

    Every program numbers its kernels from 1, so co-residents collide
    unless the deployment assigns disjoint ``idbase=`` offsets; the
    effective id (compiled id + idbase) must also stay below the
    fragment escape bit, which the wire format reserves.
    """

    name = "kernel-ids"
    codes = ("NCL0920",)
    about = "disjoint NCP kernel-id spaces across co-resident tenants"

    def run(self, ctx: DeployContext) -> None:
        owners: Dict[int, Tuple[TenantDeployment, str]] = {}
        for tenant in ctx.deployment.tenants:
            for kernel, eff in sorted(tenant.effective_kernel_ids().items()):
                if eff >= FRAG_KERNEL_BIT:
                    ctx.sink.error(
                        "NCL0920",
                        f"tenant '{tenant.name}' kernel '{kernel}' gets "
                        f"NCP id {eff:#x}, which escapes into the fragment "
                        f"id space (>= {FRAG_KERNEL_BIT:#x})",
                        loc=tenant.loc,
                        fixit=f"lower idbase for tenant '{tenant.name}'",
                        rule=self.name,
                        status="proved",
                    )
                    continue
                prev = owners.get(eff)
                if prev is None:
                    owners[eff] = (tenant, kernel)
                    continue
                prev_tenant, prev_kernel = prev
                if prev_tenant is tenant:
                    continue  # intra-program collisions are impossible
                ctx.sink.error(
                    "NCL0920",
                    f"NCP kernel-id collision: id {eff} is "
                    f"'{prev_kernel}' of tenant '{prev_tenant.name}' and "
                    f"'{kernel}' of tenant '{tenant.name}'",
                    loc=tenant.loc,
                    secondary=[
                        s
                        for s in (
                            _span(
                                prev_tenant.loc,
                                f"tenant '{prev_tenant.name}' declared here",
                            ),
                        )
                        if s is not None
                    ],
                    notes=[
                        f"tenant '{prev_tenant.name}' uses idbase="
                        f"{prev_tenant.idbase}, tenant '{tenant.name}' "
                        f"uses idbase={tenant.idbase}",
                        "switches demultiplex windows by NCP kernel id, "
                        "so colliding tenants would execute each other's "
                        "kernels",
                    ],
                    fixit=(
                        f"give tenant '{tenant.name}' a disjoint idbase= "
                        "(each tenant needs its own block of ids)"
                    ),
                    rule=self.name,
                    status="proved",
                )


class _GlobalUse:
    """How one tenant uses one global on one physical switch."""

    __slots__ = ("tenant", "ref", "writers")

    def __init__(
        self,
        tenant: TenantDeployment,
        ref: GlobalRef,
        writers: List[Tuple[str, Optional[SourceLocation]]],
    ) -> None:
        self.tenant = tenant
        self.ref = ref
        #: ``[(kernel, loc)]`` write sites, callgraph-attributed
        self.writers = writers


def _module_writes(
    module: Module,
) -> Dict[str, List[Tuple[str, Optional[SourceLocation]]]]:
    """Global name -> write sites, attributed through the callgraph so a
    helper's store is charged to every kernel that reaches it (same
    scheme as the lint race detector)."""
    direct: Dict[str, List[Tuple[str, bool, Optional[SourceLocation]]]] = {}
    for fn in module.functions.values():
        sites: List[Tuple[str, bool, Optional[SourceLocation]]] = []
        for instr in fn.instructions():
            for ref, is_write in _instr_accesses(instr):
                sites.append((ref.name, is_write, instr.loc))
        direct[fn.name] = sites
    callgraph = {
        fn.name: _callees(fn) for fn in module.functions.values()
    }
    out: Dict[str, List[Tuple[str, Optional[SourceLocation]]]] = {}
    for fn in module.kernels():
        reachable = [fn.name]
        frontier = list(callgraph.get(fn.name, ()))
        while frontier:
            callee = frontier.pop()
            if callee in reachable:
                continue
            reachable.append(callee)
            frontier.extend(callgraph.get(callee, ()))
        for owner in reachable:
            for name, is_write, loc in direct.get(owner, ()):
                if is_write:
                    out.setdefault(name, []).append((fn.name, loc))
    return out


@register
class NamespaceIsolationCheck(DeployCheck):
    """Cross-tenant state aliasing on one physical switch.

    Switch state is addressed by symbol name (the control plane's
    ``ncl::ctrl_wr`` and the generated P4 registers both key on it), so
    two tenants declaring one name on one physical switch alias:

    * ``_ctrl_`` variables alias unconditionally (NCL0921) -- a
      control-plane write by either tenant lands in both programs;
    * other switch state (arrays, Maps, BloomFilters) conflicts when at
      least one tenant's kernels write it (NCL0922), with the write
      sites attributed interprocedurally across the tenant boundary.
    """

    name = "namespaces"
    codes = ("NCL0921", "NCL0922")
    about = "no _ctrl_/state name aliasing between tenants sharing a switch"

    def run(self, ctx: DeployContext) -> None:
        # physical switch -> global name -> [per-tenant use]
        by_switch: Dict[str, Dict[str, List[_GlobalUse]]] = {}
        for tenant in ctx.deployment.tenants:
            placement = ctx.valid_switch_placement(tenant)
            if not placement:
                continue
            module = tenant.program.ref_module
            if module is None:
                continue
            writes = _module_writes(module)
            for name, ref in sorted(module.globals.items()):
                if ref.space not in _SPACE_WORD:
                    continue
                # A pinned symbol lives on its label's switch; an
                # unpinned one is versioned onto every switch the
                # tenant occupies.
                labels = (
                    [ref.at_label]
                    if ref.at_label is not None
                    else sorted(placement)
                )
                use = _GlobalUse(tenant, ref, writes.get(name, []))
                for label in labels:
                    target = placement.get(label)
                    if target is None:
                        continue
                    by_switch.setdefault(target, {}).setdefault(
                        name, []
                    ).append(use)

        for switch in sorted(by_switch):
            for name, uses in sorted(by_switch[switch].items()):
                tenants = []
                for use in uses:
                    if use.tenant not in tenants:
                        tenants.append(use.tenant)
                if len(tenants) < 2:
                    continue
                if all(u.ref.space == "ctrl" for u in uses):
                    self._report_ctrl(ctx, switch, name, tenants)
                else:
                    self._report_state(ctx, switch, name, uses, tenants)

    def _report_ctrl(
        self,
        ctx: DeployContext,
        switch: str,
        name: str,
        tenants: List[TenantDeployment],
    ) -> None:
        who = " and ".join(f"'{t.name}'" for t in tenants)
        ctx.sink.error(
            "NCL0921",
            f"_ctrl_ variable '{name}' aliases on switch '{switch}': "
            f"declared by tenants {who}, and control-plane writes "
            "address switch state by name",
            loc=tenants[0].anchor(),
            secondary=[
                s
                for t in tenants[1:]
                if (s := _span(t.anchor(), f"tenant '{t.name}' declared here"))
                is not None
            ],
            fixit=(
                f"rename '{name}' in one program, or place the tenants "
                "on different switches"
            ),
            rule=self.name,
            status="proved",
        )

    def _report_state(
        self,
        ctx: DeployContext,
        switch: str,
        name: str,
        uses: List[_GlobalUse],
        tenants: List[TenantDeployment],
    ) -> None:
        writers = [u for u in uses if u.writers]
        if not writers:
            return  # co-located read-only state with one name: harmless
        space = _SPACE_WORD[uses[0].ref.space]
        who = " and ".join(f"'{t.name}'" for t in tenants)
        notes: List[str] = []
        secondary: List[Span] = []
        for use in writers:
            kernel, loc = use.writers[0]
            notes.append(
                f"tenant '{use.tenant.name}' kernel '{kernel}' writes "
                f"'{name}'"
            )
            span = _span(
                loc, f"tenant '{use.tenant.name}' writes '{name}' here"
            )
            if span is not None:
                secondary.append(span)
        ctx.sink.error(
            "NCL0922",
            f"cross-tenant shared-state conflict on switch '{switch}': "
            f"{space} '{name}' is used by tenants {who} with at least "
            "one writer, and no serialization crosses tenant boundaries",
            loc=tenants[0].anchor(),
            secondary=secondary,
            notes=notes,
            fixit=(
                f"rename '{name}' in one program, or place the tenants "
                "on different switches"
            ),
            rule=self.name,
            status="proved",
        )


# ---------------------------------------------------------------------------
# placement: NCL0930-0932
# ---------------------------------------------------------------------------


@register
class PlacementCheck(DeployCheck):
    """Placement validity, coverage, and reachability.

    NCL0932 rejects map/pin entries that name unknown labels or the
    wrong node kind (and two overlay switches on one physical switch --
    one pipeline cannot run two programs' kernels for one tenant);
    NCL0931 rejects overlay nodes the mapping leaves unplaced; NCL0930
    rejects overlay edges with no admissible fabric path -- the path
    must exist and interpose none of the tenant's other mapped switches
    (which would reorder kernel execution), matching ``map_overlay``.
    """

    name = "placement"
    codes = ("NCL0930", "NCL0931", "NCL0932")
    about = "every kernel's switch lies on a real path between its hosts"

    def run(self, ctx: DeployContext) -> None:
        for tenant in ctx.deployment.tenants:
            self._check_targets(ctx, tenant)
            self._check_coverage(ctx, tenant)
            self._check_reachability(ctx, tenant)

    def _check_targets(
        self, ctx: DeployContext, tenant: TenantDeployment
    ) -> None:
        overlay = {n.label for n in tenant.program.and_spec.switches}
        taken: Dict[str, str] = {}
        for label, target in sorted(tenant.placement.items()):
            loc = tenant.map_locs.get(label, tenant.loc)
            if label not in overlay:
                ctx.sink.error(
                    "NCL0932",
                    f"tenant '{tenant.name}' maps unknown overlay label "
                    f"'{label}' (the program's AND declares: "
                    f"{', '.join(sorted(overlay)) or 'none'})",
                    loc=loc,
                    rule=self.name,
                )
                continue
            node = ctx.fabric.nodes.get(target)
            if node is None:
                ctx.sink.error(
                    "NCL0932",
                    f"tenant '{tenant.name}' maps '{label}' to unknown "
                    f"fabric node '{target}'",
                    loc=loc,
                    rule=self.name,
                )
                continue
            if not node.is_switch:
                ctx.sink.error(
                    "NCL0932",
                    f"tenant '{tenant.name}' maps '{label}' to "
                    f"'{target}', which is a host, not a switch",
                    loc=loc,
                    rule=self.name,
                )
                continue
            if target in taken:
                ctx.sink.error(
                    "NCL0932",
                    f"tenant '{tenant.name}' maps both '{taken[target]}' "
                    f"and '{label}' to switch '{target}'",
                    loc=loc,
                    notes=[
                        "one pipeline cannot preserve kernel order for "
                        "two overlay switches of the same program"
                    ],
                    rule=self.name,
                )
                continue
            taken[target] = label
        _assignment, problems = ctx.host_assignment(tenant)
        for label, reason in problems:
            code = (
                "NCL0931"
                if reason.startswith("no free fabric host")
                else "NCL0932"
            )
            ctx.sink.error(
                code,
                f"tenant '{tenant.name}' overlay host '{label}': {reason}",
                loc=tenant.pin_locs.get(label, tenant.loc),
                rule=self.name,
            )

    def _check_coverage(
        self, ctx: DeployContext, tenant: TenantDeployment
    ) -> None:
        for node in sorted(
            tenant.program.and_spec.switches, key=lambda n: n.label
        ):
            if node.label in tenant.placement:
                continue
            kernels = sorted(
                fn.name
                for fn in (tenant.program.ref_module.kernels() if tenant.program.ref_module else [])
                if fn.at_label == node.label
            )
            pinned = (
                f" (kernels pinned there: {', '.join(kernels)})"
                if kernels
                else ""
            )
            ctx.sink.error(
                "NCL0931",
                f"tenant '{tenant.name}' overlay switch '{node.label}' "
                f"has no map entry{pinned}",
                loc=tenant.loc,
                fixit=(
                    f"add 'map {tenant.name} {node.label}=<switch>' to "
                    "the deployment"
                ),
                rule=self.name,
            )

    def _check_reachability(
        self, ctx: DeployContext, tenant: TenantDeployment
    ) -> None:
        mapped = ctx.valid_switch_placement(tenant)
        for (a, b), edge_path in sorted(ctx.edge_paths(tenant).items()):
            if edge_path is not None:
                continue
            images = ctx.node_images(tenant)
            src, dst = images[a], images[b]
            graph = ctx.graph()
            if nx.has_path(graph, src, dst):
                reason = (
                    "every fabric path interposes another of the "
                    "tenant's mapped switches (or routes through a "
                    "host), which would break kernel execution order"
                )
            else:
                reason = "the fabric has no path between them at all"
            ctx.sink.error(
                "NCL0930",
                f"tenant '{tenant.name}' overlay edge {a} -- {b} is "
                f"unrealizable: '{a}' is placed on '{src}' and '{b}' "
                f"on '{dst}', but {reason}",
                loc=tenant.anchor(b if b in mapped else a),
                notes=[
                    f"windows sent on {a} -- {b} would never traverse "
                    "the kernel's switch"
                ],
                fixit="place the overlay on switches along a real path",
                rule=self.name,
                status="proved",
            )


# ---------------------------------------------------------------------------
# transport: NCL0940-0941
# ---------------------------------------------------------------------------


@register
class TransportCheck(DeployCheck):
    """Window frames vs path MTU and INT headroom.

    A window frame is ``eth+ipv4+udp+NCP`` framing plus the kernel's
    extension fields plus its window payload. If that exceeds the
    best bottleneck MTU on the tenant's paths, the runtime *can* ship
    it fragmented -- but switches do not execute kernels on fragments,
    so the deployment silently degrades to host-only execution: an
    admission error (NCL0940, proved, from the exact layouts).

    INT telemetry rides the same frames (tail + one record per switch
    hop). Headroom below the tail plus the *minimum* hop count on the
    chosen paths proves truncation (``proved``); headroom below the
    default 8-hop policy cap only admits it (``possible``) -- the same
    interval grading the absint lint rules use (NCL0941, warning).
    """

    name = "transport"
    codes = ("NCL0940", "NCL0941")
    about = "window frames fit the path MTU with INT telemetry headroom"

    def run(self, ctx: DeployContext) -> None:
        policy_hops = IntConfig().max_hops
        for tenant in ctx.deployment.tenants:
            paths = [
                p for p in ctx.edge_paths(tenant).values() if p is not None
            ]
            if not paths:
                continue
            tightest = min(paths, key=lambda p: p.bottleneck_mtu)
            mtu = tightest.bottleneck_mtu
            min_hops = min(p.switch_hops for p in paths)
            a, b, link_mtu = tightest.narrow_link
            for kernel, layout in sorted(tenant.program.layouts.items()):
                frame = HEADER_BYTES + layout.ext_bytes + layout.data_bytes
                loc = tenant.window_locs.get(kernel) or tenant.anchor()
                breakdown = (
                    f"{HEADER_BYTES} header bytes + {layout.ext_bytes} "
                    f"extension bytes + {layout.data_bytes} window bytes"
                )
                if frame > mtu:
                    ctx.sink.error(
                        "NCL0940",
                        f"tenant '{tenant.name}' kernel '{kernel}' puts "
                        f"{frame} bytes on the wire ({breakdown}) but the "
                        f"widest usable path bottlenecks at {mtu} bytes "
                        f"(link {a} -- {b}): every window fragments, and "
                        "switches do not execute kernels on fragments",
                        loc=loc,
                        secondary=[
                            s
                            for s in (
                                _span(
                                    ctx.fabric.link_between(a, b).loc
                                    if ctx.fabric.link_between(a, b)
                                    else None,
                                    f"narrowest link (mtu={link_mtu})",
                                ),
                            )
                            if s is not None
                        ],
                        fixit=(
                            "shrink the window mask, or raise the link "
                            "MTU past the frame size"
                        ),
                        rule=self.name,
                        status="proved",
                    )
                    continue
                headroom = mtu - frame
                need_min = TAIL_BYTES + min_hops * HOP_BYTES
                need_policy = TAIL_BYTES + policy_hops * HOP_BYTES
                if headroom >= need_policy:
                    continue
                proved = headroom < need_min
                hops = min_hops if proved else policy_hops
                ctx.sink.warning(
                    "NCL0941",
                    f"tenant '{tenant.name}' kernel '{kernel}' leaves "
                    f"{headroom} bytes of INT headroom ({mtu} MTU - "
                    f"{frame} frame) but a {hops}-hop telemetry stack "
                    f"needs {TAIL_BYTES + hops * HOP_BYTES}: records "
                    "would be truncated",
                    loc=loc,
                    notes=[
                        f"frame is {breakdown}",
                        f"INT costs {TAIL_BYTES} tail bytes plus "
                        f"{HOP_BYTES} per switch hop; the chosen paths "
                        f"traverse at least {min_hops} switch(es), the "
                        f"policy cap is {policy_hops}",
                    ],
                    fixit=(
                        "shrink the window, raise the MTU, or lower the "
                        "INT hop cap / byte budget"
                    ),
                    rule=self.name,
                    status="proved" if proved else "possible",
                )


# ---------------------------------------------------------------------------
# replay safety: NCL0856
# ---------------------------------------------------------------------------


@register
class ReplaySafetyCheck(DeployCheck):
    """Per-tenant transport safety under NCP retransmission.

    Every tenant kernel runs through the effect-summary analysis and
    the explicit-state window model checker (the ``check-proto``
    machinery). A kernel for which the checker finds a schedule that
    applies a non-idempotent shared-state update twice -- the classic
    retransmit double-count -- is flagged here with the minimal
    counterexample in the notes, because on a shared fabric a tenant's
    replay bug corrupts *its own* state on a switch other tenants
    depend on being well-behaved.

    Kernels the checker proves safe emit nothing; their per-kernel
    verdicts (``exactly-once`` / ``at-most-once``) still appear in the
    ``repro.deploy/1`` report under each tenant's ``replay_safety``.
    """

    name = "replay-safety"
    codes = ("NCL0856",)
    about = "tenant kernels survive NCP retransmission (check-proto)"

    def run(self, ctx: DeployContext) -> None:
        for tenant in ctx.deployment.tenants:
            placement = ctx.valid_switch_placement(tenant)
            for (label, kernel), result in sorted(
                ctx.replay_results(tenant).items()
            ):
                cx = result.counterexample
                if cx is None:
                    continue
                steps = ", ".join(
                    _describe_replay_step(s) for s in cx.schedule
                )
                target = placement.get(label)
                where = (
                    f"switch '{target}'" if target is not None
                    else f"label '{label}'"
                )
                ctx.sink.warning(
                    "NCL0856",
                    f"tenant '{tenant.name}' kernel '{kernel}' is not "
                    f"replay-safe on {where}: a window interleaving "
                    f"applies the update of '{cx.symbol}' "
                    f"{cx.applied}x",
                    loc=tenant.window_locs.get(kernel) or tenant.anchor(),
                    notes=[
                        f"minimal counterexample ({len(cx.schedule)} "
                        f"steps): {steps}",
                        "verify the program alone with: python -m "
                        "repro.nclc check-proto <program.ncl>",
                    ],
                    fixit=(
                        "guard the update on a per-window dedup mark, "
                        "e.g. `if (seen[window.seq & 63] == 0) { "
                        "seen[window.seq & 63] = 1; ... }`"
                    ),
                    rule=self.name,
                    status="proved",
                )


def _describe_replay_step(step: Dict[str, object]) -> str:
    action = step.get("action")
    if action == "restart":
        return f"restart({step.get('switch')})"
    return f"{action}(a{step.get('attempt')})"
