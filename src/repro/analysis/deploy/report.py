"""The ``repro.deploy/1`` deployment report.

``check-deploy`` emits one report per run: the fabric, every tenant's
placement, the per-switch admission ledger (who uses how much of which
resource, against which chip profile), and the structured diagnostics.
The JSON form is byte-deterministic -- sorted keys, sorted collections,
diagnostics in source order -- so golden tests and CI gates can diff it
verbatim, exactly like the ``repro.diag/1`` and ``repro.nclc/1``
artifacts it builds on.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.deploy.checks import DeployContext
from repro.analysis.deploy.model import Deployment
from repro.diag import DiagnosticSink, Severity
from repro.diag.export import diagnostic_dict
from repro.diag.render import SourceMap, render_diagnostic

SCHEMA = "repro.deploy/1"

#: the admission ledger's resource columns (AcceptanceReport attrs)
_RESOURCES = ("stages", "phv_bits", "sram_bytes", "tables", "actions")

#: ArchProfile capacity attr per resource column
_CAPACITY = {
    "stages": "max_stages",
    "phv_bits": "phv_bits",
    "sram_bytes": "sram_bytes",
    "tables": "max_tables",
    "actions": "max_actions",
}


def admission_ledger(ctx: DeployContext) -> Dict[str, object]:
    """Per-switch resource accounting: per-tenant use, totals, capacity."""
    ledger: Dict[str, object] = {}
    for node in sorted(ctx.fabric.switches, key=lambda n: n.name):
        residents = ctx.residents(node.name)
        profile = ctx.fabric.switch_profile(node.name)
        tenants: Dict[str, Dict[str, int]] = {}
        used = {res: 0 for res in _RESOURCES}
        for tenant, label in residents:
            report = tenant.program.reports.get(label)
            if report is None:
                continue
            row = {res: int(getattr(report, res)) for res in _RESOURCES}
            tenants[f"{tenant.name}/{label}"] = row
            for res in _RESOURCES:
                used[res] += row[res]
        ledger[node.name] = {
            "profile": profile.name,
            "tenants": tenants,
            "used": used,
            "capacity": {
                res: int(getattr(profile, attr))
                for res, attr in _CAPACITY.items()
            },
        }
    return ledger


def build_report(ctx: DeployContext) -> Dict[str, object]:
    """The full ``repro.deploy/1`` dict (JSON-ready, deterministic)."""
    deployment = ctx.deployment
    sink = ctx.sink
    tenants: List[Dict[str, object]] = []
    for tenant in deployment.tenants:
        assignment, _problems = ctx.host_assignment(tenant)
        tenants.append(
            {
                "name": tenant.name,
                "program": tenant.program_path,
                "idbase": tenant.idbase,
                "kernels": {
                    name: eff
                    for name, eff in sorted(
                        tenant.effective_kernel_ids().items()
                    )
                },
                "placement": dict(sorted(tenant.placement.items())),
                "hosts": dict(sorted(assignment.items())),
                "replay_safety": {
                    f"{kernel}@{label}": result.verdict
                    for (label, kernel), result in sorted(
                        ctx.replay_results(tenant).items()
                    )
                },
            }
        )
    return {
        "schema": SCHEMA,
        "fabric": deployment.fabric.to_dict(),
        "tenants": tenants,
        "admission": admission_ledger(ctx),
        "diagnostics": [diagnostic_dict(d) for d in sink.sorted()],
        "summary": {
            "errors": sink.count(Severity.ERROR),
            "warnings": sink.count(Severity.WARNING),
            "notes": sink.count(Severity.NOTE),
        },
        "admissible": not sink.has_errors,
    }


def render_report_json(ctx: DeployContext) -> str:
    """Byte-deterministic JSON text of :func:`build_report`."""
    return json.dumps(build_report(ctx), indent=2, sort_keys=True) + "\n"


def _fmt_use(used: int, cap: int) -> str:
    pct = 100 * used // cap if cap else 0
    return f"{used}/{cap} ({pct}%)"


def render_report_text(ctx: DeployContext) -> str:
    """The human-readable report: utilization table, diagnostics with
    caret excerpts into the manifest and NCL sources, verdict line."""
    deployment: Deployment = ctx.deployment
    sink: DiagnosticSink = ctx.sink
    out: List[str] = []
    out.append(
        f"deployment {deployment.filename}: "
        f"{len(deployment.tenants)} tenant(s) on "
        f"{len(deployment.fabric.switches)} switch(es), "
        f"{len(deployment.fabric.hosts)} host(s)"
    )
    out.append("")
    ledger = admission_ledger(ctx)
    for switch, entry in ledger.items():
        tenants = entry["tenants"]
        used = entry["used"]
        cap = entry["capacity"]
        out.append(
            f"  switch {switch} ({entry['profile']}): "
            f"{len(tenants)} resident program(s)"
        )
        out.append(
            "    stages "
            + _fmt_use(used["stages"], cap["stages"])
            + ", phv "
            + _fmt_use(used["phv_bits"], cap["phv_bits"])
            + ", sram "
            + _fmt_use(used["sram_bytes"], cap["sram_bytes"])
            + ", tables "
            + _fmt_use(used["tables"], cap["tables"])
            + ", actions "
            + _fmt_use(used["actions"], cap["actions"])
        )
        for who, row in tenants.items():
            out.append(
                f"      {who}: {row['stages']} stages, "
                f"{row['phv_bits']} phv bits, {row['sram_bytes']} sram "
                f"bytes, {row['tables']} tables, {row['actions']} actions"
            )
    out.append("")
    for tenant in deployment.tenants:
        verdicts = ", ".join(
            f"{kernel}@{label} {result.verdict}"
            for (label, kernel), result in sorted(
                ctx.replay_results(tenant).items()
            )
        )
        out.append(f"  replay safety {tenant.name}: {verdicts or 'n/a'}")
    diags = sink.sorted()
    if diags:
        out.append("")
        sources = SourceMap(deployment.sources)
        for diag in diags:
            out.append(render_diagnostic(diag, sources).rstrip("\n"))
            out.append("")
    errors = sink.count(Severity.ERROR)
    warnings = sink.count(Severity.WARNING)
    if errors:
        out.append(
            f"deployment REJECTED: {errors} error(s), {warnings} warning(s)"
        )
    else:
        out.append(f"deployment ADMISSIBLE: {warnings} warning(s)")
    return "\n".join(out) + "\n"
