"""The deployment model: N compiled programs placed onto one fabric.

A :class:`Deployment` is the unit the whole-fabric checker admits or
rejects: a :class:`repro.andspec.fabric.FabricSpec` (physical switches
with chip profiles, hosts, links with MTUs) plus one
:class:`TenantDeployment` per co-resident program -- the compiled
program, its NCP kernel-id base, and the mapping of its AND overlay
onto the fabric.

Deployments are built either programmatically (the multi-tenant runtime
of roadmap item 3 will do this at deploy time) or from a *deployment
manifest*, a text file extending the fabric format with tenant
declarations::

    # physical fabric
    switch sw0 profile=tofino-like
    host   trainer0
    link   trainer0 sw0 mtu=1500

    # tenants
    tenant training allreduce.ncl and=allreduce.and idbase=0
    define training DATA_LEN=64
    define training WIN_LEN=8
    window training allreduce=8 len=8
    map    training s1=sw0
    pin    training worker0=trainer0

``program=`` paths ending in ``.nclc.json`` are loaded as serialized
``repro.nclc/1`` artifacts; anything else is compiled as NCL source
(with the tenant's ``define``/``window``/``and=`` configuration).
Every declaration records its :class:`repro.errors.SourceLocation`, so
check findings carry carets into the manifest itself.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.andspec.fabric import (
    FabricSpec,
    fabric_lines,
    parse_kv_options,
)
from repro.errors import (
    AndError,
    DeployError,
    NclError,
    ReproError,
    SourceLocation,
)


class TenantDeployment:
    """One tenant: a compiled program plus its placement on the fabric."""

    def __init__(
        self,
        name: str,
        program: "CompiledProgram",
        *,
        program_path: str = "<program>",
        idbase: int = 0,
        placement: Optional[Dict[str, str]] = None,
        host_pins: Optional[Dict[str, str]] = None,
        loc: Optional[SourceLocation] = None,
    ) -> None:
        self.name = name
        self.program = program
        #: the program reference as written in the manifest (or a label)
        self.program_path = program_path
        #: NCP kernel-id namespace base: the runtime adds this to every
        #: compiled kernel id so co-resident programs occupy disjoint
        #: id spaces (checked by the isolation analysis)
        self.idbase = int(idbase)
        #: overlay switch label -> fabric switch name
        self.placement: Dict[str, str] = dict(placement or {})
        #: overlay host label -> fabric host name (optional pins; unpinned
        #: overlay hosts resolve by name match, then greedily)
        self.host_pins: Dict[str, str] = dict(host_pins or {})
        #: manifest declaration sites, for diagnostics
        self.loc = loc
        self.map_locs: Dict[str, SourceLocation] = {}
        self.pin_locs: Dict[str, SourceLocation] = {}
        self.window_locs: Dict[str, SourceLocation] = {}

    def effective_kernel_ids(self) -> Dict[str, int]:
        """Kernel name -> fabric-wide NCP id (compiled id + idbase)."""
        return {
            name: layout.kernel_id + self.idbase
            for name, layout in self.program.layouts.items()
        }

    def anchor(self, label: Optional[str] = None) -> Optional[SourceLocation]:
        """Best manifest location for a finding about this tenant."""
        if label is not None and label in self.map_locs:
            return self.map_locs[label]
        return self.loc

    def resolve_hosts(
        self, fabric: FabricSpec
    ) -> Tuple[Dict[str, str], List[Tuple[str, str]]]:
        """Place the overlay hosts onto fabric hosts.

        Pins win; an unpinned overlay host matches a fabric host of the
        same name; leftovers take free fabric hosts in declaration
        order. Returns ``(assignment, problems)`` where each problem is
        ``(overlay_host, reason)`` -- the placement check turns those
        into diagnostics rather than raising.
        """
        assignment: Dict[str, str] = {}
        problems: List[Tuple[str, str]] = []
        used: set = set()
        overlay_hosts = [n.label for n in self.program.and_spec.hosts]
        for label in overlay_hosts:
            target = self.host_pins.get(label)
            if target is None and label in fabric.nodes:
                if fabric.nodes[label].is_host:
                    target = label
            if target is None:
                continue  # greedy pass below
            if target not in fabric.nodes:
                problems.append(
                    (label, f"pinned to unknown fabric node '{target}'")
                )
                continue
            if not fabric.nodes[target].is_host:
                problems.append(
                    (label, f"pinned to '{target}', which is a switch")
                )
                continue
            if target in used:
                problems.append(
                    (label, f"fabric host '{target}' assigned twice")
                )
                continue
            assignment[label] = target
            used.add(target)
        free = [h.name for h in fabric.hosts if h.name not in used]
        for label in overlay_hosts:
            if label in assignment or any(p[0] == label for p in problems):
                continue
            if not free:
                problems.append(
                    (label, "no free fabric host left to place it on")
                )
                continue
            assignment[label] = free.pop(0)
            used.add(assignment[label])
        return assignment, problems

    def __repr__(self) -> str:
        return (
            f"TenantDeployment({self.name}: {self.program_path}, "
            f"idbase={self.idbase}, map={self.placement})"
        )


class Deployment:
    """The checker's input: a fabric plus its co-resident tenants."""

    def __init__(
        self,
        fabric: FabricSpec,
        tenants: List[TenantDeployment],
        filename: str = "<deployment>",
        sources: Optional[Dict[str, str]] = None,
    ) -> None:
        self.fabric = fabric
        self.tenants = list(tenants)
        self.filename = filename
        #: every text this deployment references (manifest, NCL sources),
        #: for caret excerpts in the rendered report
        self.sources: Dict[str, str] = dict(sources or {})

    def tenant(self, name: str) -> TenantDeployment:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise DeployError(f"unknown tenant {name!r}")

    def __repr__(self) -> str:
        return (
            f"Deployment({len(self.tenants)} tenants on "
            f"{len(self.fabric.switches)} switches)"
        )


class _TenantDecl:
    """Parse-time accumulator for one tenant's manifest lines."""

    def __init__(self, name: str, program: str, options: Dict[str, str],
                 loc: SourceLocation) -> None:
        self.name = name
        self.program = program
        self.options = options
        self.loc = loc
        self.defines: Dict[str, int] = {}
        self.windows: Dict[str, Tuple[Tuple[int, ...], Dict[str, int]]] = {}
        self.window_locs: Dict[str, SourceLocation] = {}
        self.placement: Dict[str, str] = {}
        self.map_locs: Dict[str, SourceLocation] = {}
        self.host_pins: Dict[str, str] = {}
        self.pin_locs: Dict[str, SourceLocation] = {}
        self.and_text: Optional[str] = None


def _parse_int(value: str, where: str, what: str) -> int:
    try:
        return int(value, 0)
    except ValueError:
        raise DeployError(f"{where}: bad {what} {value!r}") from None


def parse_deployment(
    text: str,
    filename: str = "<deployment>",
    *,
    base_dir: Optional[str] = None,
    opt_level: int = 2,
) -> Deployment:
    """Parse a deployment manifest and compile/load its tenant programs.

    Relative ``program=``/``and=`` paths resolve against *base_dir*
    (default: the manifest's own directory). Identical program
    references (path + defines + windows + AND + profile) are compiled
    once and shared. Raises :class:`DeployError` on malformed input and
    lets compile errors (:class:`repro.errors.NclError` subclasses)
    propagate with the tenant named.
    """
    root = Path(base_dir) if base_dir is not None else Path(filename).parent

    fabric = FabricSpec()
    pending_links: List[Tuple[SourceLocation, List[str]]] = []
    decls: Dict[str, _TenantDecl] = {}
    order: List[str] = []

    def decl_for(name: str, where: str) -> _TenantDecl:
        if name not in decls:
            raise DeployError(
                f"{where}: unknown tenant {name!r} "
                "(declare it with a 'tenant' line first)"
            )
        return decls[name]

    for loc, parts in fabric_lines(text, filename):
        kind = parts[0].lower()
        where = f"{filename}:{loc.line}"
        try:
            if kind in ("host", "switch"):
                if len(parts) < 2:
                    raise DeployError(
                        f"{where}: expected '{kind} <name> [options]'"
                    )
                options = parse_kv_options(
                    parts[2:], where, ("profile",) if kind == "switch" else ()
                )
                fabric.add_node(parts[1], kind, options.get("profile"), loc)
            elif kind == "link":
                if len(parts) < 3:
                    raise DeployError(
                        f"{where}: expected 'link <a> <b> [mtu=N]'"
                    )
                pending_links.append((loc, parts))
            elif kind == "tenant":
                if len(parts) < 3:
                    raise DeployError(
                        f"{where}: expected 'tenant <name> <program> [options]'"
                    )
                name = parts[1]
                if name in decls:
                    raise DeployError(f"{where}: duplicate tenant {name!r}")
                options = parse_kv_options(
                    parts[3:], where, ("and", "idbase", "profile")
                )
                decls[name] = _TenantDecl(name, parts[2], options, loc)
                order.append(name)
            elif kind == "define":
                if len(parts) != 3 or "=" not in parts[2]:
                    raise DeployError(
                        f"{where}: expected 'define <tenant> NAME=VALUE'"
                    )
                decl = decl_for(parts[1], where)
                dname, _, dval = parts[2].partition("=")
                decl.defines[dname] = _parse_int(dval, where, "define value")
            elif kind == "window":
                if len(parts) < 3 or "=" not in parts[2]:
                    raise DeployError(
                        f"{where}: expected "
                        "'window <tenant> KERNEL=N[,N...] [FIELD=V ...]'"
                    )
                decl = decl_for(parts[1], where)
                kname, _, mask_text = parts[2].partition("=")
                mask = tuple(
                    _parse_int(m, where, "window mask entry")
                    for m in mask_text.split(",")
                )
                ext: Dict[str, int] = {}
                for part in parts[3:]:
                    if "=" not in part:
                        raise DeployError(
                            f"{where}: expected FIELD=VALUE, got {part!r}"
                        )
                    fname, _, fval = part.partition("=")
                    ext[fname] = _parse_int(fval, where, "window field value")
                decl.windows[kname] = (mask, ext)
                decl.window_locs[kname] = loc
            elif kind == "map":
                if len(parts) < 3:
                    raise DeployError(
                        f"{where}: expected 'map <tenant> LABEL=SWITCH ...'"
                    )
                decl = decl_for(parts[1], where)
                for part in parts[2:]:
                    if "=" not in part:
                        raise DeployError(
                            f"{where}: expected LABEL=SWITCH, got {part!r}"
                        )
                    label, _, target = part.partition("=")
                    if label in decl.placement:
                        raise DeployError(
                            f"{where}: duplicate map for label {label!r}"
                        )
                    decl.placement[label] = target
                    decl.map_locs[label] = loc
            elif kind == "pin":
                if len(parts) < 3:
                    raise DeployError(
                        f"{where}: expected 'pin <tenant> HOST=PHYSHOST ...'"
                    )
                decl = decl_for(parts[1], where)
                for part in parts[2:]:
                    if "=" not in part:
                        raise DeployError(
                            f"{where}: expected HOST=PHYSHOST, got {part!r}"
                        )
                    label, _, target = part.partition("=")
                    if label in decl.host_pins:
                        raise DeployError(
                            f"{where}: duplicate pin for host {label!r}"
                        )
                    decl.host_pins[label] = target
                    decl.pin_locs[label] = loc
            else:
                raise DeployError(
                    f"{where}: unknown declaration {kind!r}"
                )
        except AndError as exc:
            raise DeployError(f"{where}: {exc}") from None

    for loc, parts in pending_links:
        where = f"{filename}:{loc.line}"
        options = parse_kv_options(parts[3:], where, ("mtu",))
        mtu = _parse_int(options.get("mtu", "1500"), where, "mtu")
        try:
            fabric.add_link(parts[1], parts[2], mtu, loc)
        except AndError as exc:
            raise DeployError(f"{where}: {exc}") from None
    try:
        fabric.validate()
    except AndError as exc:
        raise DeployError(f"{filename}: {exc}") from None
    if not order:
        raise DeployError(f"{filename}: no tenants declared")

    sources: Dict[str, str] = {filename: text}
    tenants: List[TenantDeployment] = []
    compiled: Dict[Tuple, "CompiledProgram"] = {}
    for name in order:
        decl = decls[name]
        program = _load_or_compile(
            decl, root, sources, compiled, opt_level=opt_level
        )
        tenant = TenantDeployment(
            name,
            program,
            program_path=decl.program,
            idbase=_parse_int(
                decl.options.get("idbase", "0"),
                f"{filename}:{decl.loc.line}",
                "idbase",
            ),
            placement=decl.placement,
            host_pins=decl.host_pins,
            loc=decl.loc,
        )
        tenant.map_locs = decl.map_locs
        tenant.pin_locs = decl.pin_locs
        tenant.window_locs = decl.window_locs
        tenants.append(tenant)
    return Deployment(fabric, tenants, filename, sources)


def _load_or_compile(
    decl: _TenantDecl,
    root: Path,
    sources: Dict[str, str],
    compiled: Dict[Tuple, "CompiledProgram"],
    *,
    opt_level: int,
) -> "CompiledProgram":
    from repro.nclc.driver import CompiledProgram, Compiler, WindowConfig

    where = f"tenant '{decl.name}'"
    path = Path(decl.program)
    if not path.is_absolute():
        path = root / path
    try:
        text = path.read_text()
    except OSError as exc:
        raise DeployError(f"{where}: cannot read program: {exc}") from None

    if decl.program.endswith(".nclc.json"):
        if decl.defines or decl.windows or "and" in decl.options:
            raise DeployError(
                f"{where}: define/window/and= apply at compile time and "
                "cannot reconfigure a serialized artifact"
            )
        program = CompiledProgram.from_json(text)
        sources.setdefault(decl.program, program.source)
        return program

    and_text: Optional[str] = None
    if "and" in decl.options:
        and_path = Path(decl.options["and"])
        if not and_path.is_absolute():
            and_path = root / and_path
        try:
            and_text = and_path.read_text()
        except OSError as exc:
            raise DeployError(f"{where}: cannot read AND file: {exc}") from None

    windows = {
        kname: WindowConfig(mask=mask, ext=ext)
        for kname, (mask, ext) in decl.windows.items()
    }
    key = (
        decl.program,
        and_text,
        tuple(sorted(decl.defines.items())),
        tuple(sorted((k, cfg.mask, tuple(sorted(cfg.ext.items())))
                     for k, cfg in windows.items())),
        decl.options.get("profile"),
        opt_level,
    )
    if key in compiled:
        sources.setdefault(decl.program, text)
        return compiled[key]
    compiler = Compiler(
        profile=decl.options.get("profile"), opt_level=opt_level
    )
    try:
        program = compiler.compile(
            text,
            and_text=and_text,
            windows=windows or None,
            defines=decl.defines or None,
            filename=decl.program,
        )
    except NclError:
        raise
    except ReproError as exc:
        raise DeployError(
            f"{where}: program failed to compile: {exc}"
        ) from None
    compiled[key] = program
    sources.setdefault(decl.program, text)
    return program


from typing import TYPE_CHECKING  # noqa: E402

if TYPE_CHECKING:  # pragma: no cover
    from repro.nclc.driver import CompiledProgram
