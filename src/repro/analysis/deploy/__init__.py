"""Whole-fabric deployment checking (``nclc check-deploy``).

The single-program pipeline proves one program fits one switch; this
package proves a *deployment* -- N compiled programs co-resident on one
multi-switch fabric -- is admissible before anything is simulated or
installed. It is the static half of multi-tenant INC-as-a-service
(ROADMAP item 3): the admission controller runs these checks and rejects
a tenant *with diagnostics* instead of letting the fabric misbehave.

Layers:

* :mod:`repro.analysis.deploy.model` -- :class:`Deployment` /
  :class:`TenantDeployment` and the manifest parser;
* :mod:`repro.analysis.deploy.checks` -- the check registry (resource
  admission, isolation, placement, transport; NCL0910--NCL0941);
* :mod:`repro.analysis.deploy.report` -- the deterministic
  ``repro.deploy/1`` report and its text renderer.

Programmatic entry point: :func:`check_deployment`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.deploy.checks import (
    DeployCheck,
    DeployContext,
    all_checks,
    run_checks,
)
from repro.analysis.deploy.model import (
    Deployment,
    TenantDeployment,
    parse_deployment,
)
from repro.analysis.deploy.report import (
    SCHEMA,
    build_report,
    render_report_json,
    render_report_text,
)
from repro.diag import DiagnosticSink


def check_deployment(
    deployment: Deployment, sink: Optional[DiagnosticSink] = None
) -> DeployContext:
    """Run every deployment check; returns the populated context (its
    ``sink`` holds the deduped findings, ready for the report)."""
    ctx = DeployContext(deployment, sink if sink is not None else DiagnosticSink())
    run_checks(ctx)
    return ctx


__all__ = [
    "SCHEMA",
    "DeployCheck",
    "DeployContext",
    "Deployment",
    "TenantDeployment",
    "all_checks",
    "build_report",
    "check_deployment",
    "parse_deployment",
    "render_report_json",
    "render_report_text",
    "run_checks",
]
