"""Structured compiler diagnostics (the `repro.diag` engine).

The paper's central usability claim is that nclc *tells the programmer
why* a program cannot run on the switch. This package is the substrate
for that feedback loop: every front-end error, conformance violation and
static-analysis finding is a :class:`Diagnostic` -- severity, stable
code (``NCL0412``), primary + secondary source spans, notes and an
optional fix-it -- collected in a :class:`DiagnosticSink` instead of
aborting at the first failure.

Renderers live next door:

* :mod:`repro.diag.render` -- human-readable text with caret/underline
  source excerpts (``error[NCL0404]: ... --> file:4:9``);
* :mod:`repro.diag.export` -- a deterministic, schema-stable JSON form
  (SARIF-lite) for tooling and golden tests.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NclError, SourceLocation


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons mean "at least"."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


class Span:
    """A source region: a location plus a length (in columns) and an
    optional label rendered next to the underline."""

    __slots__ = ("loc", "length", "label")

    def __init__(
        self, loc: SourceLocation, length: int = 1, label: Optional[str] = None
    ) -> None:
        self.loc = loc
        self.length = max(1, int(length))
        self.label = label

    @property
    def filename(self) -> str:
        return self.loc.filename

    @property
    def line(self) -> int:
        return self.loc.line

    @property
    def column(self) -> int:
        return self.loc.column

    def __repr__(self) -> str:
        return f"Span({self.loc!r}+{self.length})"


class Diagnostic:
    """One finding. Immutable-ish data holder; renderers do the work."""

    def __init__(
        self,
        severity: Severity,
        code: str,
        message: str,
        primary: Optional[Span] = None,
        secondary: Optional[Sequence[Span]] = None,
        notes: Optional[Sequence[str]] = None,
        fixit: Optional[str] = None,
        rule: Optional[str] = None,
        status: Optional[str] = None,
    ) -> None:
        self.severity = severity
        self.code = code
        self.message = message
        self.primary = primary
        self.secondary: List[Span] = list(secondary or [])
        self.notes: List[str] = list(notes or [])
        self.fixit = fixit
        #: analysis rule name for findings from :mod:`repro.analysis`
        self.rule = rule
        #: absint grading for value-flow findings: "proved" (holds on
        #: every execution reaching the site) or "possible" (the computed
        #: ranges admit it); None for findings without range evidence
        self.status = status

    def sort_key(self) -> Tuple[Any, ...]:
        if self.primary is not None:
            where = (self.primary.filename, self.primary.line, self.primary.column)
        else:
            where = ("", 0, 0)
        return (*where, -int(self.severity), self.code, self.message)

    @staticmethod
    def _span_key(span: Optional[Span]) -> Tuple[Any, ...]:
        if span is None:
            return ()
        return (
            span.filename, span.line, span.column, span.length, span.label,
        )

    def identity(self) -> Tuple[Any, ...]:
        """Full content identity: two diagnostics with equal identity
        render byte-identically in both the text and JSON forms."""
        return (
            int(self.severity),
            self.code,
            self.message,
            self._span_key(self.primary),
            tuple(self._span_key(s) for s in self.secondary),
            tuple(self.notes),
            self.fixit,
            self.rule,
            self.status,
        )

    def __repr__(self) -> str:
        where = f" at {self.primary.loc!r}" if self.primary else ""
        return f"Diagnostic({self.severity.label}[{self.code}]{where}: {self.message!r})"


def diagnostic_from_error(exc: NclError, rule: Optional[str] = None) -> Diagnostic:
    """Convert a raised front-end error into a structured diagnostic."""
    code = getattr(exc, "code", None) or getattr(type(exc), "default_code", "NCL0001")
    length = getattr(exc, "length", 1) or 1
    primary = Span(exc.loc, length) if exc.loc is not None else None
    return Diagnostic(Severity.ERROR, code, exc.message, primary=primary, rule=rule)


class DiagnosticSink:
    """Collects diagnostics; the error-recovery analogue of ``raise``.

    Passing a sink into the front end / conformance checker / analysis
    framework switches them from fail-fast to collect-everything mode.
    """

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    # -- emission ------------------------------------------------------

    def add(self, diag: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diag)
        return diag

    def report(
        self,
        severity: Severity,
        code: str,
        message: str,
        loc: Optional[SourceLocation] = None,
        length: int = 1,
        secondary: Optional[Sequence[Span]] = None,
        notes: Optional[Sequence[str]] = None,
        fixit: Optional[str] = None,
        rule: Optional[str] = None,
        status: Optional[str] = None,
    ) -> Diagnostic:
        primary = Span(loc, length) if loc is not None else None
        return self.add(
            Diagnostic(
                severity, code, message, primary=primary,
                secondary=secondary, notes=notes, fixit=fixit, rule=rule,
                status=status,
            )
        )

    def error(
        self, code: str, message: str,
        loc: Optional[SourceLocation] = None, **kw: Any,
    ) -> Diagnostic:
        return self.report(Severity.ERROR, code, message, loc, **kw)

    def warning(
        self, code: str, message: str,
        loc: Optional[SourceLocation] = None, **kw: Any,
    ) -> Diagnostic:
        return self.report(Severity.WARNING, code, message, loc, **kw)

    def note(
        self, code: str, message: str,
        loc: Optional[SourceLocation] = None, **kw: Any,
    ) -> Diagnostic:
        return self.report(Severity.NOTE, code, message, loc, **kw)

    # -- inspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity is Severity.WARNING for d in self.diagnostics)

    def sorted(self) -> List[Diagnostic]:
        """Source order (file, line, column), errors before warnings on
        the same location; stable and deterministic across runs."""
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    # -- policy --------------------------------------------------------

    def dedupe(self) -> int:
        """Drop byte-identical duplicate diagnostics, keeping the first.

        Analyses that inspect one site from several contexts (lint rules
        collapse these per rule; deployment checks see every tenant pair
        and every switch) can emit the same finding -- same severity,
        code, message, spans, notes, fix-it -- more than once. Identity
        is :meth:`Diagnostic.identity`, i.e. the full rendered content,
        so two *different* findings at one location both survive.
        Returns the number of diagnostics removed.
        """
        seen = set()
        kept: List[Diagnostic] = []
        for diag in self.diagnostics:
            key = diag.identity()
            if key in seen:
                continue
            seen.add(key)
            kept.append(diag)
        removed = len(self.diagnostics) - len(kept)
        self.diagnostics = kept
        return removed

    def promote_warnings(self) -> int:
        """``--werror``: turn every warning into an error. Returns how
        many were promoted."""
        promoted = 0
        for diag in self.diagnostics:
            if diag.severity is Severity.WARNING:
                diag.severity = Severity.ERROR
                promoted += 1
        return promoted

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for diag in diags:
            self.add(diag)


__all__ = [
    "Severity",
    "Span",
    "Diagnostic",
    "DiagnosticSink",
    "diagnostic_from_error",
]
