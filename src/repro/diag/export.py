"""Machine-readable diagnostic export (SARIF-lite JSON).

The schema is versioned (``repro.diag/1``) and the serialization is
byte-deterministic for a given input program: diagnostics are sorted in
source order and keys are emitted sorted, so golden tests and CI diffing
can compare output verbatim.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.diag import Diagnostic, DiagnosticSink, Severity, Span

SCHEMA = "repro.diag/1"


def span_dict(span: Optional[Span]) -> Optional[Dict[str, object]]:
    if span is None:
        return None
    out: Dict[str, object] = {
        "file": span.filename,
        "line": span.line,
        "column": span.column,
        "length": span.length,
    }
    if span.label is not None:
        out["label"] = span.label
    return out


def diagnostic_dict(diag: Diagnostic) -> Dict[str, object]:
    out: Dict[str, object] = {
        "severity": diag.severity.label,
        "code": diag.code,
        "message": diag.message,
        "primary": span_dict(diag.primary),
        "secondary": [span_dict(s) for s in diag.secondary],
        "notes": list(diag.notes),
    }
    if diag.rule is not None:
        out["rule"] = diag.rule
    if diag.fixit is not None:
        out["fixit"] = diag.fixit
    if diag.status is not None:
        out["status"] = diag.status
    return out


def export_dict(sink: DiagnosticSink) -> Dict[str, object]:
    return {
        "schema": SCHEMA,
        "summary": {
            "errors": sink.count(Severity.ERROR),
            "warnings": sink.count(Severity.WARNING),
            "notes": sink.count(Severity.NOTE),
        },
        "diagnostics": [diagnostic_dict(d) for d in sink.sorted()],
    }


def render_json(sink: DiagnosticSink) -> str:
    """Deterministic JSON text (sorted keys, trailing newline)."""
    return json.dumps(export_dict(sink), indent=2, sort_keys=True) + "\n"


def findings_by_code(sink: DiagnosticSink) -> Dict[str, List[Diagnostic]]:
    """Group diagnostics by code -- convenient for tests and tooling."""
    by_code: Dict[str, List[Diagnostic]] = {}
    for diag in sink.sorted():
        by_code.setdefault(diag.code, []).append(diag)
    return by_code
