"""The central registry of stable ``NCLxxxx`` diagnostic codes.

Every diagnostic the toolchain can emit carries a stable code; codes are
assigned once and never reused, because downstream tooling (CI gates,
suppression lists, the docs table in ``docs/DIAGNOSTICS.md``) keys on
them. This module is the single source of truth for the assignment:

* the frontend / conformance / pass-manager codes are listed statically
  here;
* the ``nclc lint`` analysis rules contribute their declared ``codes``;
* the ``check-deploy`` whole-fabric checks contribute theirs;
* the ``check-proto`` transport-safety checks contribute theirs.

:func:`all_codes` folds the four sources together and *raises* on any
collision, and a registry-uniqueness unit test runs it in CI, so a new
rule or check that grabs an already-assigned code fails loudly instead
of silently aliasing an existing meaning.

Allocation map (first code of each block):

====== ==================================================
block  owner
====== ==================================================
0001   generic front-end error
0101   lexer / parser
04xx   semantic analysis
06xx   conformance + PISA resource estimates (lint)
07xx   dataflow / control-flow lint rules
08xx   value-flow (absint-graded) lint rules
0850+  transport-safety effect/protocol checks (check-proto)
0901+  usage lint rules (unused kernel / window field)
0910+  deployment: per-switch resource admission
0920+  deployment: tenant isolation
0930+  deployment: placement / reachability
0940+  deployment: transport invariants
0990   pass-manager internal failure
====== ==================================================
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Tuple

#: codes emitted by raise sites outside the rule/check registries:
#: frontend errors, conformance checks, and the pass manager.
STATIC_CODES: Dict[str, str] = {
    "NCL0001": "generic front-end error",
    "NCL0101": "syntax error",
    "NCL0400": "semantic/type error",
    "NCL0404": "use of an undeclared identifier",
    "NCL0405": "unknown function",
    "NCL0601": "recursion (not realizable on PISA)",
    "NCL0602": "general division/modulo (no ALU support)",
    "NCL0603": "conflicting _at_ location constraints",
    "NCL0604": "_at_/_locid label not present in the AND",
    "NCL0605": "host code touching switch-pinned state it cannot reach",
    "NCL0990": "internal compiler pipeline failure",
}

_CODE_RE = re.compile(r"^NCL\d{4}$")


class CodeCollision(ValueError):
    """Two components claim the same NCLxxxx code."""


def _claim(
    table: Dict[str, Tuple[str, str]],
    code: str,
    owner: str,
    summary: str,
) -> None:
    if not _CODE_RE.match(code):
        raise CodeCollision(
            f"{owner}: malformed diagnostic code {code!r} "
            "(expected NCL + 4 digits)"
        )
    if code in table:
        prev_owner, _ = table[code]
        raise CodeCollision(
            f"diagnostic code {code} claimed by both {prev_owner!r} "
            f"and {owner!r}"
        )
    table[code] = (owner, summary)


def all_codes() -> Dict[str, Tuple[str, str]]:
    """``{code: (owner, summary)}`` over every registered source.

    Raises :class:`CodeCollision` if any two sources claim one code.
    """
    table: Dict[str, Tuple[str, str]] = {}
    for code, summary in STATIC_CODES.items():
        _claim(table, code, "frontend", summary)

    from repro.analysis import all_rules

    for rule in all_rules():
        for code in rule.codes:
            _claim(table, code, f"lint rule '{rule.name}'", rule.about)

    from repro.analysis.deploy.checks import all_checks

    for check in all_checks():
        for code in check.codes:
            _claim(
                table, code, f"deploy check '{check.name}'", check.about
            )

    from repro.analysis.proto import all_checks as all_proto_checks

    for proto_check in all_proto_checks():
        for code in proto_check.codes:
            _claim(
                table,
                code,
                f"proto check '{proto_check.name}'",
                proto_check.about,
            )
    return table


def assert_unique(extra: Iterable[Tuple[str, str]] = ()) -> None:
    """Fail (raise) if any registered code collides; *extra* optionally
    adds ``(code, owner)`` pairs to check against the registry."""
    table = all_codes()
    for code, owner in extra:
        _claim(table, code, owner, "")
