"""Text rendering of diagnostics with caret/underline source excerpts.

Output format (modelled on modern compiler CLIs)::

    error[NCL0404]: use of undeclared identifier 'foo'
      --> demo.ncl:4:9
       |
     4 |   x = foo + 1;
       |       ^^^
       = note: declare 'foo' before use

Secondary spans render as extra excerpt blocks underlined with ``-`` and
carry their label on the underline line, so e.g. a race reports both
conflicting access sites in one diagnostic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.diag import Diagnostic, DiagnosticSink, Severity, Span


class SourceMap:
    """Line-splitting cache over ``{filename: source_text}``."""

    def __init__(self, sources: Optional[Mapping[str, str]] = None) -> None:
        self._lines: Dict[str, List[str]] = {}
        for name, text in (sources or {}).items():
            self.add(name, text)

    def add(self, filename: str, text: str) -> None:
        self._lines[filename] = text.splitlines()

    def line(self, filename: str, lineno: int) -> Optional[str]:
        lines = self._lines.get(filename)
        if lines is None or not (1 <= lineno <= len(lines)):
            return None
        return lines[lineno - 1]


def _excerpt(sources: SourceMap, span: Span, marker: str) -> List[str]:
    """The ``--> file:line:col`` header plus gutter/caret lines."""
    loc = span.loc
    out = [f"  --> {loc.filename}:{loc.line}:{loc.column}"]
    text = sources.line(loc.filename, loc.line)
    if text is None:
        if span.label:
            out[-1] += f"  ({span.label})"
        return out
    gutter = f"{loc.line} "
    pad = " " * len(gutter)
    # Tabs would break caret alignment; render them as single spaces.
    shown = text.replace("\t", " ")
    underline_len = max(1, min(span.length, max(1, len(shown) - loc.column + 1)))
    underline = " " * max(0, loc.column - 1) + marker * underline_len
    if span.label:
        underline += f" {span.label}"
    out.append(f"{pad}|")
    out.append(f"{gutter}| {shown}")
    out.append(f"{pad}| {underline}")
    return out


def render_diagnostic(diag: Diagnostic, sources: SourceMap) -> str:
    head = f"{diag.severity.label}[{diag.code}]: {diag.message}"
    lines = [head]
    if diag.primary is not None:
        lines.extend(_excerpt(sources, diag.primary, "^"))
    for span in diag.secondary:
        lines.extend(_excerpt(sources, span, "-"))
    for note in diag.notes:
        lines.append(f"  = note: {note}")
    if diag.fixit:
        lines.append(f"  = help: {diag.fixit}")
    return "\n".join(lines)


def render_text(
    sink: DiagnosticSink,
    sources: Optional[Mapping[str, str]] = None,
    summary: bool = True,
) -> str:
    """Render every diagnostic in source order plus a summary line."""
    srcmap = sources if isinstance(sources, SourceMap) else SourceMap(sources)
    blocks = [render_diagnostic(d, srcmap) for d in sink.sorted()]
    if summary:
        n_err = sink.count(Severity.ERROR)
        n_warn = sink.count(Severity.WARNING)
        if n_err or n_warn:
            parts = []
            if n_err:
                parts.append(f"{n_err} error{'s' if n_err != 1 else ''}")
            if n_warn:
                parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
            blocks.append(" and ".join(parts) + " generated")
        else:
            blocks.append("no diagnostics")
    return "\n\n".join(blocks) + "\n" if blocks else ""
