"""Host-side execution of NCL programs: run ``main()`` from the same
translation unit the kernels came from.

The paper's Fig 4 shows a *single* NCL file containing switch kernels,
an incoming kernel, and a C ``main()`` that drives them through the
runtime API (``ncl::ctrl_wr``, ``ncl::out``, ``ncl::in``). nclc's host
pipeline would compile that to an x86 binary linked against libncrt;
in this reproduction the "host binary" is :class:`HostProgram` -- an
AST-level executor with the ``ncl::`` calls bound to the live runtime:

* ``ncl::ctrl_wr(&var, value)``      -> control-plane write;
* ``ncl::map_insert(&map, k, v)``    -> control-plane table insert;
* ``ncl::out(kernel, {arrays...})``  -> invoke the outgoing kernel
  (arrays are host variables; windows per the compiled WindowConfig);
* ``ncl::in(kernel, {args...})``     -> co-simulate the network until
  the next window for *kernel* has been handled by the incoming kernel;
  returns the number of windows received so far.

Host code runs under C semantics (fixed-width wrapping, short-circuit
``&&``/``||`` -- hosts are real CPUs, unlike the eager data plane).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RuntimeApiError
from repro.ncl import ast
from repro.ncl.sema import TranslationUnit
from repro.ncl.symbols import Symbol, SymbolKind
from repro.ncl.types import ArrayType, IntType, Type, is_signed, scalar_bits
from repro.runtime.host_rt import NclHost
from repro.util import intops


class Cell:
    """A mutable reference produced by ``&scalar`` -- behaves like a
    1-element buffer so incoming kernels can write through it."""

    __slots__ = ("container", "key")

    def __init__(self, container, key):
        self.container = container
        self.key = key

    def __getitem__(self, idx):
        if idx != 0:
            raise RuntimeApiError("scalar reference indexed out of range")
        return self.container[self.key]

    def __setitem__(self, idx, value):
        if idx != 0:
            raise RuntimeApiError("scalar reference indexed out of range")
        self.container[self.key] = value

    def __len__(self):
        return 1


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _CtrlHandle:
    """Result of ``&ctrl_var`` in host code: names switch-side state."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class HostProgram:
    """Binds a translation unit's host code to a deployed cluster host."""

    def __init__(self, cluster, host_label: str):
        self.cluster = cluster
        self.program = cluster.program
        self.unit: TranslationUnit = self.program.unit
        self.host: NclHost = cluster.host(host_label)
        self._registered_in: Dict[str, bool] = {}

    # -- entry points ----------------------------------------------------------

    def run(self, fn_name: str = "main", args: Optional[List] = None):
        decl = self.unit.functions.get(fn_name)
        if decl is None or decl.body is None:
            raise RuntimeApiError(f"no host function {fn_name!r} to run")
        env: Dict[str, object] = {}
        for param, value in zip(decl.params, args or []):
            env[param.name] = value
        try:
            self._exec_block(decl.body, env)
        except _Return as ret:
            return ret.value
        return None

    # -- statements -------------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Dict[str, object]) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.Stmt, env: Dict[str, object]) -> None:
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.DeclStmt):
            self._exec_decl(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.If):
            inner = dict(env)
            if stmt.cond_decl is not None:
                self._exec_decl(stmt.cond_decl, inner)
                cond = bool(inner[stmt.cond_decl.name])
            else:
                cond = bool(self._eval(stmt.cond, inner))
            if cond:
                self._exec_stmt(stmt.then, inner)
            elif stmt.orelse is not None:
                self._exec_stmt(stmt.orelse, inner)
            self._copy_back(env, inner)
        elif isinstance(stmt, ast.While):
            guard = 0
            while bool(self._eval(stmt.cond, env)):
                guard += 1
                if guard > 10_000_000:
                    raise RuntimeApiError("host loop exceeded 10M iterations")
                try:
                    self._exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, ast.For):
            inner = dict(env)
            if stmt.init is not None:
                self._exec_stmt(stmt.init, inner)
            guard = 0
            while stmt.cond is None or bool(self._eval(stmt.cond, inner)):
                guard += 1
                if guard > 10_000_000:
                    raise RuntimeApiError("host loop exceeded 10M iterations")
                try:
                    self._exec_stmt(stmt.body, inner)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self._eval(stmt.step, inner)
            self._copy_back(env, inner)
        elif isinstance(stmt, ast.Return):
            raise _Return(self._eval(stmt.value, env) if stmt.value else None)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        else:
            raise RuntimeApiError(f"cannot execute {type(stmt).__name__} on host")

    @staticmethod
    def _copy_back(outer: Dict[str, object], inner: Dict[str, object]) -> None:
        for key in outer:
            if key in inner:
                outer[key] = inner[key]

    def _exec_decl(self, stmt: ast.DeclStmt, env: Dict[str, object]) -> None:
        ty = stmt.ty
        if isinstance(ty, ArrayType):
            env[stmt.name] = [0] * ty.total_elements
            return
        value = self._eval(stmt.init, env) if stmt.init is not None else 0
        if ty is not None and ty.is_scalar:
            value = self._wrap(value, ty)
        env[stmt.name] = value

    # -- expressions --------------------------------------------------------------

    def _wrap(self, value, ty: Type):
        if isinstance(value, int) and ty.is_scalar:
            return intops.wrap(value, scalar_bits(ty), is_signed(ty))
        return value

    def _eval(self, expr: ast.Expr, env: Dict[str, object]):
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return int(expr.value)
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            return self._load_ident(expr, env)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, env)
            idx = self._eval(expr.index, env)
            return base[idx]
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, env)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.Assign):
            return self._eval_assign(expr, env)
        if isinstance(expr, ast.Ternary):
            if self._eval(expr.cond, env):
                return self._eval(expr.then, env)
            return self._eval(expr.other, env)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, env)
            return self._wrap(value, expr.target) if expr.target.is_scalar else value
        raise RuntimeApiError(f"cannot evaluate {type(expr).__name__} on host")

    def _load_ident(self, expr: ast.Ident, env: Dict[str, object]):
        if expr.name in env:
            return env[expr.name]
        sym = expr.decl
        if isinstance(sym, Symbol):
            if sym.kind is SymbolKind.HOST_GLOBAL:
                array = self.host.state.arrays.get(sym.name)
                if array is None:
                    raise RuntimeApiError(f"host global {sym.name!r} missing")
                if isinstance(sym.ty, ArrayType):
                    return array
                return array[0]
            if sym.kind in (SymbolKind.CTRL, SymbolKind.MAP, SymbolKind.BLOOM):
                return _CtrlHandle(sym.name)
        raise RuntimeApiError(f"unbound identifier {expr.name!r} in host code")

    def _eval_unary(self, expr: ast.Unary, env):
        op = expr.op
        if op == "&":
            return self._address_of(expr.operand, env)
        if op == "*":
            pointer = self._eval(expr.operand, env)
            return pointer[0]
        if op in ("++", "--"):
            old = self._eval(expr.operand, env)
            delta = 1 if op == "++" else -1
            new = self._wrap(old + delta, expr.operand.ty or IntType(32, True))
            self._store(expr.operand, new, env)
            return old if expr.postfix else new
        value = self._eval(expr.operand, env)
        if op == "!":
            return int(not value)
        if op == "-":
            return self._wrap(-value, expr.ty or IntType(32, True))
        if op == "~":
            return self._wrap(~value, expr.ty or IntType(32, True))
        raise RuntimeApiError(f"unsupported host unary {op!r}")

    def _address_of(self, expr: ast.Expr, env):
        if isinstance(expr, ast.Ident):
            if isinstance(expr.decl, Symbol) and expr.decl.is_switch_side:
                return _CtrlHandle(expr.decl.name)
            if expr.name in env:
                return Cell(env, expr.name)
            sym = expr.decl
            if isinstance(sym, Symbol) and sym.kind is SymbolKind.HOST_GLOBAL:
                return Cell(self.host.state.arrays[sym.name], 0)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, env)
            idx = self._eval(expr.index, env)
            return Cell(base, idx)
        raise RuntimeApiError("unsupported address-of in host code")

    def _eval_binary(self, expr: ast.Binary, env):
        op = expr.op
        if op == "&&":
            return int(bool(self._eval(expr.lhs, env)) and bool(self._eval(expr.rhs, env)))
        if op == "||":
            return int(bool(self._eval(expr.lhs, env)) or bool(self._eval(expr.rhs, env)))
        if op == ",":
            self._eval(expr.lhs, env)
            return self._eval(expr.rhs, env)
        a = self._eval(expr.lhs, env)
        b = self._eval(expr.rhs, env)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return int(
                {
                    "==": a == b,
                    "!=": a != b,
                    "<": a < b,
                    "<=": a <= b,
                    ">": a > b,
                    ">=": a >= b,
                }[op]
            )
        ty = expr.ty or IntType(32, True)
        if op == "+":
            raw = a + b
        elif op == "-":
            raw = a - b
        elif op == "*":
            raw = a * b
        elif op == "/":
            raw = intops.checked_sdiv(a, b) if is_signed(ty) else intops.checked_udiv(a, b)
        elif op == "%":
            raw = intops.checked_srem(a, b) if is_signed(ty) else a % b
        elif op == "<<":
            raw = a << intops.shift_amount(b, scalar_bits(ty))
        elif op == ">>":
            raw = a >> intops.shift_amount(b, scalar_bits(ty))
        elif op == "&":
            raw = a & b
        elif op == "|":
            raw = a | b
        elif op == "^":
            raw = a ^ b
        else:
            raise RuntimeApiError(f"unsupported host operator {op!r}")
        return self._wrap(raw, ty)

    def _eval_assign(self, expr: ast.Assign, env):
        value = self._eval(expr.value, env)
        if expr.op != "=":
            old = self._eval(expr.target, env)
            binop = ast.Binary(expr.loc, expr.op.rstrip("="), expr.target, expr.value)
            binop.ty = expr.target.ty
            # reuse the arithmetic path with already-evaluated operands
            value = self._apply_binop(expr.op.rstrip("="), old, value, expr.target.ty)
        if expr.target.ty is not None and expr.target.ty.is_scalar:
            value = self._wrap(value, expr.target.ty)
        self._store(expr.target, value, env)
        return value

    def _apply_binop(self, op, a, b, ty):
        fake = ast.Binary(None, op, None, None)  # type: ignore[arg-type]
        fake.ty = ty

        class _Lit:
            def __init__(self, v):
                self.v = v

        # inline evaluation without re-walking operands
        table = {
            "+": a + b,
            "-": a - b,
            "*": a * b,
            "&": a & b,
            "|": a | b,
            "^": a ^ b,
        }
        if op in table:
            raw = table[op]
        elif op == "/":
            raw = intops.checked_sdiv(a, b) if (ty and is_signed(ty)) else intops.checked_udiv(a, b)
        elif op == "%":
            raw = intops.checked_srem(a, b) if (ty and is_signed(ty)) else a % b
        elif op == "<<":
            raw = a << intops.shift_amount(b, scalar_bits(ty) if ty else 32)
        elif op == ">>":
            raw = a >> intops.shift_amount(b, scalar_bits(ty) if ty else 32)
        else:
            raise RuntimeApiError(f"unsupported compound op {op!r}")
        return self._wrap(raw, ty) if ty and ty.is_scalar else raw

    def _store(self, target: ast.Expr, value, env) -> None:
        if isinstance(target, ast.Ident):
            if target.name in env:
                env[target.name] = value
                return
            sym = target.decl
            if isinstance(sym, Symbol) and sym.kind is SymbolKind.HOST_GLOBAL:
                self.host.state.arrays[sym.name][0] = value
                return
            raise RuntimeApiError(f"cannot assign {target.name!r} on host")
        if isinstance(target, ast.Index):
            base = self._eval(target.base, env)
            idx = self._eval(target.index, env)
            base[idx] = value
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self._eval(target.operand, env)
            pointer[0] = value
            return
        raise RuntimeApiError("unsupported host assignment target")

    # -- calls ---------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call, env):
        name = expr.name
        if name == "ncl::ctrl_wr":
            handle = self._eval(expr.args[0], env)
            value = self._eval(expr.args[1], env)
            if not isinstance(handle, _CtrlHandle):
                raise RuntimeApiError("ncl::ctrl_wr expects &ctrl_variable")
            index = self._eval(expr.args[2], env) if len(expr.args) > 2 else 0
            self.cluster.controller.ctrl_wr(handle.name, value, index)
            return None
        if name == "ncl::map_insert":
            handle = self._eval(expr.args[0], env)
            key = self._eval(expr.args[1], env)
            value = self._eval(expr.args[2], env)
            self.cluster.controller.map_insert(handle.name, key, value)
            return None
        if name == "ncl::map_erase":
            handle = self._eval(expr.args[0], env)
            key = self._eval(expr.args[1], env)
            self.cluster.controller.map_erase(handle.name, key)
            return None
        if name == "ncl::out":
            return self._ncl_out(expr, env)
        if name == "ncl::in":
            return self._ncl_in(expr, env)
        if name == "__list__":
            return [self._eval(a, env) for a in expr.args]
        decl = self.unit.functions.get(name)
        if decl is not None and decl.body is not None:
            args = [self._eval(a, env) for a in expr.args]
            sub_env: Dict[str, object] = {}
            for param, value in zip(decl.params, args):
                sub_env[param.name] = value
            try:
                self._exec_block(decl.body, sub_env)
            except _Return as ret:
                return ret.value
            return None
        raise RuntimeApiError(f"cannot call {name!r} from host code")

    def _kernel_name(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Ident):
            return expr.name
        raise RuntimeApiError("first argument must name a kernel")

    def _ncl_out(self, expr: ast.Call, env):
        kernel = self._kernel_name(expr.args[0])
        arrays = self._eval(expr.args[1], env)
        if not isinstance(arrays, list):
            arrays = [arrays]
        dst = None
        for extra in expr.args[2:]:
            value = self._eval(extra, env)
            if isinstance(value, str):
                dst = value  # destination label (Fig 2: kernel(h0, h1, "Host-B"))
        buffers = [a if hasattr(a, "__len__") else [a] for a in arrays]
        return self.host.out(kernel, buffers, dst=dst)

    def _ncl_in(self, expr: ast.Call, env):
        kernel = self._kernel_name(expr.args[0])
        args = self._eval(expr.args[1], env) if len(expr.args) > 1 else []
        if not isinstance(args, list):
            args = [args]
        info = self.unit.in_kernels.get(kernel)
        if info is None:
            raise RuntimeApiError(f"{kernel!r} is not an incoming kernel")
        n_ext = len(info.ext_params)
        ext_args = args[-n_ext:] if n_ext else []
        if not self._registered_in.get(kernel):
            self.host.register_in(kernel, ext_args)
            self._registered_in[kernel] = True
        before = self.host.received_count(kernel)
        # Co-simulate one event at a time until the next window lands (the
        # blocking recv of the paper's Fig 4 line 20) or the network drains.
        limit = 10_000_000
        while self.host.received_count(kernel) == before and limit:
            if not self.cluster.sim.step():
                break
            limit -= 1
        return self.host.received_count(kernel)
