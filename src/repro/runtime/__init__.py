"""libncrt: the NCL host runtime -- kernel invocation, windowing,
control-plane access, and cluster deployment."""

from repro.runtime.cluster import Cluster
from repro.runtime.controller import Controller
from repro.runtime.host_rt import NclHost
from repro.runtime.hostexec import HostProgram

__all__ = ["Cluster", "Controller", "HostProgram", "NclHost"]
