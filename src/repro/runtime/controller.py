"""The control-plane side of libncrt.

NCL kernels are data-plane code, "but may involve the control plane
under the hood" (paper S3.2): hosts write ``_ctrl_`` variables and
manage ``ncl::Map`` entries through out-of-band control-plane operations
(the paper points at ONOS-style controllers). The :class:`Controller`
is that path: it knows which switches hold which state and performs the
writes directly on their register arrays / tables, optionally after a
simulated control-channel delay.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import RuntimeApiError
from repro.nclc.driver import CompiledProgram
from repro.net.pisanode import PisaSwitchNode

if TYPE_CHECKING:
    from repro.net.events import Simulator

#: modelled controller -> switch RPC latency (one way)
DEFAULT_CTRL_DELAY = 100e-6


class Controller:
    def __init__(
        self,
        program: CompiledProgram,
        switches: Dict[str, PisaSwitchNode],
        sim: Optional["Simulator"] = None,
        delay: float = 0.0,
    ):
        self.program = program
        self.switches = dict(switches)
        self.sim = sim
        self.delay = delay

    # -- placement ------------------------------------------------------------

    def _targets(self, var_name: str) -> List[PisaSwitchNode]:
        """Switches on which *var_name* exists (pinned or location-less)."""
        ref = self.program.ref_module.globals.get(var_name)
        if ref is None or ref.space == "host":
            raise RuntimeApiError(f"{var_name!r} is not switch-side state")
        if ref.at_label is not None:
            node = self.switches.get(ref.at_label)
            if node is None:
                raise RuntimeApiError(
                    f"{var_name!r} is pinned to {ref.at_label!r}, which is not "
                    "deployed"
                )
            return [node]
        return list(self.switches.values())

    def _apply(self, fn) -> None:
        if self.sim is not None and self.delay > 0:
            self.sim.schedule(self.delay, fn, label="ctrl;controller;apply")
        else:
            fn()

    # -- operations ---------------------------------------------------------------

    def ctrl_wr(self, var_name: str, value: int, index: int = 0) -> None:
        """Write a ``_ctrl_`` variable (Fig 4: ``ncl::ctrl_wr(&nworkers, 16)``)."""
        targets = self._targets(var_name)
        reg = f"reg_{var_name}"
        for node in targets:
            if reg not in node.switch.program.registers:
                raise RuntimeApiError(
                    f"{var_name!r} has no register on switch {node.name!r} "
                    "(is it referenced by any kernel there?)"
                )
            self._apply(lambda n=node: n.switch.ctrl_register_write(reg, value, index))

    def ctrl_rd(self, var_name: str, index: int = 0) -> int:
        node = self._targets(var_name)[0]
        return node.switch.ctrl_register_read(f"reg_{var_name}", index)

    def map_insert(self, map_name: str, key: int, value: int) -> None:
        """Insert/replace a Map entry (Fig 5: the storage server populates
        ``Idx``)."""
        for node in self._targets(map_name):
            table = f"map_{map_name}"
            if table not in node.switch.program.tables:
                raise RuntimeApiError(
                    f"Map {map_name!r} has no table on switch {node.name!r}"
                )
            self._apply(
                lambda n=node: n.switch.table_insert(
                    table, [key], f"map_{map_name}_hit", [value]
                )
            )

    def map_erase(self, map_name: str, key: int) -> None:
        for node in self._targets(map_name):
            table = f"map_{map_name}"
            self._apply(lambda n=node: n.switch.table_delete(table, [key]))

    def map_entries(self, map_name: str) -> Dict[int, int]:
        node = self._targets(map_name)[0]
        return {
            entry.match[0]: entry.args[0]
            for entry in node.switch.table_entries(f"map_{map_name}")
        }

    def register_dump(self, var_name: str, label: Optional[str] = None) -> List[int]:
        """Inspect switch memory (debug/verification aid, not an NCL API).

        Transparently reassembles arrays the compiler split across
        per-offset register arrays (the arch-specific transformation)."""
        targets = self._targets(var_name)
        if label is not None:
            targets = [n for n in targets if n.name == label]
            if not targets:
                raise RuntimeApiError(f"no deployed switch {label!r}")
        node = targets[0]
        arrays = node.switch.registers.arrays
        reg = f"reg_{var_name}"
        if reg in arrays:
            return list(arrays[reg])
        for split in self.program.split_info.get(node.name, []):
            if split.name == var_name:
                parts = [arrays[f"reg_{p}"] for p in split.part_names]
                out: List[int] = []
                for i in range(len(parts[0]) * split.stride):
                    out.append(parts[i % split.stride][i // split.stride])
                return out
        raise RuntimeApiError(
            f"{var_name!r} has no register on switch {node.name!r}"
        )
