"""libncrt's host side: kernel invocation, windowing, and delivery.

This implements the paper's two host APIs (S4.1):

* the **data-centric** API -- :meth:`NclHost.out` consumes whole arrays,
  splitting them into windows per the kernel's compiled mask and putting
  every window on the wire ("resembling a send() in a loop");
* the **window-level** API -- :meth:`NclHost.out_window` sends one
  window, "a building block for richer interfaces".

On the receive path, incoming windows are matched to the outgoing kernel
that produced them (NCP carries the kernel id) and dispatched to the
paired ``_net_ _in_`` kernel registered via :meth:`NclHost.register_in`;
the incoming kernel runs in the NIR interpreter with the window chunks
and the caller's ``_ext_`` buffers as arguments. Raw window handlers are
available for application roles that are not plain receivers (e.g. the
KVS storage server answering GET misses).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import RuntimeApiError
from repro.ncl.types import PointerType
from repro.nclc.driver import CompiledProgram
from repro.ncp.window import Window, Windower
from repro.ncp.wire import decode_frame, encode_frame
from repro.net.node import HostNode
from repro.nir import ir
from repro.nir.interp import DeviceState, Interpreter, WindowContext

WindowHandler = Callable[[Window, "NclHost"], None]


class _InRegistration:
    def __init__(self, kernel: ir.Function, ext_args: List, on_window: Optional[WindowHandler]):
        self.kernel = kernel
        self.ext_args = ext_args
        self.on_window = on_window
        self.windows_received = 0


class NclHost:
    """One application endpoint, bound to a simulated host node."""

    def __init__(
        self,
        node: HostNode,
        program: CompiledProgram,
        and_node_id: Optional[int] = None,
        mtu: Optional[int] = None,
    ):
        self.node = node
        self.program = program
        # Multi-packet windows (S6 future work): frames above the MTU are
        # fragmented; switches forward fragments without executing kernels.
        self.mtu = mtu
        from repro.ncp.fragment import Reassembler

        self._reassembler = Reassembler()
        # When deployed onto a mapped physical network, the runtime speaks
        # with its AND (overlay) identity rather than the physical node id.
        self._and_node_id = and_node_id
        self.layout_by_id = {
            layout.kernel_id: layout for layout in program.layouts.values()
        }
        # Host-side memory: host globals of the translation unit.
        self.state = DeviceState()
        for ref in program.ref_module.globals.values():
            if ref.space == "host":
                init = ref.init if ref.init is not None else [0] * ref.total_elements
                values = list(init)
                if len(values) < ref.total_elements:
                    values.extend([0] * (ref.total_elements - len(values)))
                self.state.arrays[ref.name] = values
        self._interp = Interpreter(program.ref_module, self.state)
        self._in_regs: Dict[str, _InRegistration] = {}
        self._raw_handlers: Dict[str, WindowHandler] = {}
        self.inbox: Dict[str, List[Window]] = {}
        self.windows_sent = 0
        self.windows_received = 0
        self.windows_retransmitted = 0
        #: retransmission attempt counters by (kernel, seq)
        self._retx_attempts: Dict[tuple, int] = {}
        node.receiver = self._on_frame
        # Preferred delivery path: the Frame object carries the header
        # parse cached along the packet path, so delivery re-parses
        # nothing the network already looked at.
        node.frame_receiver = self._on_frame_obj

    # -- observability ----------------------------------------------------------

    @property
    def _obs(self):
        return self.node.sim.obs

    @property
    def _track(self) -> str:
        return f"host {self.node.name}"

    def _window_count(self, obs, event: str, kernel: str) -> None:
        """Window lifecycle counter: open (cut from an array by the
        windower), flush (framed and put on the wire), recv (decoded at
        a host), retransmit (re-flushed by :meth:`retransmit_window`)."""
        obs.registry.counter(
            "ncp.windows",
            "window lifecycle events, by kernel",
            ("host", "kernel", "event"),
        ).labels(host=self.node.name, kernel=kernel, event=event).inc()

    def _retx_gauge(self, obs) -> None:
        """Live size of the retransmission-attempt table. Entries are
        evicted when a window of the same (kernel, seq) is delivered
        back, so a steadily climbing gauge means responses are not
        coming home (or the transport never completes its windows)."""
        obs.registry.gauge(
            "ncp.retx_tracked",
            "in-flight (kernel, seq) retransmission attempt entries",
            ("host",),
        ).labels(host=self.node.name).set(len(self._retx_attempts))

    @property
    def _node_labels(self) -> Dict[int, str]:
        """AND node id -> label, for annotating INT hop records."""
        labels = self.__dict__.get("_node_labels_cache")
        if labels is None:
            labels = {
                node.node_id: label
                for label, node in self.program.and_spec.nodes.items()
            }
            self.__dict__["_node_labels_cache"] = labels
        return labels

    # -- address helpers --------------------------------------------------------

    def _node_id_of(self, dst: Union[str, int]) -> int:
        if isinstance(dst, int):
            return dst
        return self.program.and_spec.node(dst).node_id

    @property
    def node_id(self) -> int:
        if self._and_node_id is not None:
            return self._and_node_id
        return self.node.node_id

    # -- outgoing path ---------------------------------------------------------------

    def out(
        self,
        kernel: str,
        arrays: Sequence[Sequence[int]],
        dst: Union[str, int, None] = None,
        ext: Optional[Mapping[str, int]] = None,
    ) -> int:
        """Invoke an outgoing kernel on whole arrays (data-centric API).

        ``dst`` may be omitted when the kernel is pinned with ``_at_`` --
        windows are then addressed to that switch and the kernel's own
        forwarding decisions take over (Fig 4's ``ncl::out`` passes no
        destination). Returns the number of windows sent.
        """
        dst = self._resolve_dst(kernel, dst)
        config = self._config(kernel)
        ext_values = self._ext_values(kernel, ext)
        windower = Windower(config.mask)
        count = 0
        obs = self._obs
        for window in windower.split(arrays, ext=ext_values, from_node=self.node_id):
            if obs.enabled:
                self._window_count(obs, "open", kernel)
            self._send_window(kernel, window, dst)
            count += 1
        self.windows_sent += count
        return count

    def out_window(
        self,
        kernel: str,
        seq: int,
        chunks: Sequence[Sequence[int]],
        dst: Union[str, int],
        ext: Optional[Mapping[str, int]] = None,
        last: bool = False,
    ) -> None:
        """Send a single window (the finer-grained invocation API)."""
        ext_values = self._ext_values(kernel, ext)
        window = Window(seq, chunks, ext=ext_values, last=last, from_node=self.node_id)
        self._send_window(kernel, window, dst)
        self.windows_sent += 1

    def _resolve_dst(self, kernel: str, dst: Union[str, int, None]) -> Union[str, int]:
        if dst is not None:
            return dst
        info = self.program.unit.out_kernels.get(kernel)
        if info is not None and info.at_label is not None:
            return info.at_label
        # Fig 4's ncl::out passes no destination: windows are addressed to
        # the first-hop switch and the kernel's forwarding takes over.
        label = None
        for node_label, node in self.program.and_spec.nodes.items():
            if node.node_id == self.node_id:
                label = node_label
                break
        if label is not None:
            neighbors = self.program.and_spec.neighbors(label)
            switch_neighbors = [
                n for n in neighbors if self.program.and_spec.node(n).is_switch
            ]
            if len(switch_neighbors) == 1:
                return switch_neighbors[0]
        raise RuntimeApiError(
            f"kernel {kernel!r} has no unambiguous destination; pass dst "
            "explicitly (a host label for end-to-end transfers, or a switch)"
        )

    def _config(self, kernel: str):
        config = self.program.window_configs.get(kernel)
        if config is None:
            raise RuntimeApiError(f"{kernel!r} is not a compiled outgoing kernel")
        return config

    def _ext_values(self, kernel: str, ext: Optional[Mapping[str, int]]) -> Dict[str, int]:
        config = self._config(kernel)
        values = dict(config.ext)
        for name, value in (ext or {}).items():
            if name not in values:
                raise RuntimeApiError(
                    f"unknown window extension field {name!r} for kernel {kernel!r}"
                )
            if value != values[name]:
                raise RuntimeApiError(
                    f"window field {name!r}={value} differs from the compiled "
                    f"value {values[name]}; switch code was specialized for the "
                    "compiled window geometry"
                )
        return values

    def retransmit_window(
        self,
        kernel: str,
        window: Window,
        dst: Union[str, int],
    ) -> int:
        """Re-send a window that is presumed lost (the building block for
        reliable transports layered over NCP). Each retransmission of a
        (kernel, seq) gets an increasing attempt number, which rides in
        the INT trailer so the lineage index shows every attempt as a
        distinct branch with its own per-hop records. Returns the attempt
        number used."""
        key = (kernel, window.seq)
        attempt = self._retx_attempts.get(key, 0) + 1
        self._retx_attempts[key] = attempt
        obs = self._obs
        if obs.enabled:
            self._window_count(obs, "retransmit", kernel)
            self._retx_gauge(obs)
        self._send_window(kernel, window, dst, attempt=attempt)
        self.windows_retransmitted += 1
        return attempt

    def _send_window(
        self,
        kernel: str,
        window: Window,
        dst: Union[str, int],
        attempt: int = 0,
    ) -> None:
        layout = self.program.layouts[kernel]
        frame = encode_frame(
            layout,
            src_node=self.node_id,
            dst_node=self._node_id_of(dst),
            seq=window.seq,
            chunks=window.chunks,
            ext_values=window.ext,
            last=window.last,
            from_node=window.from_node,
        )
        obs = self._obs
        int_cfg = obs.int_config
        if obs.enabled:
            self._window_count(obs, "flush", kernel)
            obs.tracer.instant(
                "window:send" if attempt == 0 else "window:retransmit",
                self.node.sim.now(),
                track=self._track,
                cat="ncp",
                args={
                    "kernel": kernel,
                    "kernel_id": layout.kernel_id,
                    "seq": window.seq,
                    "from": window.from_node,
                    "attempt": attempt,
                    "dst": str(dst),
                    "bytes": len(frame),
                    "last": int(window.last),
                },
            )
        if self.mtu is not None and len(frame) > self.mtu:
            from repro.ncp.fragment import fragment_frame

            pieces = fragment_frame(frame, self.mtu)
            if obs.enabled:
                obs.registry.counter(
                    "ncp.fragments", "NCP fragments, by direction",
                    ("host", "event"),
                ).labels(host=self.node.name, event="sent").inc(len(pieces))
            if int_cfg is not None:
                # Fragment first, then arm: every fragment travels alone,
                # so every fragment collects its own per-hop stack.
                from repro.obs.int import attach_tail

                pieces = [attach_tail(p, attempt) for p in pieces]
            for piece in pieces:
                self.node.transmit(piece, self._node_id_of(dst))
            return
        if int_cfg is not None:
            from repro.obs.int import attach_tail

            frame = attach_tail(frame, attempt)
        self.node.transmit(frame, self._node_id_of(dst))

    # -- incoming path ------------------------------------------------------------------

    def register_in(
        self,
        in_kernel: str,
        ext_args: Sequence = (),
        on_window: Optional[WindowHandler] = None,
    ) -> None:
        """Arm an incoming kernel (``ncl::in``). ``ext_args`` bind the
        kernel's ``_ext_`` parameters: pass mutable sequences (lists,
        numpy arrays) for pointers."""
        info = self.program.unit.in_kernels.get(in_kernel)
        if info is None:
            raise RuntimeApiError(f"{in_kernel!r} is not an incoming kernel")
        paired = self.program.unit.paired_out_kernel(in_kernel)
        if paired is None:
            raise RuntimeApiError(f"{in_kernel!r} has no paired outgoing kernel")
        if len(ext_args) != len(info.ext_params):
            raise RuntimeApiError(
                f"{in_kernel!r} takes {len(info.ext_params)} _ext_ arguments, "
                f"got {len(ext_args)}"
            )
        fn = self.program.ref_module.functions[in_kernel]
        self._in_regs[paired.name] = _InRegistration(fn, list(ext_args), on_window)

    def on_raw_window(self, out_kernel: str, handler: WindowHandler) -> None:
        """Receive raw windows of an outgoing kernel (application roles
        that are not simple receivers -- e.g. a storage server)."""
        if out_kernel not in self.program.layouts:
            raise RuntimeApiError(f"{out_kernel!r} is not a compiled kernel")
        self._raw_handlers[out_kernel] = handler

    def _on_frame_obj(self, frame) -> None:
        """Frame-object delivery (bound to ``node.frame_receiver``):
        reuses the header metadata cached while the packet crossed the
        fabric instead of re-peeking the bytes."""
        self._on_frame(frame.data, _meta=frame.meta)

    def _on_frame(self, data: bytes, _meta=None) -> None:
        from repro.ncp.fragment import is_fragment
        from repro.obs.int import carries_int

        obs = self._obs
        if carries_int(data):
            data = self._strip_int(obs, data, meta=_meta)
        if is_fragment(data):
            try:
                complete = self._reassembler.feed(data)
            except Exception:
                self.node.stats.drops += 1
                self._trace_decode_drop(obs, "reassembly", len(data))
                return
            if complete is None:
                return
            if obs.enabled:
                obs.registry.counter(
                    "ncp.fragments", "NCP fragments, by direction",
                    ("host", "event"),
                ).labels(host=self.node.name, event="reassembled").inc()
            data = complete
        try:
            frame = decode_frame(data, self.layout_by_id)
        except Exception:
            self.node.stats.drops += 1
            self._trace_decode_drop(obs, "decode", len(data))
            return
        self.windows_received += 1
        kernel_name = self.program.kernel_by_id[frame.kernel_id]
        # A window of this (kernel, seq) made it back: the exchange is
        # complete, so drop its retransmission-attempt entry. Without
        # this the table grows one entry per retransmitted window for
        # the lifetime of the host.
        if self._retx_attempts.pop((kernel_name, frame.seq), None) is not None:
            if obs.enabled:
                self._retx_gauge(obs)
        if obs.enabled:
            self._window_count(obs, "recv", kernel_name)
            obs.tracer.instant(
                "window:recv",
                self.node.sim.now(),
                track=self._track,
                cat="ncp",
                args={
                    "kernel": kernel_name,
                    "kernel_id": frame.kernel_id,
                    "seq": frame.seq,
                    "from": frame.from_node,
                    "last": int(frame.last),
                },
            )
        window = Window(
            frame.seq,
            frame.chunks,
            ext=frame.ext,
            last=frame.last,
            from_node=frame.from_node,
        )
        raw = self._raw_handlers.get(kernel_name)
        if raw is not None:
            raw(window, self)
            return
        reg = self._in_regs.get(kernel_name)
        if reg is not None:
            self._run_in_kernel(reg, kernel_name, window)
            return
        self.inbox.setdefault(kernel_name, []).append(window)

    def _strip_int(self, obs, data: bytes, meta=None) -> bytes:
        """Strip the INT trailer at delivery: emit the per-hop stack as
        an ``int:stack`` trace event (the lineage index's raw material)
        and fold it into the registry."""
        from repro.ncp.fragment import FRAG_FIELDS, FRAG_KERNEL_BIT
        from repro.ncp.wire import (
            ETH_FIELDS, IPV4_FIELDS, NCP_FIELDS, UDP_FIELDS, peek_frame,
        )
        from repro.obs.int import (
            record_stack_metrics, stack_event_args, strip_stack,
        )
        from repro.util.bits import unpack_fields

        bare, stack = strip_stack(data)
        if stack is None or not obs.enabled:
            return bare
        # The INT trailer sits after the payload, so the header peek of
        # the bare frame equals the one cached on the in-flight Frame.
        if meta is None:
            meta = peek_frame(bare)
        if meta is None:
            return bare
        frag = None
        kernel_id = meta["kernel"]
        if kernel_id & FRAG_KERNEL_BIT:
            kernel_id &= ~FRAG_KERNEL_BIT
            rest = bare
            for layout in (ETH_FIELDS, IPV4_FIELDS, UDP_FIELDS, NCP_FIELDS):
                _, rest = unpack_fields(layout, rest)
            fragh, _ = unpack_fields(FRAG_FIELDS, rest)
            frag = fragh["index"]
        now = self.node.sim.now()
        obs.tracer.instant(
            "int:stack", now, track=self._track, cat="int",
            args=stack_event_args(
                stack, kernel_id, meta["seq"], meta["from"],
                outcome="delivered", frag=frag, node_names=self._node_labels,
            ),
        )
        record_stack_metrics(obs.registry, self.node.name, stack, now)
        return bare

    def _run_in_kernel(self, reg: _InRegistration, out_kernel: str, window: Window) -> None:
        out_info = self.program.unit.out_kernels[out_kernel]
        args: List = []
        for param, chunk in zip(out_info.data_params, window.chunks):
            if isinstance(param.ty, PointerType):
                args.append(chunk)
            else:
                args.append(chunk[0])
        args.extend(reg.ext_args)
        ctx = WindowContext(window.meta(), args, location_id=self.node_id)
        obs = self._obs
        if obs.enabled:
            obs.tracer.instant(
                "kernel:run",
                self.node.sim.now(),
                track=self._track,
                cat="ncp",
                args={"kernel": reg.kernel.name, "seq": window.seq},
            )
        self._interp.run(reg.kernel, ctx)
        reg.windows_received += 1
        if reg.on_window is not None:
            reg.on_window(window, self)

    def _trace_decode_drop(self, obs, cause: str, nbytes: int) -> None:
        if obs.enabled:
            obs.tracer.instant(
                "drop",
                self.node.sim.now(),
                track=self._track,
                cat="ncp",
                args={"cause": cause, "bytes": nbytes},
            )

    def received_count(self, in_kernel: str) -> int:
        paired = self.program.unit.paired_out_kernel(in_kernel)
        if paired is None:
            return 0
        reg = self._in_regs.get(paired.name)
        return reg.windows_received if reg else 0
