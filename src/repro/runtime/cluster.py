"""Deployment: turn a compiled program + AND into a running cluster.

The paper assumes a deployment mechanism "that maps the overlay network
of the AND file into a physical network and allocates network resources
accordingly ... places application components to physical devices and
ensures connectivity by populating routing tables appropriately" (S3.2).
:class:`Cluster` is that mechanism for the simulator:

* :meth:`Cluster.from_program` deploys 1:1 -- the AND *is* the physical
  topology (each overlay node becomes a simulated device);
* :meth:`Cluster.deploy_mapped` maps the overlay onto an existing
  physical :class:`Network` via :func:`repro.andspec.map_overlay` and
  loads switch programs onto the chosen physical switches.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import MappingError, SimulationError
from repro.andspec.mapping import Mapping, map_overlay
from repro.nclc.driver import CompiledProgram
from repro.net.network import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Network
from repro.net.node import HostNode
from repro.net.pisanode import PisaSwitchNode
from repro.pisa.switch_dev import PisaSwitch
from repro.runtime.controller import Controller
from repro.runtime.host_rt import NclHost


class Cluster:
    def __init__(
        self,
        program: CompiledProgram,
        network: Network,
        hosts: Dict[str, NclHost],
        switches: Dict[str, PisaSwitchNode],
        controller: Controller,
        mapping: Optional[Mapping] = None,
    ):
        self.program = program
        self.network = network
        self.hosts = hosts
        self.switches = switches
        self.controller = controller
        self.mapping = mapping

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_program(
        cls,
        program: CompiledProgram,
        bandwidth: float = DEFAULT_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        loss: float = 0.0,
        ctrl_delay: float = 0.0,
        obs=None,
    ) -> "Cluster":
        """1:1 deployment: every AND node becomes a simulated device.

        ``obs`` (an :class:`repro.obs.Observability`) enables tracing
        and metrics collection for the whole deployment.
        """
        net = Network(obs=obs)
        spec = program.and_spec
        switches: Dict[str, PisaSwitchNode] = {}
        hosts: Dict[str, NclHost] = {}
        for node in spec.nodes.values():
            if node.is_host:
                net.add_host(node.label, node_id=node.node_id)
            else:
                p4 = program.switch_programs[node.label]
                switches[node.label] = net.add_pisa_switch(
                    node.label, PisaSwitch(p4, node.label), node_id=node.node_id
                )
        for seed, (a, b) in enumerate(spec.edges):
            net.add_link(a, b, latency=latency, bandwidth=bandwidth, loss=loss, seed=seed)
        net.compute_routes()
        controller = Controller(program, switches, net.sim, delay=ctrl_delay)
        for node in spec.hosts:
            hosts[node.label] = NclHost(net.host(node.label), program)
        return cls(program, net, hosts, switches, controller)

    @classmethod
    def deploy_mapped(
        cls,
        program: CompiledProgram,
        network: Network,
        host_pin: Optional[Dict[str, str]] = None,
        ctrl_delay: float = 0.0,
    ) -> "Cluster":
        """Map the AND overlay onto an existing physical network.

        Physical switches chosen by the mapper must currently be
        "empty" slots: pass a network whose switches are built with
        ``add_pisa_switch`` placeholders or use 1:1 deployment. To keep
        the mapped path simple, this variant requires physical switch
        nodes to be :class:`PisaSwitchNode`s and replaces their programs.
        """
        mapping = map_overlay(program.and_spec, network.to_physical(), host_pin)
        switches: Dict[str, PisaSwitchNode] = {}
        hosts: Dict[str, NclHost] = {}
        for overlay_label, phys_name in mapping.placement.items():
            and_node = program.and_spec.node(overlay_label)
            node = network.nodes[phys_name]
            if and_node.is_switch:
                if not isinstance(node, PisaSwitchNode):
                    raise MappingError(
                        f"physical node {phys_name!r} cannot host a PISA program"
                    )
                node.switch = PisaSwitch(
                    program.switch_programs[overlay_label], overlay_label
                )
                switches[overlay_label] = node
            else:
                if not isinstance(node, HostNode):
                    raise MappingError(f"{phys_name!r} is not a physical host")
        # AND node ids must be routable: alias them onto physical routes.
        network.compute_routes()
        for overlay_label, phys_name in mapping.placement.items():
            and_node = program.and_spec.node(overlay_label)
            phys_node = network.nodes[phys_name]
            if and_node.node_id == phys_node.node_id:
                continue
            for node in network.nodes.values():
                if phys_node.node_id in node.routes:
                    node.routes[and_node.node_id] = node.routes[phys_node.node_id]
                if isinstance(node, PisaSwitchNode):
                    port = node.routes.get(and_node.node_id)
                    if port is not None:
                        node.install_route(and_node.node_id, port)
        controller = Controller(program, switches, network.sim, delay=ctrl_delay)
        for and_node in program.and_spec.hosts:
            phys = network.host(mapping.placement[and_node.label])
            # NCP frames carry AND ids; the runtime speaks with its
            # overlay identity, not the physical one.
            hosts[and_node.label] = NclHost(phys, program, and_node_id=and_node.node_id)
        return cls(program, network, hosts, switches, controller, mapping)

    # -- convenience -------------------------------------------------------------

    @property
    def sim(self):
        return self.network.sim

    def host(self, label: str) -> NclHost:
        if label not in self.hosts:
            raise SimulationError(f"no deployed host {label!r}")
        return self.hosts[label]

    def run(self, until: Optional[float] = None) -> float:
        return self.network.run(until)

    def now(self) -> float:
        return self.sim.now()
