"""The content-addressed artifact cache (repro.nclc.cache)."""

import time

import pytest

from repro.nclc import Compiler, WindowConfig
from repro.nclc.cache import ArtifactCache
from repro.obs import CompileTrace, MetricsRegistry

from tests.conftest import (
    ALLREDUCE_DEFINES,
    ALLREDUCE_SRC,
    KVS_DEFINES,
    KVS_SRC,
    STAR_AND,
)

ALLREDUCE_KW = dict(
    and_text=STAR_AND,
    windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
    defines=ALLREDUCE_DEFINES,
)


def compile_allreduce(cache=None, opt_level=2, source=ALLREDUCE_SRC):
    return Compiler(opt_level=opt_level, cache=cache).compile(source, **ALLREDUCE_KW)


class TestHitMiss:
    def test_first_compile_misses_then_hits(self):
        cache = ArtifactCache()
        compile_allreduce(cache)
        assert cache.stats.as_dict() == {"hits": 0, "misses": 1, "puts": 1}
        compile_allreduce(cache)
        assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "puts": 1}

    def test_hit_returns_equivalent_program(self):
        cache = ArtifactCache()
        cold = compile_allreduce(cache)
        warm = compile_allreduce(cache)
        assert warm.to_json() == cold.to_json()
        assert warm.opt_level == cold.opt_level
        assert warm.kernel_ids == cold.kernel_ids
        assert sorted(warm.switch_programs) == sorted(cold.switch_programs)

    def test_disk_cache_survives_new_instance(self, tmp_path):
        compile_allreduce(ArtifactCache(root=tmp_path))
        # a fresh cache object (fresh process, conceptually) hits the disk
        cache = ArtifactCache(root=tmp_path)
        compile_allreduce(cache)
        assert cache.stats.hits == 1 and cache.stats.misses == 0
        shards = list(tmp_path.glob("*/*.nclc.json"))
        assert len(shards) == 1

    def test_clear_drops_memory_but_not_disk(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        compile_allreduce(cache)
        cache.clear()
        compile_allreduce(cache)
        assert cache.stats.hits == 1  # re-read from disk

    def test_metrics_and_trace_record_events(self):
        registry = MetricsRegistry()
        cache = ArtifactCache(registry=registry)
        fake = iter(range(1000))
        trace = CompileTrace(clock=lambda: next(fake) * 1e-3)
        Compiler(cache=cache).compile(ALLREDUCE_SRC, trace=trace, **ALLREDUCE_KW)
        Compiler(cache=cache).compile(ALLREDUCE_SRC, trace=trace, **ALLREDUCE_KW)
        snap = registry.snapshot()["nclc.cache"]["series"]
        events = {tuple(s["labels"].items()): s["value"] for s in snap}
        assert events[(("event", "miss"),)] == 1
        assert events[(("event", "hit"),)] == 1
        assert [e["event"] for e in trace.cache_events] == ["miss", "hit"]
        assert "artifact cache: hit" in trace.format_table()


class TestKeying:
    def test_byte_identical_artifact_across_identical_runs(self):
        a = compile_allreduce().to_json()
        b = compile_allreduce().to_json()
        assert a == b

    def test_key_is_stable_for_identical_inputs(self):
        cache = ArtifactCache()
        kw = dict(
            source=ALLREDUCE_SRC,
            and_text=STAR_AND,
            windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            defines=ALLREDUCE_DEFINES,
        )
        assert cache.key_for(**kw) == cache.key_for(**kw)

    def test_source_change_invalidates(self):
        cache = ArtifactCache()
        base = cache.key_for(source=ALLREDUCE_SRC)
        assert cache.key_for(source=ALLREDUCE_SRC + "\n// tweak") != base

    def test_opt_level_invalidates(self):
        cache = ArtifactCache()
        assert cache.key_for(source=ALLREDUCE_SRC, opt_level=0) != cache.key_for(
            source=ALLREDUCE_SRC, opt_level=2
        )

    def test_compiler_version_invalidates(self, monkeypatch):
        from repro.nclc import pm

        cache = ArtifactCache()
        before = cache.key_for(source=ALLREDUCE_SRC)
        monkeypatch.setattr(pm, "NCLC_VERSION", pm.NCLC_VERSION + "-next")
        assert cache.key_for(source=ALLREDUCE_SRC) != before

    def test_windows_defines_profile_invalidate(self):
        cache = ArtifactCache()
        base = cache.key_for(source=KVS_SRC, defines=KVS_DEFINES)
        assert cache.key_for(source=KVS_SRC, defines={**KVS_DEFINES, "VAL_WORDS": 8}) != base
        assert (
            cache.key_for(
                source=KVS_SRC,
                defines=KVS_DEFINES,
                windows={"query": WindowConfig(mask=(1, 4, 1))},
            )
            != base
        )
        assert cache.key_for(source=KVS_SRC, defines=KVS_DEFINES, profile="tofino-like") != base

    def test_different_opt_levels_do_not_collide_in_cache(self):
        cache = ArtifactCache()
        p2 = compile_allreduce(cache, opt_level=2)
        p0 = compile_allreduce(cache, opt_level=0)
        assert cache.stats.misses == 2 and cache.stats.hits == 0
        assert p0.opt_level == 0 and p2.opt_level == 2


class TestWarmSpeed:
    def test_warm_recompile_at_least_5x_faster_than_cold(self):
        """The acceptance bar: a cache hit must beat the full pipeline
        by >=5x. Take the best of three on both sides to keep the wall
        clock honest under CI noise (observed gap is >10x)."""

        def best_of(n, fn):
            best = float("inf")
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - t0)
            return best

        cold = best_of(3, lambda: compile_allreduce())
        cache = ArtifactCache()
        compile_allreduce(cache)  # prime
        warm = best_of(3, lambda: compile_allreduce(cache))
        assert warm * 5 <= cold, f"warm {warm * 1e3:.2f}ms vs cold {cold * 1e3:.2f}ms"
