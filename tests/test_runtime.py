"""libncrt: host runtime, controller, cluster deployment."""

import pytest

from repro.errors import RuntimeApiError
from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster

from tests.conftest import (
    ALLREDUCE_DEFINES,
    ALLREDUCE_SRC,
    KVS_AND,
    KVS_DEFINES,
    KVS_SRC,
    STAR_AND,
)


@pytest.fixture(scope="module")
def deployed():
    program = Compiler().compile(
        ALLREDUCE_SRC,
        and_text=STAR_AND,
        windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
        defines=ALLREDUCE_DEFINES,
    )
    return program


def fresh_cluster(program):
    cluster = Cluster.from_program(program)
    cluster.controller.ctrl_wr("nworkers", 2)
    return cluster


class TestCluster:
    def test_deploys_all_and_nodes(self, deployed):
        cluster = fresh_cluster(deployed)
        assert set(cluster.hosts) == {"w0", "w1"}
        assert set(cluster.switches) == {"s1"}

    def test_node_ids_match_and(self, deployed):
        cluster = fresh_cluster(deployed)
        assert cluster.host("w0").node_id == deployed.and_spec.node("w0").node_id

    def test_unknown_host_raises(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(Exception):
            cluster.host("nope")


class TestController:
    def test_ctrl_wr_reaches_register(self, deployed):
        cluster = fresh_cluster(deployed)
        cluster.controller.ctrl_wr("nworkers", 7)
        assert cluster.controller.ctrl_rd("nworkers") == 7

    def test_ctrl_wr_unknown_var(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(RuntimeApiError):
            cluster.controller.ctrl_wr("bogus", 1)

    def test_register_dump(self, deployed):
        cluster = fresh_cluster(deployed)
        dump = cluster.controller.register_dump("accum")
        assert dump == [0] * ALLREDUCE_DEFINES["DATA_LEN"]

    def test_delayed_ctrl_write(self, deployed):
        cluster = Cluster.from_program(deployed, ctrl_delay=1e-3)
        cluster.controller.ctrl_wr("nworkers", 9)
        assert cluster.controller.ctrl_rd("nworkers") == 0  # not yet applied
        cluster.run()
        assert cluster.controller.ctrl_rd("nworkers") == 9

    def test_map_ops(self):
        program = Compiler().compile(
            KVS_SRC,
            and_text=KVS_AND,
            windows={"query": WindowConfig(mask=(1, 4, 1))},
            defines=KVS_DEFINES,
        )
        cluster = Cluster.from_program(program)
        cluster.controller.map_insert("Idx", 5, 2)
        assert cluster.controller.map_entries("Idx") == {5: 2}
        cluster.controller.map_insert("Idx", 5, 3)  # replace
        assert cluster.controller.map_entries("Idx") == {5: 3}
        cluster.controller.map_erase("Idx", 5)
        assert cluster.controller.map_entries("Idx") == {}


class TestHostApi:
    def test_out_window_count(self, deployed):
        cluster = fresh_cluster(deployed)
        host = cluster.host("w0")
        n = host.out("allreduce", [list(range(64))])
        assert n == 16  # 64 elems / window of 4

    def test_mask_mismatch_rejected(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(Exception):
            cluster.host("w0").out("allreduce", [list(range(10))])  # not /4

    def test_unknown_kernel_rejected(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(RuntimeApiError):
            cluster.host("w0").out("nope", [[1]])

    def test_ext_override_must_match_compiled(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(RuntimeApiError, match="specialized"):
            cluster.host("w0").out("allreduce", [[1, 2, 3, 4]], ext={"len": 8})

    def test_register_in_validates_kernel(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(RuntimeApiError):
            cluster.host("w0").register_in("allreduce")  # that's an out kernel

    def test_register_in_ext_arity(self, deployed):
        cluster = fresh_cluster(deployed)
        with pytest.raises(RuntimeApiError, match="_ext_"):
            cluster.host("w0").register_in("result", [[0] * 64])  # needs 2

    def test_inbox_when_no_handler(self, deployed):
        cluster = fresh_cluster(deployed)
        cluster.controller.ctrl_wr("nworkers", 1)  # every window broadcasts
        cluster.host("w0").out("allreduce", [[1, 2, 3, 4]])
        cluster.run()
        # both workers got the result window into their inbox
        assert len(cluster.host("w1").inbox.get("allreduce", [])) == 1

    def test_on_window_callback_fires(self, deployed):
        cluster = fresh_cluster(deployed)
        cluster.controller.ctrl_wr("nworkers", 1)
        seen = []
        out = [0] * 64
        done = [0]
        cluster.host("w1").register_in(
            "result", [out, done], on_window=lambda w, h: seen.append(w.seq)
        )
        cluster.host("w0").out("allreduce", [list(range(4))])
        cluster.run()
        assert seen == [0]

    def test_out_window_fine_grained(self, deployed):
        cluster = fresh_cluster(deployed)
        cluster.controller.ctrl_wr("nworkers", 1)
        got = []
        cluster.host("w1").on_raw_window("allreduce", lambda w, h: got.append(w.chunks))
        cluster.host("w0").out_window("allreduce", seq=2, chunks=[[9, 9, 9, 9]], dst="s1")
        cluster.run()
        assert got == [[[9, 9, 9, 9]]]
        # seq 2 accumulated at slot 2 (elements 8..11)
        assert cluster.controller.register_dump("accum")[8:12] == [9, 9, 9, 9]


class TestLossyDeploy:
    def test_loss_surfaces_as_incomplete(self, deployed):
        from repro.apps.allreduce import AllReduceJob

        job = AllReduceJob(2, 32, 4, loss=1.0)
        with pytest.raises(RuntimeApiError, match="did not complete"):
            job.run_round([[1] * 32, [2] * 32])
