"""Discrete-event network simulator."""

import pytest

from repro.errors import SimulationError
from repro.net import Network, Simulator
from repro.net.node import HostNode


class TestSimulator:
    def test_time_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now()))
        sim.schedule(1.0, lambda: seen.append(sim.now()))
        sim.run()
        assert seen == [1.0, 2.0]

    def test_fifo_for_simultaneous_events(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(5.0, lambda: seen.append(5))
        sim.run(until=2.0)
        assert seen == [1]
        assert sim.now() == 2.0
        sim.run()
        assert seen == [1, 5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append("outer")
            sim.schedule(1.0, lambda: seen.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == ["outer", "inner"]
        assert sim.now() == 2.0


def two_hosts(bandwidth=1e9, latency=1e-6, loss=0.0):
    net = Network()
    a = net.add_host("a")
    b = net.add_host("b")
    net.add_link("a", "b", latency=latency, bandwidth=bandwidth, loss=loss, seed=1)
    net.compute_routes()
    return net, a, b


class TestLinks:
    def test_delivery_and_timing(self):
        net, a, b = two_hosts(bandwidth=8e6, latency=1e-3)  # 1 byte/us
        got = []
        b.receiver = lambda data: got.append((net.sim.now(), data))
        a.transmit(b"x" * 1000, b.node_id)
        net.run()
        assert len(got) == 1
        # serialization 1000B at 1B/us = 1ms, + 1ms latency + host delay
        t, data = got[0]
        assert data == b"x" * 1000
        assert t == pytest.approx(2e-3 + HostNode.PROCESS_DELAY, rel=1e-6)

    def test_serialization_queueing(self):
        net, a, b = two_hosts(bandwidth=8e6, latency=0.0)
        times = []
        b.receiver = lambda data: times.append(net.sim.now())
        for _ in range(3):
            a.transmit(b"y" * 1000, b.node_id)
        net.run()
        # back-to-back: arrivals 1ms apart
        assert times[1] - times[0] == pytest.approx(1e-3, rel=1e-6)
        assert times[2] - times[1] == pytest.approx(1e-3, rel=1e-6)

    def test_loss(self):
        net, a, b = two_hosts(loss=1.0)
        got = []
        b.receiver = lambda data: got.append(data)
        a.transmit(b"z", b.node_id)
        net.run()
        assert got == []
        assert net.links[0].stats.drops == 1

    def test_stats_accumulate(self):
        net, a, b = two_hosts()
        b.receiver = lambda data: None
        a.transmit(b"abc", b.node_id)
        net.run()
        assert a.stats.tx_bytes == 3
        assert b.stats.rx_bytes == 3
        assert net.total_bytes_on_links() == 3

    def test_unbound_receiver_counts_drop(self):
        net, a, b = two_hosts()
        a.transmit(b"abc", b.node_id)
        net.run()
        assert b.stats.drops == 1


class TestTopology:
    def test_multihop_routing(self):
        net = Network()
        net.add_host("a")
        net.add_python_switch("s1", lambda d, p, n: [(n.routes.get(0, 0), d)])
        net.add_host("b")
        net.add_link("a", "s1")
        net.add_link("s1", "b")
        net.compute_routes()
        a = net.host("a")
        b = net.host("b")
        # route from a toward b goes through s1
        assert a.routes[b.node_id] == 0

    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(SimulationError, match="duplicate"):
            net.add_host("a")

    def test_link_endpoints_must_exist(self):
        net = Network()
        net.add_host("a")
        with pytest.raises(SimulationError):
            net.add_link("a", "ghost")

    def test_node_by_id(self):
        net = Network()
        h = net.add_host("a", node_id=7)
        assert net.node_by_id(7) is h
        with pytest.raises(SimulationError):
            net.node_by_id(9)

    def test_to_physical_kinds(self):
        net = Network()
        net.add_host("h")
        net.add_python_switch("s", lambda d, p, n: [])
        net.add_link("h", "s")
        phys = net.to_physical()
        assert phys.hosts() == ["h"] and phys.switches() == ["s"]


class TestPythonSwitch:
    def test_program_output_ports(self):
        net = Network()
        a = net.add_host("a")
        net.add_host("b")
        net.add_host("c")

        def flood(data, in_port, node):
            return [(-1, data)]  # everything except ingress

        net.add_python_switch("s", flood)
        for h in ("a", "b", "c"):
            net.add_link(h, "s")
        net.compute_routes()
        got = {"b": [], "c": [], "a": []}
        for name in got:
            net.host(name).receiver = lambda d, n=name: got[n].append(d)
        a.send(b"hello", 0)
        net.run()
        assert got["b"] == [b"hello"] and got["c"] == [b"hello"]
        assert got["a"] == []
