"""NCP: wire codec and window machinery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NcpError
from repro.ncl.types import PointerType, U8, U32, U64
from repro.ncp.window import Window, Windower
from repro.ncp.wire import (
    ChunkLayout,
    KernelLayout,
    decode_frame,
    encode_frame,
    is_ncp_frame,
    layout_for_kernel,
    node_ip,
)


def simple_layout(count=4, bits=32, signed=True, ext=()):
    return KernelLayout(
        7, "k", [ChunkLayout("data", count, bits, signed)], ext_fields=list(ext)
    )


class TestLayouts:
    def test_layout_from_kernel_types(self):
        layout = layout_for_kernel(
            1,
            "query",
            [("key", U64), ("val", PointerType(U32)), ("update", U8)],
            mask=(1, 8, 1),
        )
        assert [c.count for c in layout.chunks] == [1, 8, 1]
        assert [c.bits for c in layout.chunks] == [64, 32, 8]
        assert layout.data_bytes == 8 + 32 + 1

    def test_scalar_param_mask_must_be_one(self):
        with pytest.raises(NcpError, match="mask entry 1"):
            layout_for_kernel(1, "k", [("key", U64)], mask=(2,))

    def test_mask_length_mismatch(self):
        with pytest.raises(NcpError, match="mask length"):
            layout_for_kernel(1, "k", [("key", U64)], mask=(1, 1))

    def test_payload_field_layout_names(self):
        layout = simple_layout(2, ext=[("len", 32, False)])
        names = [n for n, _ in layout.payload_field_layout()]
        assert names == ["x_len", "d0_0", "d0_1"]


class TestFrameCodec:
    def test_roundtrip_basic(self):
        layout = simple_layout()
        frame = encode_frame(layout, 1, 2, seq=5, chunks=[[10, -20, 30, -40]])
        decoded = decode_frame(frame, {7: layout})
        assert decoded.seq == 5
        assert decoded.from_node == 1
        assert decoded.dst_node == 2
        assert decoded.chunks == [[10, -20, 30, -40]]
        assert not decoded.last

    def test_last_flag(self):
        layout = simple_layout(1)
        frame = encode_frame(layout, 0, 1, seq=0, chunks=[[1]], last=True)
        assert decode_frame(frame, {7: layout}).last

    def test_ext_fields_roundtrip(self):
        layout = simple_layout(1, ext=[("len", 32, False), ("tag", 16, False)])
        frame = encode_frame(
            layout, 0, 1, seq=0, chunks=[[1]], ext_values={"len": 9, "tag": 700}
        )
        decoded = decode_frame(frame, {7: layout})
        assert decoded.ext == {"len": 9, "tag": 700}

    def test_missing_ext_raises(self):
        layout = simple_layout(1, ext=[("len", 32, False)])
        with pytest.raises(NcpError, match="missing window extension"):
            encode_frame(layout, 0, 1, seq=0, chunks=[[1]])

    def test_wrong_chunk_count(self):
        with pytest.raises(NcpError, match="chunks"):
            encode_frame(simple_layout(), 0, 1, seq=0, chunks=[])

    def test_wrong_element_count(self):
        with pytest.raises(NcpError, match="elements"):
            encode_frame(simple_layout(4), 0, 1, seq=0, chunks=[[1, 2]])

    def test_unknown_kernel_id(self):
        layout = simple_layout(1)
        frame = encode_frame(layout, 0, 1, seq=0, chunks=[[1]])
        with pytest.raises(NcpError, match="unknown kernel"):
            decode_frame(frame, {})

    def test_is_ncp_frame(self):
        layout = simple_layout(1)
        frame = encode_frame(layout, 0, 1, seq=0, chunks=[[1]])
        assert is_ncp_frame(frame)
        assert not is_ncp_frame(b"\x00" * 64)
        assert not is_ncp_frame(b"")

    def test_explicit_from_node(self):
        layout = simple_layout(1)
        frame = encode_frame(layout, 3, 1, seq=0, chunks=[[1]], from_node=9)
        assert decode_frame(frame, {7: layout}).from_node == 9

    def test_node_ip_shape(self):
        assert node_ip(0) == (10 << 24)
        assert node_ip(5) - node_ip(0) == 5

    @given(
        st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=16),
        st.integers(0, 2**32 - 1),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, values, seq, last):
        layout = simple_layout(len(values))
        frame = encode_frame(layout, 1, 2, seq=seq, chunks=[values], last=last)
        decoded = decode_frame(frame, {7: layout})
        assert decoded.chunks == [values]
        assert decoded.seq == seq and decoded.last == last

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_u8_chunks(self, values):
        layout = KernelLayout(9, "b", [ChunkLayout("v", len(values), 8, False)])
        frame = encode_frame(layout, 0, 1, seq=0, chunks=[values])
        assert decode_frame(frame, {9: layout}).chunks == [values]


class TestWindower:
    def test_split_mask_2_2(self):
        w = Windower((2, 2))
        windows = list(w.split([[1, 2, 3, 4], [10, 20, 30, 40]]))
        assert len(windows) == 2
        assert windows[0].chunks == [[1, 2], [10, 20]]
        assert windows[1].chunks == [[3, 4], [30, 40]]
        assert windows[1].last and not windows[0].last

    def test_asymmetric_mask(self):
        w = Windower((1, 3))
        windows = list(w.split([[1, 2], [10, 20, 30, 40, 50, 60]]))
        assert len(windows) == 2
        assert windows[0].chunks == [[1], [10, 20, 30]]

    def test_unaligned_array_rejected(self):
        with pytest.raises(NcpError, match="not divisible"):
            Windower((4,)).window_count([[1, 2, 3]])

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(NcpError, match="differing window counts"):
            Windower((2, 2)).window_count([[1, 2], [1, 2, 3, 4]])

    def test_bad_masks(self):
        with pytest.raises(NcpError):
            Windower(())
        with pytest.raises(NcpError):
            Windower((0,))

    def test_scatter_reassembles(self):
        w = Windower((3,))
        array = list(range(12))
        windows = list(w.split([array]))
        rebuilt = w.reassemble(windows, [12])
        assert rebuilt == [array]

    def test_scatter_out_of_order(self):
        w = Windower((2,))
        array = [5, 6, 7, 8]
        windows = list(w.split([array]))
        rebuilt = w.reassemble(list(reversed(windows)), [4])
        assert rebuilt == [array]

    def test_window_meta(self):
        win = Window(3, [[1]], ext={"len": 1}, last=True, from_node=9)
        assert win.meta() == {"seq": 3, "from": 9, "last": 1, "len": 1}

    @given(
        st.integers(1, 6),
        st.integers(1, 5),
        st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_split_partitions_exactly(self, mask_entry, n_windows, n_arrays):
        """No element lost, duplicated, or reordered -- for any geometry."""
        w = Windower((mask_entry,) * n_arrays)
        arrays = [
            [a * 1000 + i for i in range(mask_entry * n_windows)]
            for a in range(n_arrays)
        ]
        windows = list(w.split(arrays))
        assert len(windows) == n_windows
        rebuilt = w.reassemble(windows, [len(a) for a in arrays])
        assert rebuilt == arrays
