"""PISA simulator: parser/deparser bit accuracy, pipeline, tables, registers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PisaError
from repro.p4.model import (
    Action,
    Apply,
    Do,
    HeaderType,
    IfNode,
    P4Program,
    ParseState,
    PAssign,
    PBin,
    PConst,
    PField,
    PParam,
    PRegRead,
    PRegWrite,
    PUn,
    RegisterArray,
    Table,
    TableEntry,
)
from repro.pisa.parser import Deparser, PacketParser
from repro.pisa.phv import Phv
from repro.pisa.pipeline import Pipeline, RegisterState
from repro.pisa.switch_dev import PisaSwitch


def tiny_program():
    p = P4Program("tiny")
    p.add_header(HeaderType("h_t", [("a", 8), ("b", 16), ("c", 8)]), "h")
    p.parser = [ParseState("start", ["h"])]
    p.deparser = ["h"]
    return p


class TestParserDeparser:
    def test_extracts_fields(self):
        p = tiny_program()
        phv = PacketParser(p).parse(b"\x01\x02\x03\x04")
        assert phv.read("h.a") == 1
        assert phv.read("h.b") == 0x0203
        assert phv.read("h.c") == 4

    def test_payload_preserved(self):
        p = tiny_program()
        phv = PacketParser(p).parse(b"\x01\x02\x03\x04extra")
        assert phv.payload_rest == b"extra"
        assert Deparser(p).deparse(phv) == b"\x01\x02\x03\x04extra"

    def test_short_packet_raises(self):
        with pytest.raises(PisaError, match="too short"):
            PacketParser(tiny_program()).parse(b"\x01")

    def test_select_transitions(self):
        p = P4Program("sel")
        p.add_header(HeaderType("a_t", [("kind", 8)]), "a")
        p.add_header(HeaderType("b_t", [("x", 8)]), "b")
        p.parser = [
            ParseState("start", ["a"], "a.kind", [(1, "parse_b")]),
            ParseState("parse_b", ["b"]),
        ]
        p.deparser = ["a", "b"]
        phv = PacketParser(p).parse(b"\x01\x42")
        assert phv.is_valid("b") and phv.read("b.x") == 0x42
        phv2 = PacketParser(p).parse(b"\x02\x42")
        assert not phv2.is_valid("b")
        assert phv2.payload_rest == b"\x42"

    def test_no_parser_means_opaque_payload(self):
        p = P4Program("none")
        phv = PacketParser(p).parse(b"anything")
        assert phv.payload_rest == b"anything"

    @given(st.binary(min_size=4, max_size=32))
    @settings(max_examples=30, deadline=None)
    def test_parse_deparse_identity(self, data):
        p = tiny_program()
        phv = PacketParser(p).parse(data)
        assert Deparser(p).deparse(phv) == data

    def test_sub_byte_fields(self):
        p = P4Program("nib")
        p.add_header(HeaderType("n_t", [("hi", 4), ("lo", 4)]), "n")
        p.parser = [ParseState("start", ["n"])]
        p.deparser = ["n"]
        phv = PacketParser(p).parse(b"\xab")
        assert phv.read("n.hi") == 0xA and phv.read("n.lo") == 0xB
        assert Deparser(p).deparse(phv) == b"\xab"


class TestPipelineExpr:
    def make(self):
        p = tiny_program()
        p.add_metadata("t", 32)
        return p, Pipeline(p)

    def eval(self, expr):
        p, pipe = self.make()
        phv = Phv(p)
        return pipe.eval_expr(expr, phv, {})

    def test_arith_wrapping(self):
        assert self.eval(PBin("add", PConst(255, 8), PConst(1, 8), 8)) == 0
        assert self.eval(PBin("sub", PConst(0, 8), PConst(1, 8), 8)) == 255

    def test_compares(self):
        assert self.eval(PBin("ult", PConst(3, 8), PConst(5, 8), 8)) == 1
        # 0xFF is -1 signed: less than 0
        assert self.eval(PBin("slt", PConst(0xFF, 8), PConst(0, 8), 8)) == 1
        assert self.eval(PBin("ugt", PConst(0xFF, 8), PConst(0, 8), 8)) == 1

    def test_shifts(self):
        assert self.eval(PBin("shl", PConst(1, 8), PConst(3, 8), 8)) == 8
        assert self.eval(PBin("ashr", PConst(0x80, 8), PConst(1, 8), 8)) == 0xC0

    def test_unary(self):
        assert self.eval(PUn("neg", PConst(1, 8), 8)) == 255
        assert self.eval(PUn("not", PConst(0, 8), 8)) == 255
        assert self.eval(PUn("lnot", PConst(0, 8), 8)) == 1

    def test_unbound_param_raises(self):
        with pytest.raises(PisaError, match="unbound"):
            self.eval(PParam("x", 8))


class TestActionsAndRegisters:
    def make(self):
        p = tiny_program()
        p.add_metadata("t", 32)
        p.add_register(RegisterArray("r", 32, 4))
        p.add_action(
            Action(
                "bump",
                [
                    PRegRead("meta.t", "r", PConst(0, 32)),
                    PAssign("meta.t", PBin("add", PField("meta.t"), PConst(1, 32), 32)),
                    PRegWrite("r", PConst(0, 32), PField("meta.t")),
                ],
            )
        )
        return p, Pipeline(p)

    def test_register_rmw(self):
        p, pipe = self.make()
        phv = Phv(p)
        for _ in range(3):
            pipe.run_action("bump", phv)
        assert pipe.registers.read("r", 0) == 3
        assert pipe.stats.register_reads == 3
        assert pipe.stats.register_writes == 3

    def test_register_bounds(self):
        p, pipe = self.make()
        with pytest.raises(PisaError, match="out of range"):
            pipe.registers.read("r", 4)

    def test_register_width_wrap(self):
        p, pipe = self.make()
        pipe.registers.write("r", 0, 2**32 + 5)
        assert pipe.registers.read("r", 0) == 5

    def test_initial_values(self):
        p = tiny_program()
        reg = RegisterArray("r", 32, 4)
        reg.initial = [7, 8]
        p.add_register(reg)
        state = RegisterState(p)
        assert state.arrays["r"] == [7, 8, 0, 0]

    def test_action_arity_check(self):
        p = tiny_program()
        p.add_action(Action("takes1", [PAssign("h.a", PParam("v", 8))], params=[("v", 8)]))
        pipe = Pipeline(p)
        phv = Phv(p)
        phv.set_valid("h")
        with pytest.raises(PisaError, match="expected 1"):
            pipe.run_action("takes1", phv)


class TestTables:
    def make(self, kind="exact"):
        p = tiny_program()
        p.add_metadata("out", 8)
        p.add_action(
            Action("set_out", [PAssign("meta.out", PParam("v", 8))], params=[("v", 8)])
        )
        p.add_action(Action("miss", [PAssign("meta.out", PConst(0xEE, 8))]))
        p.add_table(
            Table(
                "t",
                keys=[("h.a", kind)],
                actions=["set_out"],
                default_action="miss",
            )
        )
        return p, Pipeline(p)

    def phv_with_a(self, p, a):
        phv = Phv(p)
        phv.set_valid("h")
        phv.write("h.a", a)
        return phv

    def test_exact_hit_and_miss(self):
        p, pipe = self.make()
        p.tables["t"].add_entry(TableEntry([5], "set_out", [0x11]))
        phv = self.phv_with_a(p, 5)
        assert pipe.apply_table("t", phv)
        assert phv.read("meta.out") == 0x11
        phv = self.phv_with_a(p, 6)
        assert not pipe.apply_table("t", phv)
        assert phv.read("meta.out") == 0xEE

    def test_ternary_priority(self):
        p, pipe = self.make("ternary")
        p.tables["t"].add_entry(TableEntry([(0x00, 0x0F)], "set_out", [1], priority=1))
        p.tables["t"].add_entry(TableEntry([(0x00, 0x00)], "set_out", [2], priority=0))
        phv = self.phv_with_a(p, 0xF0)  # matches both (low nibble 0; wildcard)
        pipe.apply_table("t", phv)
        assert phv.read("meta.out") == 1

    def test_table_size_limit(self):
        p, _ = self.make()
        p.tables["t"].size = 1
        p.tables["t"].add_entry(TableEntry([1], "set_out", [1]))
        with pytest.raises(PisaError, match="full"):
            p.tables["t"].add_entry(TableEntry([2], "set_out", [2]))

    def test_stats_counters(self):
        p, pipe = self.make()
        p.tables["t"].add_entry(TableEntry([5], "set_out", [1]))
        pipe.apply_table("t", self.phv_with_a(p, 5))
        pipe.apply_table("t", self.phv_with_a(p, 9))
        assert pipe.stats.table_hits["t"] == 1
        assert pipe.stats.table_misses["t"] == 1


class TestControlFlow:
    def test_if_node_branches(self):
        p = tiny_program()
        p.add_metadata("r", 8)
        p.add_action(Action("yes", [PAssign("meta.r", PConst(1, 8))]))
        p.add_action(Action("no", [PAssign("meta.r", PConst(2, 8))]))
        p.control = [
            IfNode(
                PBin("ugt", PField("h.a"), PConst(10, 8), 8),
                [Do("yes")],
                [Do("no")],
            )
        ]
        pipe = Pipeline(p)
        phv = Phv(p)
        phv.set_valid("h")
        phv.write("h.a", 20)
        pipe.run(phv)
        assert phv.read("meta.r") == 1
        phv.write("h.a", 5)
        pipe.run(phv)
        assert phv.read("meta.r") == 2

    def test_validity_condition(self):
        p = tiny_program()
        p.add_metadata("r", 8)
        p.add_action(Action("seen", [PAssign("meta.r", PConst(1, 8))]))
        p.control = [IfNode(PField("valid.h"), [Do("seen")])]
        pipe = Pipeline(p)
        phv = Phv(p)  # h not valid
        pipe.run(phv)
        assert phv.read("meta.r") == 0


class TestSwitchDevice:
    def test_program_validated_on_construction(self):
        p = tiny_program()
        p.control = [Apply("nonexistent")]
        with pytest.raises(PisaError, match="unknown table"):
            PisaSwitch(p)

    def test_control_plane_table_ops(self):
        p = tiny_program()
        p.add_metadata("out", 8)
        p.add_action(
            Action("set_out", [PAssign("meta.out", PParam("v", 8))], params=[("v", 8)])
        )
        p.add_action(Action("nop", []))
        p.add_table(
            Table("t", [("h.a", "exact")], ["set_out"], "nop", managed_by="control-plane")
        )
        sw = PisaSwitch(p)
        sw.table_insert("t", [1], "set_out", [5])
        sw.table_insert("t", [1], "set_out", [6])  # replaces
        assert len(sw.table_entries("t")) == 1
        assert sw.table_entries("t")[0].args == [6]
        assert sw.table_delete("t", [1]) == 1
        assert sw.table_entries("t") == []

    def test_rejects_disallowed_action(self):
        p = tiny_program()
        p.add_action(Action("a1", []))
        p.add_action(Action("a2", []))
        p.add_table(Table("t", [("h.a", "exact")], ["a1"], "a1"))
        sw = PisaSwitch(p)
        with pytest.raises(PisaError, match="not allowed"):
            sw.table_insert("t", [1], "a2")
