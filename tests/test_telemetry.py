"""Multi-switch telemetry app: SPMD kernels, local state, pinned ctrl."""

from collections import Counter

import pytest

from repro.apps.telemetry import TelemetryCluster
from repro.apps.workloads import zipf_keys


@pytest.fixture()
def telemetry():
    return TelemetryCluster(n_senders=2, slots=64, hh_threshold=5)


class TestTelemetry:
    def test_all_windows_delivered(self, telemetry):
        telemetry.send_flows(0, [1, 2, 3, 1, 1])
        assert telemetry.total_seen() == 5
        assert telemetry.seen[1] == 3

    def test_both_switches_count_locally(self, telemetry):
        """The location-less `counts` array exists independently on each
        switch (paper S4.1: modifications are local). Both sit on the
        same path here, so the local copies agree -- but they are
        distinct register arrays on distinct devices."""
        telemetry.send_flows(0, [7] * 4)
        assert telemetry.switch_counts("s1")[7] == 4
        assert telemetry.switch_counts("s2")[7] == 4
        s1 = telemetry.cluster.switches["s1"].switch
        s2 = telemetry.cluster.switches["s2"].switch
        assert s1.registers.arrays is not s2.registers.arrays

    def test_heavy_hitter_marking(self, telemetry):
        telemetry.send_flows(0, [9] * 8 + [10] * 2)
        # slot 9 crossed the threshold (5) on windows 6..8 -> marked
        assert 9 in telemetry.heavy_hitters()
        assert 10 not in telemetry.heavy_hitters()
        assert telemetry.hh_hits[9] == 3  # windows with ingress count > 5

    def test_detection_matches_ground_truth(self):
        t = TelemetryCluster(n_senders=2, slots=64, hh_threshold=6)
        keys = zipf_keys(300, 64, 1.2, seed=11)
        half = len(keys) // 2
        t.send_flows(0, keys[:half])
        t.send_flows(1, keys[half:])
        truth = {s for s, n in Counter(k & 63 for k in keys).items() if n > 6}
        assert set(t.heavy_hitters()) == truth

    def test_threshold_is_control_plane(self, telemetry):
        telemetry.cluster.controller.ctrl_wr("hh_threshold", 1)
        telemetry.send_flows(0, [3] * 3)
        assert 3 in telemetry.heavy_hitters()

    def test_spmd_kernel_versions_differ(self, telemetry):
        """The location split produced different P4 for s1 and s2."""
        src1 = telemetry.program.switch_sources["s1"]
        src2 = telemetry.program.switch_sources["s2"]
        assert src1 != src2
        # only s2 reads the heavy-hitter threshold register
        assert "reg_hh_threshold" not in src1
        assert "reg_hh_threshold" in src2

    def test_stamps_travel_with_window(self, telemetry):
        got = []
        telemetry.collector.on_raw_window(
            "monitor", lambda w, h: got.append(list(w.chunks[1]))
        )
        telemetry.send_flows(0, [5, 5])
        # second window: ingress count 2, egress count 2, no HH mark
        assert got[1] == [2, 2, 0]
