"""The paper's use-case applications, end to end."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.allreduce import AllReduceJob
from repro.apps.dedup import DedupCluster
from repro.apps.kvs_cache import KvsCluster
from repro.apps.workloads import hot_fraction, random_arrays, value_words, zipf_keys


class TestAllReduce:
    def test_basic_correctness(self):
        job = AllReduceJob(3, 64, 8)
        arrays = random_arrays(3, 64, seed=1)
        results, elapsed = job.run_round(arrays)
        expected = AllReduceJob.expected(arrays)
        assert all(r == expected for r in results)
        assert elapsed > 0

    def test_multiple_rounds_on_one_deployment(self):
        job = AllReduceJob(2, 32, 4, multiround=True)
        for seed in range(3):
            arrays = random_arrays(2, 32, seed=seed)
            results, _ = job.run_round(arrays)
            assert results[0] == AllReduceJob.expected(arrays)

    def test_single_shot_kernel_accumulates_forever(self):
        # The paper-faithful Fig 4 kernel does NOT clear accum: a second
        # round on the same deployment double-counts. Documented behaviour.
        job = AllReduceJob(2, 16, 4, multiround=False)
        arrays = [[1] * 16, [1] * 16]
        first, _ = job.run_round(arrays)
        assert first[0] == [2] * 16
        second, _ = job.run_round(arrays)
        assert second[0] == [4] * 16  # old sums still in accum

    def test_window_len_one(self):
        job = AllReduceJob(2, 8, 1)
        arrays = random_arrays(2, 8, seed=2)
        results, _ = job.run_round(arrays)
        assert results[0] == AllReduceJob.expected(arrays)

    def test_int32_wraparound(self):
        job = AllReduceJob(2, 4, 4)
        big = 2**31 - 1
        results, _ = job.run_round([[big] * 4, [1] * 4])
        assert results[0] == [-(2**31)] * 4

    def test_bytes_scale_with_workers_not_quadratic(self):
        # Each worker link carries ~2x its array; the switch absorbs the
        # n-way aggregation. Total link bytes grow linearly in n.
        sizes = {}
        for n in (2, 4):
            job = AllReduceJob(n, 64, 8)
            job.run_round(random_arrays(n, 64, seed=0))
            sizes[n] = job.host_to_switch_bytes()
        assert sizes[4] < sizes[2] * 3  # linear-ish, not n^2

    @given(
        st.integers(min_value=2, max_value=4),
        st.sampled_from([4, 8]),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=6, deadline=None)
    def test_property_matches_reference_sum(self, n_workers, window_len, n_windows):
        data_len = window_len * n_windows
        job = AllReduceJob(n_workers, data_len, window_len)
        arrays = random_arrays(n_workers, data_len, seed=n_workers)
        results, _ = job.run_round(arrays)
        expected = AllReduceJob.expected(arrays)
        assert all(r == expected for r in results)

    def test_validation_errors(self):
        with pytest.raises(Exception):
            AllReduceJob(2, 10, 4)  # not window-aligned
        job = AllReduceJob(2, 8, 4)
        with pytest.raises(Exception):
            job.run_round([[1] * 8])  # wrong worker count


class TestKvs:
    @pytest.fixture()
    def kvs(self):
        kvs = KvsCluster(n_clients=2, cache_size=8, val_words=4, n_keys=64)
        kvs.install_hot_keys([1, 2, 3])
        return kvs

    def test_hit_served_by_cache(self, kvs):
        kvs.get(0, 1)
        kvs.run()
        record = kvs.records[-1]
        assert record.served_by_cache
        assert record.value == value_words(1, 4)

    def test_miss_served_by_server(self, kvs):
        kvs.get(0, 40)
        kvs.run()
        record = kvs.records[-1]
        assert not record.served_by_cache
        assert record.value == value_words(40, 4)

    def test_hit_latency_below_miss_latency(self, kvs):
        kvs.get(0, 1)
        kvs.get(0, 40)
        kvs.run()
        hit, miss = kvs.records[-2], kvs.records[-1]
        if not hit.served_by_cache:
            hit, miss = miss, hit
        assert hit.latency < miss.latency / 2

    def test_put_then_get_sees_new_value(self, kvs):
        new_value = value_words(777, 4)
        kvs.put(0, 2, new_value)
        kvs.run()
        kvs.get(1, 2)
        kvs.run()
        assert kvs.records[-1].value == new_value

    def test_coherence_under_mixed_workload(self, kvs):
        """The cache NEVER returns a stale value (the NetCache invariant)."""
        shadow = {k: value_words(k, 4) for k in range(64)}
        rng_keys = zipf_keys(60, 16, 1.0, seed=3)
        for i, key in enumerate(rng_keys):
            if i % 5 == 4:
                new = value_words(key * 131 + i, 4)
                shadow[key] = new
                kvs.put(0, key, new)
                kvs.run()
            else:
                kvs.get(i % 2, key)
                kvs.run()
                record = kvs.records[-1]
                assert record.value == shadow[key], (
                    f"stale read for key {key} at op {i} "
                    f"(served_by_cache={record.served_by_cache})"
                )

    def test_eviction_sends_key_back_to_server(self, kvs):
        kvs.get(0, 1)
        kvs.run()
        assert kvs.records[-1].served_by_cache
        kvs.evict(1)
        kvs.get(0, 1)
        kvs.run()
        assert not kvs.records[-1].served_by_cache
        assert kvs.records[-1].value == value_words(1, 4)

    def test_server_load_drops_with_cache(self, kvs):
        keys = zipf_keys(100, 64, 1.3, seed=5)
        kvs.run_workload(0, keys)
        served_by_cache = sum(1 for r in kvs.records if r.served_by_cache)
        assert kvs.server_ops < len(keys)
        assert served_by_cache == len(keys) - kvs.server_ops

    def test_hit_ratio_tracks_hot_set(self, kvs):
        keys = zipf_keys(200, 64, 1.2, seed=9)
        kvs.run_workload(0, keys)
        expected = hot_fraction(keys, [1, 2, 3])
        assert abs(kvs.hit_ratio() - expected) < 0.02

    def test_cache_capacity_enforced(self):
        kvs = KvsCluster(n_clients=1, cache_size=2, val_words=4)
        kvs.install_hot_keys([1, 2])
        with pytest.raises(Exception, match="full"):
            kvs.install_hot_keys([3])


class TestDedup:
    def test_exact_duplicates_dropped(self):
        d = DedupCluster(filter_bits=4096, payload_words=2)
        d.send_stream([1, 2, 1, 3, 2, 1])
        assert d.delivered == 3
        total, dups = d.switch_counters()
        assert total == 6 and dups == 3

    def test_unique_stream_all_delivered(self):
        d = DedupCluster(filter_bits=1 << 14, payload_words=2)
        ids = [i * 7919 for i in range(100)]
        d.send_stream(ids)
        assert d.delivered == 100

    def test_downstream_link_saved(self):
        d = DedupCluster(filter_bits=4096, payload_words=2)
        d.send_stream([5] * 50)
        downstream = next(
            lk for lk in d.cluster.network.links
            if {lk.a.name, lk.b.name} == {"s1", "sink"}
        )
        upstream = next(
            lk for lk in d.cluster.network.links
            if {lk.a.name, lk.b.name} == {"sender", "s1"}
        )
        assert upstream.stats.frames == 50
        assert downstream.stats.frames == 1


class TestWorkloads:
    def test_zipf_skew_concentrates(self):
        uniform = zipf_keys(2000, 100, 0.0, seed=1)
        skewed = zipf_keys(2000, 100, 1.5, seed=1)
        top10 = set(range(10))
        assert hot_fraction(skewed, top10) > hot_fraction(uniform, top10) + 0.3

    def test_zipf_deterministic_per_seed(self):
        assert zipf_keys(50, 10, 1.0, seed=4) == zipf_keys(50, 10, 1.0, seed=4)
        assert zipf_keys(50, 10, 1.0, seed=4) != zipf_keys(50, 10, 1.0, seed=5)

    def test_value_words_deterministic(self):
        assert value_words(5, 4) == value_words(5, 4)
        assert value_words(5, 4) != value_words(6, 4)

    def test_random_arrays_shape(self):
        arrays = random_arrays(3, 16)
        assert len(arrays) == 3 and all(len(a) == 16 for a in arrays)
