"""Unit + golden tests for the kernel effect-summary analysis.

Three layers:

* site classification -- where each store shape lands in the effect
  lattice (idempotent / monoid / unsafe), with absint-backed grading;
* guard recognition -- the seq-dedup and bloom-dedup idioms, their
  proved/possible grades, and partial-coverage detection;
* golden dump -- ``nclc build --emit effects`` output for the Fig 4 /
  Fig 5 examples is byte-stable across compiles and matches
  tests/golden/fig4_effects.txt / fig5_effects.txt.
"""

from pathlib import Path

import pytest

from repro.analysis.effects import (
    KIND_IDEMPOTENT,
    KIND_MONOID,
    KIND_UNSAFE,
)
from repro.nclc import Compiler

REPO = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden"

HEADER = '_net_ _at_("s1") unsigned acc[8] = {0};\n'


def effects_of(body, extra_decls="", opt_level=2):
    src = HEADER + extra_decls + (
        "_net_ _out_ void k(unsigned *v) {\n" + body + "\n}\n"
    )
    program = Compiler(opt_level=opt_level).compile(src, filename="<test>")
    return program.effect_summaries()["s1"]["k"]


def lone_symbol(eff, name="acc"):
    assert name in eff.symbols, sorted(eff.symbols)
    return eff.symbols[name]


class TestStoreClassification:
    def test_overwrite_with_window_data_is_idempotent_proved(self):
        sym = lone_symbol(effects_of("acc[window.seq & 7] = v[0];"))
        assert sym.kind == KIND_IDEMPOTENT
        assert sym.grade == "proved"
        assert sym.sites[0].op == "store"

    def test_overwrite_with_constant_is_idempotent_proved(self):
        sym = lone_symbol(effects_of("acc[0] = 7;"))
        assert sym.kind == KIND_IDEMPOTENT
        assert sym.grade == "proved"

    def test_monoid_fold_with_proved_nonzero_delta(self):
        sym = lone_symbol(effects_of("acc[0] += 1;"))
        assert sym.kind == KIND_MONOID
        assert sym.sites[0].fold == "add"
        # the constant delta 1 is proved non-zero: replays provably
        # change the register
        assert sym.grade == "proved"

    def test_monoid_fold_with_window_delta_is_possible(self):
        sym = lone_symbol(effects_of("acc[0] += v[0];"))
        assert sym.kind == KIND_MONOID
        assert sym.grade == "possible"  # v[0] may be zero

    def test_xor_and_sub_are_monoid(self):
        for fold, stmt in (
            ("xor", "acc[0] ^= v[0];"),
            ("sub", "acc[0] -= v[0];"),
        ):
            sym = lone_symbol(effects_of(stmt))
            assert sym.kind == KIND_MONOID
            assert sym.sites[0].fold == fold

    def test_or_fold_is_idempotent(self):
        sym = lone_symbol(effects_of("acc[0] |= v[0];"))
        assert sym.kind == KIND_IDEMPOTENT
        assert sym.sites[0].fold == "or"
        assert sym.grade == "proved"

    def test_and_fold_is_idempotent(self):
        sym = lone_symbol(effects_of("acc[0] &= v[0];"))
        assert sym.kind == KIND_IDEMPOTENT
        assert sym.sites[0].fold == "and"

    def test_max_clamp_select_is_idempotent(self):
        sym = lone_symbol(effects_of(
            "acc[0] = acc[0] > v[0] ? acc[0] : v[0];"
        ))
        assert sym.kind == KIND_IDEMPOTENT
        assert sym.sites[0].fold == "select"

    def test_unrecognized_rmw_is_unsafe(self):
        sym = lone_symbol(effects_of("acc[0] = acc[0] * 2 + v[0];"))
        assert sym.kind == KIND_UNSAFE

    def test_store_of_other_mutable_state_is_unsafe(self):
        sym = lone_symbol(effects_of(
            "acc[0] = other[0];",
            extra_decls='_net_ _at_("s1") unsigned other[1] = {0};\n',
        ))
        assert sym.kind == KIND_UNSAFE
        assert "net:other" in sym.sites[0].deps

    def test_ctrl_dependent_overwrite_is_idempotent_possible(self):
        """Control-plane reads are stable unless the operator intervenes
        between attempts: idempotent, but only 'possible'."""
        sym = lone_symbol(effects_of(
            "acc[0] = limit;",
            extra_decls='_net_ _at_("s1") _ctrl_ unsigned limit;\n',
        ))
        assert sym.kind == KIND_IDEMPOTENT
        assert sym.grade == "possible"
        assert "ctrl:limit" in sym.sites[0].deps

    def test_verdicts(self):
        assert effects_of("acc[0] = v[0];").verdict == "exactly-once"
        assert effects_of("acc[0] += v[0];").verdict == "unsafe"
        assert effects_of("acc[0] += v[0];").replay_safe is False


class TestGuardRecognition:
    GUARDED = """
      if (mark[window.seq & 63] == 0) {
        mark[window.seq & 63] = 1;
        acc[0] += v[0];
      }
    """
    MARK = '_net_ _at_("s1") unsigned mark[64] = {0};\n'

    def test_seq_dedup_guard_is_recognized_and_proved(self):
        eff = effects_of(self.GUARDED, extra_decls=self.MARK)
        [guard] = eff.guards
        assert guard.style == "seq-dedup"
        assert guard.symbol == "mark"
        # the mark is stored as 1 and compared against 0: once marked,
        # the miss edge can never re-fire
        assert guard.grade == "proved"
        sym = lone_symbol(eff)
        assert sym.kind == KIND_MONOID
        assert sym.guarded
        assert eff.verdict == "at-most-once"
        assert eff.replay_safe

    def test_guard_survives_every_opt_level(self):
        for opt_level in (0, 1, 2):
            eff = effects_of(
                self.GUARDED, extra_decls=self.MARK, opt_level=opt_level
            )
            assert eff.verdict == "at-most-once", opt_level

    def test_mark_bookkeeping_is_not_an_effect(self):
        eff = effects_of(self.GUARDED, extra_decls=self.MARK)
        assert "mark" not in eff.symbols

    def test_partial_guard_is_flagged(self):
        eff = effects_of(
            self.GUARDED + "\n  acc[0] += 1;", extra_decls=self.MARK
        )
        sym = lone_symbol(eff)
        assert sym.partial_guard
        assert not sym.guarded
        assert eff.verdict == "unsafe"

    def test_mutable_mark_index_is_not_a_guard(self):
        """A mark indexed by mutable state is not replay-stable: the
        retransmit may probe a different slot."""
        eff = effects_of(
            """
            if (mark[cursor[0] & 63] == 0) {
              mark[cursor[0] & 63] = 1;
              acc[0] += v[0];
            }
            """,
            extra_decls=self.MARK
            + '_net_ _at_("s1") unsigned cursor[1] = {0};\n',
        )
        assert eff.guards == []
        assert eff.verdict == "unsafe"

    def test_bloom_dedup_guard(self):
        eff = effects_of(
            """
            if (!ncl::bf_query(Seen, (uint64_t)v[0])) {
              ncl::bf_insert(Seen, (uint64_t)v[0]);
              acc[0] += 1;
            }
            """,
            extra_decls=(
                '_net_ _at_("s1") ncl::BloomFilter<1024, 3> Seen;\n'
            ),
        )
        [guard] = eff.guards
        assert guard.style == "bloom-dedup"
        assert guard.symbol == "Seen"
        assert guard.grade == "proved"  # same key queried and inserted
        assert eff.verdict == "at-most-once"


class TestGoldenDump:
    """``--emit effects`` output is byte-deterministic and golden-pinned.

    Regenerate (after an intentional analysis change) with::

        PYTHONPATH=src python -c "
        from pathlib import Path
        from repro.nclc import Compiler
        for name in ('fig4_allreduce', 'fig5_kvs'):
            src = Path(f'examples/{name}.ncl').read_text()
            p = Compiler(opt_level=2).compile(
                src, filename=f'examples/{name}.ncl')
            stem = name.split('_')[0]
            Path(f'tests/golden/{stem}_effects.txt').write_text(
                p.render_effects())
        "
    """

    @pytest.mark.parametrize("example,golden", [
        ("fig4_allreduce.ncl", "fig4_effects.txt"),
        ("fig5_kvs.ncl", "fig5_effects.txt"),
    ])
    def test_dump_matches_golden(self, example, golden):
        path = REPO / "examples" / example
        program = Compiler(opt_level=2).compile(
            path.read_text(), filename=f"examples/{example}"
        )
        expected = (GOLDEN / golden).read_text()
        assert program.render_effects() == expected

    def test_dump_is_deterministic_across_compiles(self):
        path = REPO / "examples" / "fig4_allreduce.ncl"

        def render():
            return Compiler(opt_level=2).compile(
                path.read_text(), filename="examples/fig4_allreduce.ncl"
            ).render_effects()

        assert render() == render()

    def test_fig4_proves_the_guard(self):
        golden = (GOLDEN / "fig4_effects.txt").read_text()
        assert "guard seq-dedup on net 'seen' (proved)" in golden
        assert "verdict: at-most-once" in golden

    def test_fig5_is_exactly_once(self):
        golden = (GOLDEN / "fig5_effects.txt").read_text()
        assert "verdict: exactly-once" in golden
        assert "unsafe" not in golden
