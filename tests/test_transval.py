"""Translation validation of the -O pipeline (``nclc build --verify-opt``).

Three claims under test:

* the validator is *green* on every shipped program at every opt level
  (no false alarms -- the optimizer is actually sound on them);
* a seeded miscompile in one NIR pass fails the build with a
  :class:`TranslationValidationError` naming exactly that pass, while an
  unverified build of the same corrupted compiler silently ships wrong
  code;
* the strengthened IR verifier (instruction uniqueness, entry-block phi
  ban) rejects the malformed functions it is meant to.
"""

from pathlib import Path

import pytest

from repro.analysis.transval import TranslationValidationError, make_validator
from repro.errors import IrError
from repro.ncl.types import I32, VOID
from repro.nclc import Compiler, pm
from repro.nir import ir, passes
from repro.nir.verify import verify_function

from tests.test_differential_opt import CASES

REPO = Path(__file__).resolve().parent.parent


def _compile_case(case, opt_level, verify_opt):
    return Compiler(opt_level=opt_level, verify_opt=verify_opt).compile(
        case["source"],
        and_text=case["and_text"],
        windows=case["windows"],
        defines=case["defines"],
    )


class TestValidatorIsGreen:
    @pytest.mark.parametrize("opt_level", [1, 2])
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_verify_opt_accepts_shipped_programs(self, name, opt_level):
        program = _compile_case(CASES[name], opt_level, verify_opt=True)
        assert program.opt_level == opt_level
        assert program.switch_modules

    def test_verify_opt_bypasses_cache_reads(self, tmp_path):
        """A cache hit would skip the very passes the flag validates, so
        verified builds always re-run the pipeline (and still publish)."""
        from repro.nclc.cache import ArtifactCache

        case = CASES["stats"]
        cache = ArtifactCache(root=tmp_path)
        first = Compiler(opt_level=2, cache=cache, verify_opt=True).compile(
            case["source"]
        )
        assert first.switch_modules
        again = Compiler(opt_level=2, cache=cache, verify_opt=True).compile(
            case["source"]
        )
        assert again.switch_modules


def _corrupt_storefwd(monkeypatch):
    """Make the store-forwarding pass flip the first add into a sub."""
    original = passes.NIR_PASSES["storefwd"].fn

    def evil(fn, **kw):
        changed = original(fn, **kw)
        for instr in fn.instructions():
            if isinstance(instr, ir.BinOp) and instr.op == "add":
                instr.op = "sub"
                return changed + 1
        return changed

    monkeypatch.setattr(passes.NIR_PASSES["storefwd"], "fn", evil)


class TestSeededMiscompile:
    SOURCE = (REPO / "examples" / "stats.ncl").read_text()

    def test_validator_names_the_broken_pass(self, monkeypatch):
        _corrupt_storefwd(monkeypatch)
        with pytest.raises(TranslationValidationError) as info:
            Compiler(opt_level=2, verify_opt=True).compile(self.SOURCE)
        assert info.value.pass_name == "storefwd"
        assert info.value.fn_name == "stats"
        assert "miscompiled" in str(info.value)

    def test_unverified_build_ships_the_miscompile(self, monkeypatch):
        """The control experiment: without --verify-opt the corrupted
        compiler happily produces a (wrong) program."""
        _corrupt_storefwd(monkeypatch)
        program = Compiler(opt_level=2, verify_opt=False).compile(self.SOURCE)
        ops = [
            i.op
            for module in program.switch_modules.values()
            for fn in module.functions.values()
            for i in fn.instructions()
            if isinstance(i, ir.BinOp)
        ]
        assert "sub" in ops  # the flipped instruction made it to codegen

    def test_cli_reports_validation_failure(self, monkeypatch, tmp_path, capsys):
        from repro.nclc.__main__ import main as nclc_main

        _corrupt_storefwd(monkeypatch)
        src = tmp_path / "stats.ncl"
        src.write_text(self.SOURCE)
        code = nclc_main(
            ["build", str(src), "--verify-opt", "-o", str(tmp_path / "out")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "translation validation FAILED" in err
        assert "'storefwd'" in err


class TestPassValidatorUnit:
    def _kernel(self):
        program = Compiler(opt_level=0).compile(
            (REPO / "examples" / "stats.ncl").read_text()
        )
        [(label, module)] = program.switch_modules.items()
        fn = module.functions["stats"]
        return program, module, fn

    def test_identity_transform_passes(self):
        program, module, fn = self._kernel()
        validator = make_validator(module, fn, label_ids=program.label_ids)
        before = validator.snapshot(fn)
        validator.check("noop", before, fn)  # must not raise

    def test_semantic_change_is_caught(self):
        program, module, fn = self._kernel()
        validator = make_validator(module, fn, label_ids=program.label_ids)
        before = validator.snapshot(fn)
        for instr in fn.instructions():
            if isinstance(instr, ir.BinOp) and instr.op == "add":
                instr.op = "sub"
                break
        with pytest.raises(TranslationValidationError, match="diverged"):
            validator.check("evil", before, fn)

    def test_broken_ir_is_caught(self):
        program, module, fn = self._kernel()
        validator = make_validator(module, fn, label_ids=program.label_ids)
        before = validator.snapshot(fn)
        # duplicate the entry block's first instruction into another block
        entry_instr = fn.entry.instrs[0]
        for block in fn.blocks[1:]:
            block.instrs.insert(0, entry_instr)
            break
        with pytest.raises(TranslationValidationError, match="broken IR"):
            validator.check("evil", before, fn)


class TestAbsintCompilePass:
    def test_registered_as_analysis(self):
        cpass = pm.COMPILE_PASSES["absint"]
        assert cpass.analysis
        assert "absint_facts" in cpass.provides
        assert pm._ANALYSIS_PRODUCERS["absint_facts"] == "absint"

    def test_facts_available_on_compiled_program(self):
        program = Compiler(opt_level=2).compile(
            (REPO / "examples" / "parity.ncl").read_text()
        )
        facts = program.absint_facts()
        assert sorted(facts) == sorted(program.switch_modules)
        for label, per_fn in facts.items():
            assert "parity" in per_fn


class TestVerifierStrengthening:
    """Satellite: instruction uniqueness + entry-phi checks run between
    every pass under --verify-opt."""

    def test_instruction_in_two_blocks(self):
        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        other = fn.new_block("other")
        shared = entry.append(ir.BinOp("add", ir.Const(I32, 1), ir.Const(I32, 2), I32))
        entry.append(ir.Br(other))
        other.instrs.insert(0, shared)
        other.append(ir.Ret())
        with pytest.raises(IrError, match="appears in"):
            verify_function(fn)

    def test_instruction_twice_in_one_block(self):
        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        dup = entry.append(ir.BinOp("add", ir.Const(I32, 1), ir.Const(I32, 2), I32))
        entry.instrs.insert(0, dup)
        entry.append(ir.Ret())
        with pytest.raises(IrError, match="appears"):
            verify_function(fn)

    def test_phi_in_entry_block(self):
        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        phi = ir.Phi(I32)
        phi.block = entry
        entry.instrs.insert(0, phi)
        entry.append(ir.Ret())
        with pytest.raises(IrError, match="entry block"):
            verify_function(fn)
