"""Bit-level packing (repro.util.bits) -- the wire/PHV substrate."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.util.bits import BitReader, BitWriter, pack_fields, unpack_fields


class TestBitWriter:
    def test_single_byte(self):
        w = BitWriter()
        w.write(0xAB, 8)
        assert w.to_bytes() == b"\xab"

    def test_msb_first(self):
        w = BitWriter()
        w.write(1, 1)
        w.write(0, 7)
        assert w.to_bytes() == b"\x80"

    def test_multi_field_packing(self):
        w = BitWriter()
        w.write(0x4, 4)  # 0100
        w.write(0x5, 4)  # 0101
        assert w.to_bytes() == b"\x45"

    def test_non_byte_aligned_raises(self):
        w = BitWriter()
        w.write(1, 3)
        with pytest.raises(ReproError):
            w.to_bytes()

    def test_values_truncated_to_width(self):
        w = BitWriter()
        w.write(0x1FF, 8)  # only low 8 bits
        assert w.to_bytes() == b"\xff"


class TestBitReader:
    def test_reads_msb_first(self):
        r = BitReader(b"\x80")
        assert r.read(1) == 1
        assert r.read(7) == 0

    def test_cross_byte_field(self):
        r = BitReader(b"\x12\x34")
        assert r.read(16) == 0x1234

    def test_underflow_raises(self):
        r = BitReader(b"\x00")
        with pytest.raises(ReproError):
            r.read(9)

    def test_rest_returns_remaining_bytes(self):
        r = BitReader(b"\xaa\xbb\xcc")
        r.read(8)
        assert r.rest() == b"\xbb\xcc"

    def test_rest_mid_byte_raises(self):
        r = BitReader(b"\xaa\xbb")
        r.read(4)
        with pytest.raises(ReproError):
            r.rest()


FIELD_LAYOUTS = st.lists(
    st.tuples(
        st.text(alphabet="abcdefgh", min_size=1, max_size=4),
        st.sampled_from([8, 16, 24, 32, 48, 64]),
    ),
    min_size=1,
    max_size=6,
    unique_by=lambda t: t[0],
)


class TestFieldPacking:
    @given(FIELD_LAYOUTS, st.data())
    def test_pack_unpack_roundtrip(self, layout, data):
        values = {
            name: data.draw(st.integers(min_value=0, max_value=(1 << bits) - 1))
            for name, bits in layout
        }
        packed = pack_fields(layout, values)
        assert len(packed) == sum(b for _, b in layout) // 8
        unpacked, rest = unpack_fields(layout, packed)
        assert rest == b""
        assert unpacked == values

    def test_missing_values_default_zero(self):
        packed = pack_fields([("a", 8), ("b", 8)], {"a": 7})
        assert packed == b"\x07\x00"

    def test_unpack_leaves_tail(self):
        values, rest = unpack_fields([("a", 8)], b"\x01\x02\x03")
        assert values == {"a": 1}
        assert rest == b"\x02\x03"

    @given(st.binary(min_size=2, max_size=64))
    def test_writer_reader_inverse_on_bytes(self, blob):
        w = BitWriter()
        for byte in blob:
            w.write(byte, 8)
        assert w.to_bytes() == blob
