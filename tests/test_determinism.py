"""Build and simulation determinism.

A reproducible-research artifact must produce identical outputs across
runs: the generated P4 text, the backend reports, and the discrete-event
simulation results are all checked for run-to-run stability.
"""


from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays
from repro.nclc import Compiler, WindowConfig

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, KVS_AND, KVS_DEFINES, KVS_SRC, STAR_AND


def compile_twice(source, and_text, windows, defines, profile=None):
    outs = []
    for _ in range(2):
        program = Compiler(profile=profile).compile(
            source, and_text=and_text, windows=windows, defines=defines
        )
        outs.append(program)
    return outs


class TestCompileDeterminism:
    def test_p4_text_identical_across_compiles(self):
        a, b = compile_twice(
            ALLREDUCE_SRC,
            STAR_AND,
            {"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            ALLREDUCE_DEFINES,
        )
        assert a.switch_sources["s1"] == b.switch_sources["s1"]

    def test_kvs_p4_text_identical(self):
        a, b = compile_twice(
            KVS_SRC,
            KVS_AND,
            {"query": WindowConfig(mask=(1, 4, 1))},
            KVS_DEFINES,
        )
        assert a.switch_sources["s1"] == b.switch_sources["s1"]

    def test_reports_identical(self):
        a, b = compile_twice(
            ALLREDUCE_SRC,
            STAR_AND,
            {"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            ALLREDUCE_DEFINES,
            profile="tofino-like",
        )
        assert a.reports["s1"].as_dict() == b.reports["s1"].as_dict()

    def test_split_plan_identical(self):
        a, b = compile_twice(
            ALLREDUCE_SRC,
            STAR_AND,
            {"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            ALLREDUCE_DEFINES,
            profile="tofino-like",
        )
        plan_a = [(s.name, s.stride, s.part_names) for s in a.split_info["s1"]]
        plan_b = [(s.name, s.stride, s.part_names) for s in b.split_info["s1"]]
        assert plan_a == plan_b


class TestSimulationDeterminism:
    def test_allreduce_timing_repeatable(self):
        times = []
        for _ in range(2):
            job = AllReduceJob(3, 64, 8)
            arrays = random_arrays(3, 64, seed=9)
            _, elapsed = job.run_round(arrays)
            times.append(elapsed)
        assert times[0] == times[1]

    def test_lossy_link_repeatable(self):
        """Loss uses a seeded RNG: two runs drop the same frames."""
        from repro.net.network import Network

        def run():
            net = Network()
            a = net.add_host("a")
            b = net.add_host("b")
            net.add_link("a", "b", loss=0.5, seed=7)
            net.compute_routes()
            got = []
            b.receiver = lambda data: got.append(data)
            for i in range(20):
                a.transmit(bytes([i]) * 8, b.node_id)
            net.run()
            return got

        assert run() == run()
