"""Tests for the transport-safety verifier (``nclc check-proto``).

Four layers:

* the explicit-state model checker -- minimal counterexamples, guard
  absorption, restart hazards, state-space sizes;
* the check registry -- NCL0850-family findings on hand-written
  programs;
* the CLI -- exit codes, ``--werror``, ``--list-rules``, and the
  byte-deterministic ``repro.proto/1`` JSON report;
* counterexample replay -- the seeded unsafe counter of
  tests/data/proto/unsafe_counter.ncl is rejected (exit 1) and its
  minimal schedule, replayed on a real :class:`~repro.runtime.Cluster`,
  reproduces the double-count end-to-end.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.effects import SymbolEffect
from repro.analysis.proto import (
    all_checks,
    check_kernel_model,
    check_program,
    replay_counterexample,
)
from repro.diag import Severity
from repro.errors import ReproError
from repro.nclc import Compiler
from repro.nclc.proto import main as proto_main

REPO = Path(__file__).resolve().parent.parent
UNSAFE = REPO / "tests" / "data" / "proto" / "unsafe_counter.ncl"

#: the minimal double-count schedule the BFS must find for an
#: unguarded fold: the retransmitted attempt re-executes the kernel
CANONICAL_SCHEDULE = [
    {"action": "send", "attempt": 0},
    {"action": "deliver", "attempt": 0},
    {"action": "retransmit", "attempt": 1},
    {"action": "deliver", "attempt": 1},
]


def compile_file(path, opt_level=2):
    return Compiler(opt_level=opt_level).compile(
        path.read_text(), filename=str(path)
    )


def compile_src(text, opt_level=2):
    return Compiler(opt_level=opt_level).compile(text, filename="<test>")


def kernel_effects(program, label, kernel):
    return program.effect_summaries()[label][kernel]


class TestModelChecker:
    def test_unguarded_fold_yields_minimal_counterexample(self):
        eff = kernel_effects(compile_file(UNSAFE), "s1", "tally")
        result = check_kernel_model(eff, "s1")
        assert result.verdict == "unsafe"
        cx = result.counterexample
        assert cx is not None
        assert cx.symbol == "hits"
        assert cx.applied == 2
        # breadth-first search: no shorter schedule exists, and the
        # canonical one is deterministic
        assert cx.schedule == CANONICAL_SCHEDULE
        assert result.states_explored == 20

    def test_guarded_fold_is_at_most_once(self):
        program = compile_file(REPO / "examples" / "parity.ncl")
        eff = kernel_effects(program, "s1", "parity")
        result = check_kernel_model(eff, "s1")
        assert result.verdict == "at-most-once"
        assert result.counterexample is None
        # the guard enlarges the reachable space (marked bit) but the
        # search still terminates exhaustively
        assert result.states_explored == 59

    def test_all_idempotent_kernel_skips_the_search(self):
        program = compile_file(REPO / "examples" / "fig5_kvs.ncl")
        eff = kernel_effects(program, "s1", "query")
        result = check_kernel_model(eff, "s1")
        assert result.verdict == "exactly-once"
        assert result.counterexample is None
        assert result.states_explored == 1  # nothing to track

    def test_cross_switch_guard_fails_on_restart(self):
        """A dedup mark on another switch does not survive together
        with the state it guards: restart(mark's switch) clears the
        mark, the retransmit re-applies the fold."""
        program = compile_file(REPO / "examples" / "parity.ncl")
        eff = kernel_effects(program, "s1", "parity")
        result = check_kernel_model(
            eff, "s1", symbol_labels={"mark": "s2"}
        )
        assert result.verdict == "unsafe"
        cx = result.counterexample
        assert cx is not None
        actions = [step["action"] for step in cx.schedule]
        assert "restart" in actions
        restarts = [s for s in cx.schedule if s["action"] == "restart"]
        assert restarts == [{"action": "restart", "switch": "s2"}]

    def test_opt_level_does_not_change_the_verdict(self):
        for opt_level in (0, 1, 2):
            eff = kernel_effects(
                compile_file(UNSAFE, opt_level=opt_level), "s1", "tally"
            )
            result = check_kernel_model(eff, "s1")
            assert result.verdict == "unsafe"
            assert result.counterexample.schedule == CANONICAL_SCHEDULE


class TestChecks:
    def test_registry_is_sorted_and_complete(self):
        checks = all_checks()
        names = [c.name for c in checks]
        assert names == sorted(names)
        assert names == [
            "effects", "guard-coverage", "restart-hazard", "window-model",
        ]
        codes = sorted(code for c in checks for code in c.codes)
        assert codes == [
            "NCL0850", "NCL0851", "NCL0852", "NCL0853", "NCL0854",
            "NCL0855",
        ]

    def test_unsafe_counter_raises_0851_and_0854(self):
        ctx = check_program(compile_file(UNSAFE))
        by_code = {d.code for d in ctx.sink}
        assert by_code == {"NCL0851", "NCL0854"}
        assert ctx.sink.has_errors
        model_error = next(d for d in ctx.sink if d.code == "NCL0854")
        assert model_error.severity is Severity.ERROR
        assert "send(a0), deliver(a0), retransmit(a1), deliver(a1)" in (
            " ".join(model_error.notes)
        )

    def test_unsafe_rmw_raises_0850(self):
        ctx = check_program(compile_src(
            """
            _net_ _at_("s1") unsigned acc[4] = {0};
            _net_ _out_ void k(unsigned *v) {
              acc[0] = acc[0] * 2 + v[0];   // not a recognized fold
            }
            """
        ))
        codes = {d.code for d in ctx.sink}
        assert "NCL0850" in codes
        rmw = next(d for d in ctx.sink if d.code == "NCL0850")
        assert rmw.severity is Severity.ERROR

    def test_partial_guard_raises_0853(self):
        ctx = check_program(compile_src(
            """
            _net_ _at_("s1") unsigned total[1] = {0};
            _net_ _at_("s1") unsigned mark[64] = {0};
            _net_ _out_ void k(unsigned *v) {
              if (mark[window.seq & 63] == 0) {
                mark[window.seq & 63] = 1;
                total[0] += v[0];
              }
              total[0] += 1;   // outside the guard: still replays
            }
            """
        ))
        codes = {d.code for d in ctx.sink}
        assert "NCL0853" in codes
        assert "NCL0854" in codes  # the model confirms the double-apply
        assert ctx.sink.has_errors

    def test_guarded_clean_program_has_no_findings(self):
        ctx = check_program(
            compile_file(REPO / "examples" / "parity.ncl")
        )
        assert list(ctx.sink) == []
        assert not ctx.sink.has_errors

    def test_cross_switch_mark_raises_0855(self):
        """Injecting a guard-symbol summary pinned to another switch
        makes both the structural check (NCL0855) and the model
        (NCL0854, via a restart step) fire."""
        program = compile_file(REPO / "examples" / "parity.ncl")
        from repro.analysis.proto import ProtoContext, run_checks

        ctx = ProtoContext(program)
        summaries = ctx.effect_summaries()
        eff = summaries["s1"]["parity"]
        eff.symbols["mark"] = SymbolEffect("mark", "net", "s2", [])
        run_checks(ctx)
        codes = {d.code for d in ctx.sink}
        assert "NCL0855" in codes
        assert "NCL0854" in codes
        hazard = next(d for d in ctx.sink if d.code == "NCL0855")
        assert "'s2'" in hazard.message and "'s1'" in hazard.message


class TestCli:
    def test_unsafe_counter_exits_1(self, capsys):
        assert proto_main([str(UNSAFE)]) == 1
        out = capsys.readouterr().out
        assert "transport-safety: UNSAFE" in out
        assert "minimal counterexample (4 steps" in out

    def test_unsafe_counter_json_counterexample_is_canonical(self, capsys):
        assert proto_main([str(UNSAFE), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.proto/1"
        assert report["safe"] is False
        [kernel] = report["kernels"]
        assert kernel["kernel"] == "tally"
        assert kernel["verdict"] == "unsafe"
        assert kernel["counterexample"]["symbol"] == "hits"
        assert kernel["counterexample"]["schedule"] == CANONICAL_SCHEDULE

    @pytest.mark.parametrize("example", [
        "parity.ncl", "stats.ncl", "fig4_allreduce.ncl", "fig5_kvs.ncl",
    ])
    def test_shipped_examples_are_clean_even_under_werror(
        self, capsys, example
    ):
        path = REPO / "examples" / example
        assert proto_main([str(path), "--werror"]) == 0
        out = capsys.readouterr().out
        assert "transport-safety: SAFE (0 warning(s))" in out

    def test_multiple_sources_fail_if_any_fails(self, capsys):
        parity = REPO / "examples" / "parity.ncl"
        assert proto_main([str(parity), str(UNSAFE)]) == 1
        out = capsys.readouterr().out
        assert out.count("transport-safety:") == 2

    def test_json_report_is_byte_deterministic(self, capsys):
        proto_main([str(UNSAFE), "--json"])
        first = capsys.readouterr().out
        proto_main([str(UNSAFE), "--json"])
        second = capsys.readouterr().out
        assert first == second

    def test_list_rules(self, capsys):
        assert proto_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for check in all_checks():
            assert check.name in out
            for code in check.codes:
                assert code in out

    def test_missing_file_exits_2(self, capsys):
        assert proto_main(["/nonexistent/nothing.ncl"]) == 2

    def test_no_sources_exits_2(self, capsys):
        assert proto_main([]) == 2

    def test_bad_window_spec_exits_2(self, capsys):
        assert proto_main([str(UNSAFE), "--window", "tally=x"]) == 2


class TestReplay:
    """The ISSUE's acceptance criterion, end to end: the minimal
    counterexample emitted by check-proto replays in the simulator and
    reproduces the double-count on real switch registers."""

    def test_counterexample_replays_to_a_double_count(self, capsys):
        assert proto_main([str(UNSAFE), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        [kernel] = report["kernels"]
        schedule = kernel["counterexample"]["schedule"]

        program = compile_file(UNSAFE)
        after = replay_counterexample(program, "s1", "tally", schedule)
        assert after["hits"] == [2]  # the replayed attempt re-applied

        # the failure-free prefix of the same schedule counts once
        happy = [s for s in schedule if s["action"] in ("send", "deliver")]
        baseline = replay_counterexample(program, "s1", "tally", happy)
        assert baseline["hits"] == [1]

    def test_restart_swaps_in_a_zeroed_switch(self):
        program = compile_file(UNSAFE)
        after = replay_counterexample(program, "s1", "tally", [
            {"action": "send", "attempt": 0},
            {"action": "deliver", "attempt": 0},
            {"action": "restart", "switch": "s1"},
        ])
        assert after["hits"] == [0]

    def test_guarded_kernel_survives_the_canonical_schedule(self):
        program = compile_file(REPO / "examples" / "parity.ncl")
        after = replay_counterexample(
            program, "s1", "parity", CANONICAL_SCHEDULE
        )
        assert after["total"] == [1]  # the dedup mark absorbed attempt 1
        assert after["odd"] == [1]

    def test_drop_is_not_replayable(self):
        program = compile_file(UNSAFE)
        with pytest.raises(ReproError, match="drop"):
            replay_counterexample(program, "s1", "tally", [
                {"action": "send", "attempt": 0},
                {"action": "drop", "attempt": 0},
            ])

    def test_unknown_kernel_is_rejected(self):
        program = compile_file(UNSAFE)
        with pytest.raises(ReproError, match="nope"):
            replay_counterexample(program, "s1", "nope", [])
