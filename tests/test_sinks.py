"""Streaming sinks, deterministic sampling, and bounded-memory tracing:
the observability scale layer (``repro.obs.sinks``) plus its tracer
integration -- shard rolling + manifests, byte self-accounting, head
sampling keyed on stable window hashes, anomaly/tail retention, and the
two-identical-runs byte-determinism guarantees."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.nclc import Compiler, WindowConfig
from repro.ncp.window import Window
from repro.obs import (
    FlightRecorder,
    Observability,
    ObservabilityError,
    Tracer,
)
from repro.obs.lineage import LineageIndex
from repro.obs.sinks import (
    BoundedBufferSink,
    JsonlSink,
    TraceSampler,
    iter_jsonl,
    iter_trace_events,
    resolve_trace_paths,
    stable_hash,
    window_key,
)
from repro.obs.trace import TraceEvent
from repro.runtime import Cluster

PROBE_SRC = (
    "_net_ unsigned seen[1] = {0};\n"
    "_net_ _out_ void probe(unsigned *d) { seen[0] += d[0]; }\n"
)


def probe_cluster(obs, loss=0.0):
    # link-loss RNGs are seeded by edge index, so lossy runs replay
    # byte-identically without any configuration
    program = Compiler().compile(
        PROBE_SRC, windows={"probe": WindowConfig(mask=(1,))}
    )
    return Cluster.from_program(program, loss=loss, obs=obs)


def ev(name="window:send", ts=0.0, kernel=1, seq=0, **extra):
    args = {"kernel": kernel, "seq": seq}
    args.update(extra)
    return TraceEvent(ts, None, name, "sim", "h0", args)


# ---------------------------------------------------------------------------
# stable hashing + window identity
# ---------------------------------------------------------------------------


class TestStableHash:
    def test_known_value_is_process_independent(self):
        # FNV-1a 64 of the empty string is the offset basis; any drift
        # here would silently re-shuffle every sampled trace.
        assert stable_hash("") == 0xCBF29CE484222325
        assert stable_hash("0:1:0") == stable_hash("0:1:0")
        assert stable_hash("0:1:0") != stable_hash("0:1:1")

    def test_window_key_prefers_numeric_kernel_id(self):
        event = ev(kernel_id=7)
        assert window_key(event) == ("7", 0)

    def test_window_key_masks_fragment_bit(self):
        assert window_key(ev(kernel=0x8001, seq=3)) == ("1", 3)

    def test_window_key_none_without_identity(self):
        no_seq = TraceEvent(0.0, None, "alert", "sim", "h0", {"x": 1})
        no_kernel = TraceEvent(0.0, None, "drop", "sim", "h0", {"seq": 1})
        assert window_key(no_seq) is None
        assert window_key(no_kernel) is None

    def test_window_key_reads_jsonl_dicts_too(self):
        assert window_key(ev().as_dict()) == window_key(ev())


# ---------------------------------------------------------------------------
# JsonlSink: sharding, manifests, self-accounting
# ---------------------------------------------------------------------------


class TestJsonlSink:
    def test_single_file_bytes_match_disk(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.trace.jsonl")
        for i in range(10):
            sink.write(ev(seq=i, ts=i * 1e-6))
        sink.close()
        path = tmp_path / "run.trace.jsonl"
        assert sink.events_written == 10
        assert sink.bytes_written == path.stat().st_size
        assert len(list(iter_jsonl([path]))) == 10

    def test_sharding_rolls_and_writes_manifest(self, tmp_path):
        sink = JsonlSink(tmp_path / "run.trace.jsonl", shard_events=4)
        for i in range(10):
            sink.write(ev(seq=i))
        sink.close()
        shards = sorted(tmp_path.glob("run.trace-*.jsonl"))
        assert [s.name for s in shards] == [
            "run.trace-00000.jsonl", "run.trace-00001.jsonl",
            "run.trace-00002.jsonl",
        ]
        manifest = json.loads(
            (tmp_path / "run.trace.manifest.json").read_text()
        )
        assert manifest["schema"] == "repro.tracemanifest/1"
        assert manifest["events"] == 10
        assert [s["events"] for s in manifest["shards"]] == [4, 4, 2]
        assert manifest["bytes"] == sum(
            s.stat().st_size for s in shards
        ) == sink.bytes_written

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.write(ev())
        sink.close()
        with pytest.raises(ObservabilityError, match="closed"):
            sink.write(ev())

    def test_shard_events_validated(self, tmp_path):
        with pytest.raises(ObservabilityError, match="at least 1"):
            JsonlSink(tmp_path / "t.jsonl", shard_events=0)


class TestResolveTracePaths:
    def _sharded(self, tmp_path, n=9, shard=4):
        sink = JsonlSink(tmp_path / "run.trace.jsonl", shard_events=shard)
        for i in range(n):
            sink.write(ev(seq=i))
        sink.close()
        return sink

    def test_plain_file(self, tmp_path):
        sink = JsonlSink(tmp_path / "flat.jsonl")
        sink.write(ev())
        sink.close()
        assert resolve_trace_paths(tmp_path / "flat.jsonl") == [
            tmp_path / "flat.jsonl"
        ]

    def test_base_path_resolves_via_manifest(self, tmp_path):
        self._sharded(tmp_path)
        paths = resolve_trace_paths(tmp_path / "run.trace.jsonl")
        assert [p.name for p in paths] == [
            "run.trace-00000.jsonl", "run.trace-00001.jsonl",
            "run.trace-00002.jsonl",
        ]

    def test_manifest_and_directory_specs(self, tmp_path):
        self._sharded(tmp_path)
        via_manifest = resolve_trace_paths(
            tmp_path / "run.trace.manifest.json"
        )
        via_dir = resolve_trace_paths(tmp_path)
        assert len(via_manifest) == 3
        assert set(via_manifest) <= set(via_dir)
        # the full event stream reassembles in order either way
        seqs = [e["args"]["seq"] for e in iter_trace_events(
            tmp_path / "run.trace.jsonl"
        )]
        assert seqs == list(range(9))

    def test_bare_shards_without_manifest(self, tmp_path):
        self._sharded(tmp_path)
        (tmp_path / "run.trace.manifest.json").unlink()
        paths = resolve_trace_paths(tmp_path / "run.trace.jsonl")
        assert len(paths) == 3

    def test_missing_trace_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            resolve_trace_paths(tmp_path / "nope.jsonl")


class TestBoundedBufferSink:
    def test_keeps_last_n(self):
        sink = BoundedBufferSink(capacity=3)
        for i in range(7):
            sink.write(ev(seq=i))
        assert sink.events_seen == 7
        assert len(sink) == 3
        assert [e.args["seq"] for e in sink.events()] == [4, 5, 6]

    def test_capacity_validated(self):
        with pytest.raises(ObservabilityError, match="at least 1"):
            BoundedBufferSink(capacity=0)


# ---------------------------------------------------------------------------
# TraceSampler unit behaviour
# ---------------------------------------------------------------------------


class TestTraceSampler:
    def _bound(self, sampler):
        kept = []
        sampler.bind(kept.append)
        return kept

    def test_rate_and_pending_validated(self):
        with pytest.raises(ObservabilityError, match="outside"):
            TraceSampler(rate=1.5)
        with pytest.raises(ObservabilityError, match="outside"):
            TraceSampler(rate=0.5, slow_percentile=100)
        with pytest.raises(ObservabilityError, match="at least 1"):
            TraceSampler(rate=0.5, max_pending=0)

    def test_rate_one_keeps_everything(self):
        sampler = TraceSampler(rate=1.0)
        kept = self._bound(sampler)
        for i in range(20):
            sampler.feed(ev(seq=i))
        sampler.drain()
        assert len(kept) == 20
        assert sampler.events_sampled_out == 0

    def test_rate_zero_drops_identified_windows(self):
        sampler = TraceSampler(rate=0.0, keep_anomalies=False)
        kept = self._bound(sampler)
        for i in range(20):
            sampler.feed(ev(seq=i))
        sampler.drain()
        assert kept == []
        assert sampler.events_sampled_out == 20

    def test_keyless_events_always_kept(self):
        sampler = TraceSampler(rate=0.0)
        kept = self._bound(sampler)
        sampler.feed(TraceEvent(0.0, None, "health:alert", "sim", "t", {}))
        assert len(kept) == 1

    def test_head_decision_is_deterministic_and_salted(self):
        a = TraceSampler(rate=0.5)
        b = TraceSampler(rate=0.5)
        keys = [("1", i) for i in range(200)]
        decisions = [a.head_keep(k) for k in keys]
        assert decisions == [b.head_keep(k) for k in keys]
        # roughly the configured fraction, exactly reproducible
        assert 60 <= sum(decisions) <= 140
        salted = TraceSampler(rate=0.5, salt=1)
        assert decisions != [salted.head_keep(k) for k in keys]

    def test_anomaly_promotes_buffered_history(self):
        sampler = TraceSampler(rate=0.0)
        kept = self._bound(sampler)
        sampler.feed(ev("window:send", ts=0.0))
        sampler.feed(ev("link:serialize", ts=1e-6))
        assert kept == []  # pending, not yet decided
        sampler.feed(ev("drop", ts=2e-6, cause="loss"))
        assert [e.name for e in kept] == [
            "window:send", "link:serialize", "drop"
        ]
        # later events of a promoted window stream straight through
        sampler.feed(ev("window:retransmit", ts=3e-6))
        assert len(kept) == 4
        assert sampler.windows_promoted == 1

    def test_drop_switch_is_not_an_anomaly(self):
        sampler = TraceSampler(rate=0.0)
        kept = self._bound(sampler)
        sampler.feed(ev("window:send", ts=0.0))
        sampler.feed(ev("int:stack", ts=1e-6, outcome="drop:switch"))
        sampler.drain()
        assert kept == []
        sampler2 = TraceSampler(rate=0.0)
        kept2 = self._bound(sampler2)
        sampler2.feed(ev("window:send", ts=0.0))
        sampler2.feed(ev("int:stack", ts=1e-6, outcome="drop:loss"))
        assert len(kept2) == 2

    def test_max_pending_evicts_oldest_fifo(self):
        sampler = TraceSampler(rate=0.0, max_pending=2)
        kept = self._bound(sampler)
        for i in range(3):
            sampler.feed(ev(seq=i))
        # window 0 aged out; an anomaly on it now is a late promotion
        assert sampler.windows_sampled_out == 1
        assert sampler.events_sampled_out == 1
        sampler.feed(ev("drop", seq=0, cause="loss"))
        assert sampler.late_anomalies == 1
        assert [e.name for e in kept] == ["drop"]

    def test_slow_percentile_promotes_tail_deliveries(self):
        sampler = TraceSampler(rate=0.0, slow_percentile=90.0)
        kept = self._bound(sampler)
        # warm up the histogram with fast windows (1us latency)
        for i in range(20):
            sampler.feed(ev("window:send", ts=i * 1e-3, seq=i))
            sampler.feed(ev("window:recv", ts=i * 1e-3 + 1e-6, seq=i))
        assert kept == []
        # one window 1000x slower than everything seen so far
        sampler.feed(ev("window:send", ts=1.0, seq=99))
        sampler.feed(ev("window:recv", ts=1.0 + 1e-3, seq=99))
        assert [e.args["seq"] for e in kept] == [99, 99]
        assert sampler.windows_promoted == 1

    def test_accounting_identity(self):
        sampler = TraceSampler(rate=0.3)
        kept = self._bound(sampler)
        for i in range(100):
            sampler.feed(ev("window:send", ts=i * 1e-6, seq=i))
        sampler.drain()
        stats = sampler.stats()
        assert stats["events_seen"] == 100
        assert stats["events_kept"] == len(kept)
        assert stats["events_kept"] + stats["events_sampled_out"] == 100
        assert stats["events_pending"] == 0


# ---------------------------------------------------------------------------
# tracer integration: retention, monotonicity, self-accounting
# ---------------------------------------------------------------------------


class TestTracerRetention:
    def test_retain_false_keeps_no_events(self):
        tracer = Tracer(retain=False)
        sink = BoundedBufferSink(capacity=8)
        tracer.add_stream(sink)
        for i in range(5):
            tracer.instant("x", i * 1e-6, "t")
        assert len(tracer.events) == 0
        assert sink.events_seen == 5
        assert tracer.events_recorded == tracer.events_emitted == 5

    def test_retain_int_keeps_bounded_tail(self):
        tracer = Tracer(retain=3)
        for i in range(10):
            tracer.instant("x", i * 1e-6, "t", args={"i": i})
        assert [e.args["i"] for e in tracer.events] == [7, 8, 9]
        # the trimmed list is still time-ordered after the fallback sort
        assert [e.args["i"] for e in tracer.ordered_events()] == [7, 8, 9]

    def test_monotonic_fast_path_skips_sort(self):
        tracer = Tracer()
        for i in range(4):
            tracer.instant("x", i * 1e-6, "t")
        assert tracer.ordered_events() is tracer.events

    def test_out_of_order_falls_back_to_stable_sort(self):
        tracer = Tracer()
        tracer.instant("b", 2e-6, "t")
        tracer.instant("a", 1e-6, "t")
        tracer.instant("a2", 1e-6, "t")  # ties keep recording order
        ordered = tracer.ordered_events()
        assert ordered is not tracer.events
        assert [e.name for e in ordered] == ["a", "a2", "b"]
        assert "1.000us" in tracer.timeline().splitlines()[0]

    def test_sinks_see_presampling_stream(self):
        sampler = TraceSampler(rate=0.0, keep_anomalies=False)
        tracer = Tracer(sampler=sampler, retain=False)
        flight = FlightRecorder(capacity=16)
        obs = Observability(tracer=tracer, flight=flight)
        for i in range(10):
            obs.tracer.instant(
                "window:send", i * 1e-6, "h0", args={"kernel": 1, "seq": i}
            )
        tracer.close()
        assert flight.events_seen == 10  # ring taps before sampling
        assert tracer.events_emitted == 0  # everything sampled out
        assert tracer.events_sampled_out == 10

    def test_stats_identity_and_peak_resident(self):
        sampler = TraceSampler(rate=0.0, max_pending=4)
        tracer = Tracer(sampler=sampler, retain=False)
        for i in range(50):
            tracer.instant(
                "window:send", i * 1e-6, "h0", args={"kernel": 1, "seq": i}
            )
        tracer.close()
        stats = tracer.stats()
        assert stats["events_recorded"] == 50
        assert stats["events_recorded"] == (
            stats["events_emitted"] + stats["events_sampled_out"]
        )
        assert stats["peak_resident_events"] <= 4  # bounded by max_pending
        assert stats["resident_events"] == 0


# ---------------------------------------------------------------------------
# end to end: determinism + anomaly retention on a real cluster
# ---------------------------------------------------------------------------


def _sampled_run(out_dir: Path, rate=0.05, loss=0.15, n=120):
    sampler = TraceSampler(rate=rate, max_pending=512)
    tracer = Tracer(sampler=sampler, retain=False)
    sink = JsonlSink(out_dir / "run.trace.jsonl", shard_events=64)
    tracer.add_stream(sink)
    obs = Observability(tracer=tracer)
    cluster = probe_cluster(obs, loss=loss)
    h0 = cluster.host("h0")
    for seq in range(n):
        h0.out_window("probe", seq, [[seq % 97]], "h1", last=True)
    cluster.run()
    tracer.close()
    index = LineageIndex.from_jsonl(out_dir / "run.trace.jsonl")
    index.write_json(open(out_dir / "run.lineage.json", "w"))
    return obs, sink, index


class TestSampledRunDeterminism:
    def test_identical_runs_are_byte_identical(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir(), dir_b.mkdir()
        _sampled_run(dir_a)
        _sampled_run(dir_b)
        files_a = sorted(p.name for p in dir_a.iterdir())
        assert files_a == sorted(p.name for p in dir_b.iterdir())
        assert any(name.startswith("run.trace-") for name in files_a)
        for name in files_a:
            assert (dir_a / name).read_bytes() == (dir_b / name).read_bytes()

    def test_identical_runs_diff_to_zero_delta(self, tmp_path):
        from repro.obs.diff import diff_runs, validate_report, write_report

        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir(), dir_b.mkdir()
        _sampled_run(dir_a)
        _sampled_run(dir_b)
        report = diff_runs(str(dir_a), str(dir_b), a_label="A", b_label="B")
        assert validate_report(report) == []
        assert report["zero_delta"] is True
        # the report itself is byte-deterministic
        import io

        buf1, buf2 = io.StringIO(), io.StringIO()
        write_report(report, buf1)
        write_report(
            diff_runs(str(dir_a), str(dir_b), a_label="A", b_label="B"), buf2
        )
        assert buf1.getvalue() == buf2.getvalue()

    def test_anomaly_retention_keeps_all_drops_at_rate_zero(self, tmp_path):
        # rate=0.0 is the adversarial extreme: head sampling keeps
        # nothing, so every reconstructable drop below was saved by
        # anomaly retention alone.
        _, _, index = _sampled_run(tmp_path, rate=0.0, loss=0.25)
        dropped = [
            w for w in index.windows.values()
            for b in w.branches.values()
            for a in b.attempts.values()
            if a.outcome.startswith("drop:") and a.outcome != "drop:switch"
        ]
        assert dropped, "loss=0.25 over 120 windows must drop something"
        for window in dropped:
            story = index.explain(window.kernel_id, window.seq)
            assert "drop" in story

    def test_retransmits_retained_at_rate_zero(self, tmp_path):
        sampler = TraceSampler(rate=0.0, max_pending=512)
        tracer = Tracer(sampler=sampler, retain=False)
        sink = JsonlSink(tmp_path / "rtx.trace.jsonl")
        tracer.add_stream(sink)
        obs = Observability(tracer=tracer)
        cluster = probe_cluster(obs)
        h0 = cluster.host("h0")
        h0.out("probe", [[7]], dst="h1")
        cluster.run()
        window = Window(0, [[7]], ext={}, last=True, from_node=h0.node_id)
        h0.retransmit_window("probe", window, "h1")
        cluster.run()
        tracer.close()
        index = LineageIndex.from_jsonl(tmp_path / "rtx.trace.jsonl")
        branch = index.window("probe", 0).branches[h0.node_id]
        # both attempts survive a keep-nothing sampling rate: the
        # retransmit promoted the window, history included
        assert sorted(branch.attempts) == [0, 1]
        assert branch.attempts[1].kind == "retransmit"
        story = index.explain("probe", 0)
        assert "retransmit" in story
