"""Abstract Network Description: model, parser, overlay mapping."""

import pytest

from repro.errors import AndError, MappingError
from repro.andspec import AndSpec, PhysicalNet, map_overlay, parse_and


class TestParsing:
    def test_basic(self):
        spec = parse_and(
            """
            # workers around a ToR
            host w0
            host w1
            switch s1
            link w0 s1
            link w1 s1
            """
        )
        assert [n.label for n in spec.hosts] == ["w0", "w1"]
        assert [n.label for n in spec.switches] == ["s1"]
        assert len(spec.edges) == 2

    def test_node_ids_in_order(self):
        spec = parse_and("host a\nswitch b\nhost c")
        assert spec.label_ids() == {"a": 0, "b": 1, "c": 2}

    def test_links_may_precede_nodes(self):
        spec = parse_and("link a b\nhost a\nswitch b")
        assert len(spec.edges) == 1

    def test_duplicate_node_rejected(self):
        with pytest.raises(AndError, match="duplicate"):
            parse_and("host a\nhost a")

    def test_duplicate_link_rejected(self):
        with pytest.raises(AndError, match="duplicate link"):
            parse_and("host a\nswitch b\nlink a b\nlink b a")

    def test_self_link_rejected(self):
        with pytest.raises(AndError, match="self-link"):
            parse_and("host a\nlink a a")

    def test_unknown_declaration(self):
        with pytest.raises(AndError, match="unknown declaration"):
            parse_and("router r1")

    def test_link_to_unknown_node(self):
        with pytest.raises(AndError, match="unknown node"):
            parse_and("host a\nlink a b")

    def test_render_roundtrip(self):
        text = "host a\nswitch b\nlink a b"
        spec = parse_and(text)
        again = parse_and(spec.render())
        assert again.label_ids() == spec.label_ids()
        assert again.edges == spec.edges


class TestValidation:
    def test_required_label_must_exist(self):
        spec = parse_and("host a\nswitch s1\nlink a s1")
        spec.validate(["s1"])
        with pytest.raises(AndError, match="does not name a node"):
            spec.validate(["s9"])

    def test_required_label_must_be_switch(self):
        spec = parse_and("host a\nswitch s1\nlink a s1")
        with pytest.raises(AndError, match="must name a switch"):
            spec.validate(["a"])

    def test_disconnected_rejected(self):
        spec = parse_and("host a\nhost b\nswitch s1\nlink a s1")
        with pytest.raises(AndError, match="not connected"):
            spec.validate()

    def test_empty_rejected(self):
        with pytest.raises(AndError, match="empty"):
            AndSpec().validate()

    def test_neighbors(self):
        spec = parse_and("host a\nswitch s\nhost b\nlink a s\nlink s b")
        assert set(spec.neighbors("s")) == {"a", "b"}


def chain_physical(n_switches=3):
    phys = PhysicalNet()
    phys.add_host("h0")
    phys.add_host("h1")
    prev = "h0"
    for i in range(n_switches):
        name = f"p{i}"
        phys.add_switch(name)
        phys.add_link(prev, name)
        prev = name
    phys.add_link(prev, "h1")
    return phys


class TestMapping:
    def test_identity_style_mapping(self):
        overlay = parse_and("host h0\nswitch s1\nhost h1\nlink h0 s1\nlink s1 h1")
        mapping = map_overlay(overlay, chain_physical(1))
        assert mapping.placement["h0"] == "h0"
        assert mapping.placement["s1"] == "p0"

    def test_switch_choice_respects_paths(self):
        # Overlay: h0 - s1 - h1. Physical: chain of three switches.
        overlay = parse_and("host h0\nswitch s1\nhost h1\nlink h0 s1\nlink s1 h1")
        mapping = map_overlay(overlay, chain_physical(3))
        assert mapping.placement["s1"] in ("p0", "p1", "p2")
        # every overlay edge must have a physical path
        assert set(mapping.edge_paths) == {("h0", "s1"), ("h1", "s1")}

    def test_two_switch_overlay_on_chain(self):
        overlay = parse_and(
            "host h0\nswitch s1\nswitch s2\nhost h1\n"
            "link h0 s1\nlink s1 s2\nlink s2 h1"
        )
        mapping = map_overlay(overlay, chain_physical(3))
        assert mapping.placement["s1"] != mapping.placement["s2"]

    def test_not_enough_switches(self):
        overlay = parse_and(
            "host h0\nswitch s1\nswitch s2\nhost h1\n"
            "link h0 s1\nlink s1 s2\nlink s2 h1"
        )
        with pytest.raises(MappingError, match="switches"):
            map_overlay(overlay, chain_physical(1))

    def test_not_enough_hosts(self):
        overlay = parse_and(
            "host a\nhost b\nhost c\nswitch s1\n"
            "link a s1\nlink b s1\nlink c s1"
        )
        phys = PhysicalNet()
        phys.add_host("x")
        phys.add_switch("p0")
        phys.add_link("x", "p0")
        with pytest.raises(MappingError, match="hosts"):
            map_overlay(overlay, phys)

    def test_host_pinning(self):
        overlay = parse_and("host a\nswitch s1\nhost b\nlink a s1\nlink s1 b")
        phys = chain_physical(1)
        mapping = map_overlay(overlay, phys, host_pin={"a": "h1", "b": "h0"})
        assert mapping.placement["a"] == "h1"

    def test_pin_to_switch_rejected(self):
        overlay = parse_and("host a\nswitch s1\nlink a s1")
        with pytest.raises(MappingError, match="not a physical host"):
            map_overlay(overlay, chain_physical(1), host_pin={"a": "p0"})
