"""Per-rule positive/negative tests for the repro.analysis framework."""

import pytest

from repro.analysis import lint_source, rule_names, select_rules
from repro.diag import Severity
from repro.errors import IrError
from repro.ncl.types import BOOL, I32, VOID
from repro.nir import ir
from repro.nir.verify import verify_function


def lint(source, **kw):
    return lint_source(source, "test.ncl", **kw)


def codes(result):
    return [d.code for d in result.sink.sorted()]


def warnings_with(result, code):
    return [d for d in result.sink.sorted() if d.code == code]


class TestRuleSelection:
    def test_all_rules_by_default(self):
        assert [r.name for r in select_rules()] == rule_names()

    def test_positive_selection(self):
        assert [r.name for r in select_rules(["race"])] == ["race"]
        picked = [r.name for r in select_rules(["dead-store", "race"])]
        # registry order is preserved regardless of the spec order
        assert set(picked) == {"race", "dead-store"}
        assert picked == [n for n in rule_names() if n in picked]

    def test_negative_selection(self):
        names = [r.name for r in select_rules(["no-race"])]
        assert "race" not in names
        assert len(names) == len(rule_names()) - 1

    def test_all_with_negatives(self):
        names = [r.name for r in select_rules(["all", "no-overflow"])]
        assert "overflow" not in names and "race" in names

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown analysis rule"):
            select_rules(["not-a-rule"])
        with pytest.raises(ValueError, match="unknown analysis rule"):
            lint("_net_ _out_ void k(int *d) { d[0] = 1; }", rules=["nope"])


class TestRaceDetector:
    TWO_KERNELS = (
        "_net_ unsigned c[4] = {0};\n"
        "_net_ _out_ void a(unsigned k) { c[k & 3] += 1; }\n"
        "_net_ _out_ void b(unsigned k) { c[k & 3] += 1; }\n"
    )

    def test_two_unpinned_kernels_race(self):
        result = lint(self.TWO_KERNELS, rules=["race"])
        races = warnings_with(result, "NCL0701")
        assert len(races) == 1
        # both conflicting sites: a primary plus at least one secondary span
        assert races[0].primary is not None
        assert len(races[0].secondary) >= 1
        assert "'c'" in races[0].message

    def test_single_kernel_is_not_a_race(self):
        src = (
            "_net_ unsigned c[4] = {0};\n"
            "_net_ _out_ void a(unsigned k) { c[k & 3] += 1; }\n"
        )
        assert codes(lint(src, rules=["race"])) == []

    def test_pinned_symbol_serializes_unpinned_kernels(self):
        src = self.TWO_KERNELS.replace(
            "_net_ unsigned", '_net_ _at_("s1") unsigned'
        )
        assert codes(lint(src, rules=["race"])) == []

    def test_kernel_pinned_elsewhere_still_races(self):
        src = (
            '_net_ _at_("s1") unsigned c[4] = {0};\n'
            "_net_ _out_ void a(unsigned k) { c[k & 3] += 1; }\n"
            '_net_ _out_ _at_("s2") void b(unsigned k) { c[k & 3] += 1; }\n'
        )
        races = warnings_with(lint(src, rules=["race"]), "NCL0701")
        assert len(races) == 1

    def test_host_write_vs_kernel_read_on_map(self):
        src = (
            "_net_ ncl::Map<unsigned, unsigned, 64> Hot;\n"
            "_net_ _out_ void k(unsigned key) {\n"
            "  if (auto *h = Hot[key]) { if (*h) _drop(); }\n"
            "}\n"
            "int main() { ncl::map_insert(Hot, 1, 1); return 0; }\n"
        )
        result = lint(src, rules=["race"])
        races = warnings_with(result, "NCL0701")
        assert len(races) == 1
        joined = races[0].message + " ".join(
            s.label or "" for s in races[0].secondary
        ) + " ".join(races[0].notes)
        assert "host" in joined or "control" in joined

    def test_quickstart_ctrl_pattern_is_clean(self):
        src = (
            '_net_ _at_("s1") _ctrl_ int threshold;\n'
            "_net_ _out_ void k(int *d) { if (d[0] > threshold) _drop(); }\n"
            "int main() { ncl::ctrl_wr(&threshold, 7); return 0; }\n"
        )
        assert codes(lint(src, rules=["race"])) == []

    def test_race_through_helper_call(self):
        src = (
            "_net_ unsigned c[4] = {0};\n"
            "void bump(unsigned k) { c[k & 3] += 1; }\n"
            "_net_ _out_ void a(unsigned k) { bump(k); }\n"
            "_net_ _out_ void b(unsigned k) { bump(k); }\n"
        )
        races = warnings_with(lint(src, rules=["race"]), "NCL0701")
        assert len(races) == 1


class TestDefUseRules:
    def test_uninit_read(self):
        src = (
            "_net_ _out_ void k(unsigned key, int *d) {\n"
            "  int x;\n"
            "  if (key & 1) x = d[0];\n"
            "  d[1] = x;\n"
            "}\n"
        )
        found = warnings_with(lint(src, rules=["uninit-read"]), "NCL0702")
        assert len(found) == 1 and "'x'" in found[0].message

    def test_uninit_read_negative(self):
        src = "_net_ _out_ void k(int *d) { int x = 0; d[1] = x; }"
        assert codes(lint(src, rules=["uninit-read"])) == []

    def test_dead_store(self):
        src = (
            "_net_ _out_ void k(int *d) {\n"
            "  int h = 0;\n"
            "  h = d[0];\n"
            "  d[1] = h;\n"
            "}\n"
        )
        found = warnings_with(lint(src, rules=["dead-store"]), "NCL0703")
        assert len(found) == 1

    def test_dead_store_negative(self):
        src = "_net_ _out_ void k(int *d) { int h = 0; d[1] = h; }"
        assert codes(lint(src, rules=["dead-store"])) == []

    def test_unreachable_after_return(self):
        src = (
            "_net_ _out_ void k(int *d) {\n"
            "  if (d[0]) { return; d[1] = 1; }\n"
            "  d[2] = 2;\n"
            "}\n"
        )
        found = warnings_with(lint(src, rules=["unreachable-code"]), "NCL0704")
        assert len(found) == 1

    def test_reachable_code_is_clean(self):
        src = "_net_ _out_ void k(int *d) { if (d[0]) return; d[2] = 2; }"
        assert codes(lint(src, rules=["unreachable-code"])) == []

    def test_unbounded_loop(self):
        src = "_net_ _out_ void k(int *d) { while (1) { d[0] += 1; } }"
        found = warnings_with(lint(src, rules=["unbounded-loop"]), "NCL0705")
        assert len(found) == 1

    def test_loop_with_break_is_bounded(self):
        src = (
            "_net_ _out_ void k(int *d) {\n"
            "  while (1) { if (d[0]) break; d[0] += 1; }\n"
            "}\n"
        )
        assert codes(lint(src, rules=["unbounded-loop"])) == []

    def test_host_loops_are_not_flagged(self):
        src = (
            "_net_ _out_ void k(int *d) { d[0] = 1; }\n"
            "int main() { while (1) { } return 0; }\n"
        )
        assert codes(lint(src, rules=["unbounded-loop"])) == []


class TestArithmeticRules:
    def test_implicit_truncation(self):
        src = "_net_ _out_ void k(int *d) { short s = d[0]; d[1] = s; }"
        found = warnings_with(lint(src, rules=["width-truncation"]), "NCL0801")
        assert len(found) == 1
        assert "32" in found[0].message and "16" in found[0].message

    def test_explicit_cast_is_clean(self):
        src = "_net_ _out_ void k(int *d) { short s = (short)d[0]; d[1] = s; }"
        assert codes(lint(src, rules=["width-truncation"])) == []

    def test_shift_out_of_range(self):
        src = "_net_ _out_ void k(int *d) { d[0] = d[1] << 40; }"
        found = warnings_with(lint(src, rules=["shift-range"]), "NCL0802")
        assert len(found) == 1
        # a constant out-of-range amount is proved, hence error-grade
        assert found[0].status == "proved"
        assert found[0].severity is Severity.ERROR

    def test_shift_in_range_is_clean(self):
        src = "_net_ _out_ void k(int *d) { d[0] = d[1] << 3; }"
        assert codes(lint(src, rules=["shift-range"])) == []

    def test_variable_shift_range_graded_possible(self):
        src = (
            "_net_ _out_ void k(unsigned *d) { d[0] = d[1] >> (d[2] & 63); }"
        )
        found = warnings_with(lint(src, rules=["shift-range"]), "NCL0802")
        assert len(found) == 1
        assert found[0].status == "possible"
        assert found[0].severity is Severity.WARNING

    def test_variable_shift_masked_in_range_is_clean(self):
        src = (
            "_net_ _out_ void k(unsigned *d) { d[0] = d[1] >> (d[2] & 31); }"
        )
        assert codes(lint(src, rules=["shift-range"])) == []

    def test_constant_overflow(self):
        src = "_net_ _out_ void k(int *d) { d[0] = 2000000000 + 2000000000; }"
        found = warnings_with(lint(src, rules=["overflow"]), "NCL0803")
        assert len(found) == 1
        assert found[0].status == "proved"
        assert found[0].severity is Severity.ERROR

    def test_unknown_operands_do_not_flag_overflow(self):
        # d[0] + d[1] can of course wrap, but both ranges are full-width
        # unknowns: flagging this would flag half of every program
        src = "_net_ _out_ void k(int *d) { d[0] = d[0] + d[1]; }"
        assert codes(lint(src, rules=["overflow"])) == []

    def test_div_by_zero_graded(self):
        proved = "_net_ _out_ void k(unsigned *d) { d[0] = d[1] / (d[2] & 0); }"
        found = warnings_with(lint(proved, rules=["div-by-zero"]), "NCL0805")
        assert len(found) == 1 and found[0].status == "proved"
        maybe = "_net_ _out_ void k(unsigned *d) { d[0] = d[1] / (d[2] & 3); }"
        found = warnings_with(lint(maybe, rules=["div-by-zero"]), "NCL0805")
        assert len(found) == 1 and found[0].status == "possible"
        # (NCL0602, the conformance complaint about non-power-of-two
        # divisors, still fires -- only the zero-divisor finding is gone)
        clean = "_net_ _out_ void k(unsigned *d) { d[0] = d[1] / ((d[2] & 3) | 4); }"
        assert warnings_with(lint(clean, rules=["div-by-zero"]), "NCL0805") == []

    def test_dead_branch_proved_only(self):
        src = (
            "_net_ _out_ void k(unsigned *d) {\n"
            "  unsigned low = d[0] & 7;\n"
            "  if (low > 9) { d[1] = 1; }\n"
            "}\n"
        )
        found = warnings_with(lint(src, rules=["dead-branch"]), "NCL0706")
        assert len(found) == 1
        assert found[0].status == "proved"
        assert "always false" in found[0].message
        live = (
            "_net_ _out_ void k(unsigned *d) {\n"
            "  unsigned low = d[0] & 7;\n"
            "  if (low > 3) { d[1] = 1; }\n"
            "}\n"
        )
        assert codes(lint(live, rules=["dead-branch"])) == []

    def test_truncation_suppressed_when_value_fits(self):
        src = (
            "_net_ _out_ void k(int *d) { short s = d[0] & 255; d[1] = s; }"
        )
        assert codes(lint(src, rules=["width-truncation"])) == []

    def test_truncation_proved_when_value_never_fits(self):
        src = (
            "_net_ _out_ void k(int *d) {"
            " short s = (d[0] & 255) + 70000; d[1] = s; }"
        )
        found = warnings_with(lint(src, rules=["width-truncation"]), "NCL0801")
        assert len(found) == 1
        assert found[0].status == "proved"
        assert found[0].severity is Severity.ERROR


class TestUsageRules:
    def test_unused_out_kernel(self):
        src = (
            "_net_ _out_ void used(int *d) { d[0] = 1; }\n"
            "_net_ _out_ void lonely(int *d) { d[0] = 1; }\n"
            "int main() { ncl::out(used, {0}); return 0; }\n"
        )
        found = warnings_with(lint(src, rules=["unused-kernel"]), "NCL0901")
        assert len(found) == 1 and "lonely" in found[0].message

    def test_no_host_code_means_no_usage_verdict(self):
        src = "_net_ _out_ void lonely(int *d) { d[0] = 1; }"
        assert codes(lint(src, rules=["unused-kernel"])) == []

    def test_unused_window_field(self):
        src = (
            "struct window { unsigned tag; };\n"
            "_net_ _out_ void k(int *d) { d[0] = 1; }\n"
        )
        found = warnings_with(
            lint(src, rules=["unused-window-field"]), "NCL0903"
        )
        assert len(found) == 1 and "tag" in found[0].message

    def test_read_window_field_is_clean(self):
        src = (
            "struct window { unsigned tag; };\n"
            "_net_ _out_ void k(int *d) { d[0] = window.tag; }\n"
        )
        assert codes(lint(src, rules=["unused-window-field"])) == []


class TestPisaResourceRule:
    TWO_ACCESSES = (
        '_net_ _at_("s1") unsigned c[4] = {0};\n'
        "_net_ _out_ void k(unsigned key) { c[0] = c[1] + 1; }\n"
    )

    def test_register_access_budget_tofino(self):
        result = lint(
            self.TWO_ACCESSES, profile="tofino-like", rules=["pisa-resources"]
        )
        found = warnings_with(result, "NCL0611")
        assert len(found) == 1 and "'c'" in found[0].message

    def test_register_access_budget_bmv2(self):
        assert codes(lint(self.TWO_ACCESSES, rules=["pisa-resources"])) == []

    def test_multiply_without_mul_support(self):
        src = "_net_ _out_ void k(int *d) { d[0] = d[1] * d[2]; }"
        result = lint(src, profile="tofino-like", rules=["pisa-resources"])
        assert [d.code for d in result.sink.sorted()] == ["NCL0610"]

    def test_power_of_two_multiply_is_fine(self):
        src = "_net_ _out_ void k(int *d) { d[0] = d[1] * 8; }"
        result = lint(src, profile="tofino-like", rules=["pisa-resources"])
        assert codes(result) == []


class TestErrorRecovery:
    def test_three_sema_errors_reported_together(self):
        src = (
            "_net_ ncl::Map<unsigned, unsigned, 64> M;\n"
            "_net_ _out_ void k(int *d) { d[0] = nope; }\n"
            "_net_ _out_ void j(int *d) { d[0] = alsonope; }\n"
        )
        result = lint(src)
        errors = [
            d for d in result.sink.sorted() if d.severity is Severity.ERROR
        ]
        assert len(errors) >= 3
        for diag in errors:
            assert diag.code.startswith("NCL")
            assert diag.primary is not None

    def test_broken_kernel_dropped_healthy_kernel_analyzed(self):
        src = (
            "_net_ _out_ void bad(int *d) { d[0] = nope; }\n"
            "_net_ _out_ void good(int *d) { int h = 0; h = d[0]; d[1] = h; }\n"
        )
        result = lint(src, rules=["dead-store"])
        assert result.module is not None
        assert "good" in result.module.functions
        assert "bad" not in result.module.functions
        assert len(warnings_with(result, "NCL0703")) == 1

    def test_syntax_error_is_a_single_diagnostic(self):
        result = lint("_net_ _out_ void k(int *d) {")
        assert len(result.sink) == 1
        assert result.sink.sorted()[0].code == "NCL0101"

    def test_werror_promotes(self):
        src = "_net_ _out_ void k(int *d) { int h = 0; h = d[0]; d[1] = h; }"
        result = lint(src, rules=["dead-store"], werror=True)
        assert result.sink.has_errors and result.exit_code == 1


class TestVerifierTargets:
    """The branch-target and phi-arity verifier checks (satellite)."""

    def test_br_to_foreign_block(self):
        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        other = ir.Function("g", ir.FunctionKind.HELPER, [], VOID)
        foreign = other.new_block("elsewhere")
        entry.append(ir.Br(foreign))
        with pytest.raises(IrError, match="br targets 'elsewhere"):
            verify_function(fn)

    def test_condbr_edge_to_foreign_block(self):
        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        local = fn.new_block("local")
        local.append(ir.Ret())
        other = ir.Function("g", ir.FunctionKind.HELPER, [], VOID)
        foreign = other.new_block("elsewhere")
        cond = entry.append(ir.Cast("bool", ir.Const(I32, 1), BOOL))
        entry.append(ir.CondBr(cond, foreign, local))
        with pytest.raises(IrError, match="condbr then-edge targets"):
            verify_function(fn)

    def test_phi_arity_mismatch(self):
        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        join = fn.new_block("join")
        cond = entry.append(ir.Cast("bool", ir.Const(I32, 1), BOOL))
        entry.append(ir.CondBr(cond, left, join))
        left.append(ir.Br(join))
        phi = ir.Phi(I32)
        phi.incoming.append((ir.Const(I32, 1), left))
        phi.block = join
        join.instrs.insert(0, phi)  # one incoming, two predecessors
        join.append(ir.Ret())
        with pytest.raises(
            IrError, match="incoming values but the block has 2 predecessors"
        ):
            verify_function(fn)
