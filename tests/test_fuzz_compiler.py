"""Differential compiler fuzzing.

Generates random NCL kernels (arithmetic over window data, switch state,
window metadata; nested branches; constant loops), compiles them through
the full nclc pipeline, and replays random window streams through the
compiled PISA program and the NIR reference interpreter side by side.
Any divergence in window data, forwarding verdicts, or register state is
a compiler bug.
"""

import random

import pytest

from repro.nclc import Compiler, WindowConfig

from tests.test_codegen import DifferentialRig

WINDOW = 4
STATE_LEN = 16


class KernelFuzzer:
    """Random kernel source generator (deterministic per seed)."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self.depth = 0

    def expr(self, depth: int = 0) -> str:
        r = self.rng
        leaves = [
            lambda: f"d[{r.randrange(WINDOW)}]",
            lambda: f"S[{r.randrange(STATE_LEN)}]",
            lambda: str(r.randrange(0, 64)),
            lambda: "window.seq",
            lambda: "limit",
        ]
        if depth >= 3 or r.random() < 0.4:
            return r.choice(leaves)()
        op = r.choice(["+", "-", "*", "&", "|", "^", ">>", "<<"])
        lhs = self.expr(depth + 1)
        rhs = self.expr(depth + 1)
        if op in (">>", "<<"):
            rhs = str(r.randrange(0, 8))  # keep shifts well-formed
        return f"({lhs} {op} {rhs})"

    def cond(self) -> str:
        op = self.rng.choice(["<", ">", "==", "!=", "<=", ">="])
        return f"({self.expr(2)} {op} {self.expr(2)})"

    def stmt(self, depth: int = 0) -> str:
        r = self.rng
        roll = r.random()
        if roll < 0.35:
            return f"d[{r.randrange(WINDOW)}] = {self.expr()};"
        if roll < 0.6:
            return f"S[{r.randrange(STATE_LEN)}] = {self.expr()};"
        if roll < 0.7:
            return f"S[{r.randrange(STATE_LEN)}] += {self.expr(2)};"
        if roll < 0.85 and depth < 2:
            then = " ".join(self.stmt(depth + 1) for _ in range(r.randrange(1, 3)))
            if r.random() < 0.5:
                other = " ".join(self.stmt(depth + 1) for _ in range(r.randrange(1, 3)))
                return f"if {self.cond()} {{ {then} }} else {{ {other} }}"
            return f"if {self.cond()} {{ {then} }}"
        if roll < 0.93 and depth < 1:
            n = r.randrange(1, 4)
            body = " ".join(self.stmt(depth + 2) for _ in range(r.randrange(1, 3)))
            var = f"i{r.randrange(1000)}"
            return (
                f"for (unsigned {var} = 0; {var} < {n}; ++{var}) {{ "
                + body.replace("window.seq", f"({var} + window.seq)")
                + " }"
            )
        return self.rng.choice(["_drop();", "_bcast();", "_reflect();", ""])

    def kernel(self) -> str:
        body = "\n  ".join(self.stmt() for _ in range(self.rng.randrange(3, 8)))
        return (
            f"_net_ _at_(\"s1\") unsigned S[{STATE_LEN}] = {{0}};\n"
            '_net_ _at_("s1") _ctrl_ unsigned limit;\n'
            "_net_ _out_ void fuzzed(unsigned *d) {\n"
            f"  {body}\n"
            "}\n"
        )


AND = "host h0\nhost h1\nswitch s1\nlink h0 s1\nlink s1 h1"


@pytest.mark.parametrize("seed", range(24))
def test_fuzzed_kernel_differential(seed):
    source = KernelFuzzer(seed).kernel()
    try:
        program = Compiler().compile(
            source,
            and_text=AND,
            windows={"fuzzed": WindowConfig(mask=(WINDOW,))},
        )
    except Exception as exc:  # rejected programs are fine; miscompiles are not
        from repro.errors import BackendRejection, ConformanceError

        assert isinstance(exc, (BackendRejection, ConformanceError)), (
            f"unexpected compile failure for seed {seed}:\n{source}\n{exc}"
        )
        return
    rig = DifferentialRig(program, "fuzzed")
    rig.set_ctrl("limit", seed * 3 + 1)
    rng = random.Random(seed ^ 0xF00D)
    for i in range(25):
        meta = {
            "seq": rng.randrange(8),
            "from": rng.randrange(2),
            "last": rng.randrange(2),
        }
        chunk = [rng.randrange(0, 2**32) for _ in range(WINDOW)]
        try:
            rig.run_window(meta, [chunk])
        except AssertionError:
            raise AssertionError(
                f"divergence for seed {seed} at window {i}:\n{source}"
            )


@pytest.mark.parametrize("seed", range(24))
def test_fuzzed_kernel_opt_differential(seed):
    """Per-seed -O0 vs -O2 NIR differential, with every -O2 pass
    additionally translation-validated during the compile (the
    ``--verify-opt`` path): a miscompiling pass fails the build with a
    TranslationValidationError naming it, which this test does *not*
    swallow as an acceptable rejection."""
    from tests.test_differential_opt import _make_schedule, _run_trajectory

    source = KernelFuzzer(seed).kernel()
    windows = {"fuzzed": WindowConfig(mask=(WINDOW,))}
    try:
        at_o0 = Compiler(opt_level=0).compile(
            source, and_text=AND, windows=windows
        )
        at_o2 = Compiler(opt_level=2, verify_opt=True).compile(
            source, and_text=AND, windows=windows
        )
    except Exception as exc:
        from repro.errors import BackendRejection, ConformanceError

        assert isinstance(exc, (BackendRejection, ConformanceError)), (
            f"unexpected compile failure for seed {seed}:\n{source}\n{exc}"
        )
        return

    case = dict(meta_ext={}, seq_range=8)
    schedule = _make_schedule(at_o0, case, random.Random(f"fuzz:{seed}"))
    trajectory_o0 = _run_trajectory(at_o0, schedule)
    trajectory_o2 = _run_trajectory(at_o2, schedule)
    assert len(trajectory_o0) == len(trajectory_o2) > 0
    for i, (step0, step2) in enumerate(zip(trajectory_o0, trajectory_o2)):
        assert step0 == step2, (
            f"-O0/-O2 divergence for seed {seed} at step {i}:\n{source}"
        )
