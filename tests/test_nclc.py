"""The nclc compiler driver, conformance stage, and IR versioning."""

import pytest

from repro.errors import BackendRejection, ConformanceError, RuntimeApiError
from repro.nclc import Compiler, WindowConfig
from repro.nclc.conformance import check_module
from repro.nclc.versioning import version_module
from repro.andspec import parse_and
from repro.nir import ir

from tests.conftest import (
    ALLREDUCE_DEFINES,
    ALLREDUCE_SRC,
    STAR_AND,
    lowered_module,
)


class TestDriver:
    def test_compiles_with_default_and(self):
        program = Compiler().compile(
            ALLREDUCE_SRC,
            windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            defines=ALLREDUCE_DEFINES,
        )
        # default AND synthesizes h0 -- s1 -- h1
        assert {n.label for n in program.and_spec.hosts} == {"h0", "h1"}
        assert "s1" in program.switch_programs

    def test_stage_times_cover_trajectory(self, allreduce_program):
        stages = set(allreduce_program.stage_times)
        assert {
            "frontend",
            "irgen",
            "conformance",
            "versioning",
            "switch-opt",
            "codegen+backend",
        } <= stages

    def test_kernel_ids_stable(self, allreduce_program):
        assert allreduce_program.kernel_ids == {"allreduce": 1}
        assert allreduce_program.kernel_by_id[1] == "allreduce"

    def test_paired_in_kernel(self, allreduce_program):
        assert allreduce_program.paired_in_kernel("allreduce") == "result"

    def test_window_config_mask_must_match_params(self):
        with pytest.raises(RuntimeApiError, match="mask"):
            Compiler().compile(
                ALLREDUCE_SRC,
                and_text=STAR_AND,
                windows={"allreduce": WindowConfig(mask=(4, 4), ext={"len": 4})},
                defines=ALLREDUCE_DEFINES,
            )

    def test_ext_fields_require_values(self):
        with pytest.raises(RuntimeApiError, match="len"):
            Compiler().compile(
                ALLREDUCE_SRC,
                and_text=STAR_AND,
                windows={"allreduce": WindowConfig(mask=(4,))},
                defines=ALLREDUCE_DEFINES,
            )

    def test_unknown_window_config_rejected(self):
        with pytest.raises(RuntimeApiError, match="unknown kernels"):
            Compiler().compile(
                ALLREDUCE_SRC,
                and_text=STAR_AND,
                windows={
                    "allreduce": WindowConfig(mask=(4,), ext={"len": 4}),
                    "ghost": WindowConfig(),
                },
                defines=ALLREDUCE_DEFINES,
            )

    def test_missing_at_label_in_and(self):
        with pytest.raises(Exception, match="s1"):
            Compiler().compile(
                ALLREDUCE_SRC,
                and_text="host a\nhost b\nswitch sX\nlink a sX\nlink sX b",
                windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
                defines=ALLREDUCE_DEFINES,
            )

    def test_tofino_like_rejects_allreduce_without_splitting(self):
        """On the hardware-flavoured profile, a 4-element window needs 4
        accesses to `accum` in one packet: rejected with actionable
        feedback (the paper's S6 memory-pressure discussion) unless the
        arch-specific register-splitting transformation is allowed."""
        with pytest.raises(BackendRejection) as exc:
            Compiler(profile="tofino-like", split_arrays=False).compile(
                ALLREDUCE_SRC,
                and_text=STAR_AND,
                windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
                defines=ALLREDUCE_DEFINES,
            )
        assert any("reg_accum" in r for r in exc.value.reasons)

    def test_tofino_like_accepts_allreduce_with_splitting(self):
        """With split_arrays="auto" (default), the compiler performs the
        NetCache/SwitchML per-offset split and the chip accepts."""
        program = Compiler(profile="tofino-like").compile(
            ALLREDUCE_SRC,
            and_text=STAR_AND,
            windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            defines=ALLREDUCE_DEFINES,
        )
        splits = program.split_info["s1"]
        assert [s.name for s in splits] == ["accum"]
        assert splits[0].stride == 4
        report = program.reports["s1"]
        assert all(v <= 1 for v in report.max_register_accesses.values())

    def test_compile_convenience_wrapper(self):
        import repro

        program = repro.compile_ncl(
            "_net_ _at_(\"s1\") unsigned total[1] = {0};\n"
            "_net_ _out_ void count(unsigned *d) { total[0] += d[0]; }"
        )
        assert "count" in program.kernel_ids


class TestConformance:
    def test_recursion_rejected(self):
        mod = lowered_module(
            "int f(int x) { return f(x - 1); }\n"
            "_net_ _out_ void k(int *d) { d[0] = f(d[0]); }"
        )
        with pytest.raises(ConformanceError, match="recursive"):
            check_module(mod)

    def test_mutual_recursion_rejected(self):
        mod = lowered_module(
            "int g(int x);\n"
            "int f(int x) { return g(x); }\n"
            "int g(int x) { return f(x); }\n"
            "_net_ _out_ void k(int *d) { d[0] = f(d[0]); }"
        )
        with pytest.raises(ConformanceError, match="recursive"):
            check_module(mod)

    def test_dynamic_division_rejected(self):
        mod = lowered_module("_net_ _out_ void k(int *d) { d[0] = d[0] / d[1]; }")
        with pytest.raises(ConformanceError, match="divisor"):
            check_module(mod)

    def test_pow2_division_allowed(self):
        mod = lowered_module("_net_ _out_ void k(unsigned *d) { d[0] = d[0] / 8; }")
        check_module(mod)

    def test_location_conflict_rejected(self):
        mod = lowered_module(
            '_net_ _at_("s2") int other[4];\n'
            '_net_ _out_ _at_("s1") void k(int *d) { d[0] = other[0]; }'
        )
        with pytest.raises(ConformanceError, match="location conflict"):
            check_module(mod)

    def test_unknown_pass_label_rejected(self):
        mod = lowered_module('_net_ _out_ void k(int *d) { _pass("nowhere"); }')
        spec = parse_and("host a\nswitch s1\nhost b\nlink a s1\nlink s1 b")
        with pytest.raises(ConformanceError, match="nowhere"):
            check_module(mod, spec)

    def test_state_pinned_to_host_rejected(self):
        mod = lowered_module(
            '_net_ _at_("a") int x[2];\n_net_ _out_ void k(int *d) { d[0] = x[0]; }'
        )
        spec = parse_and("host a\nswitch s1\nlink a s1")
        with pytest.raises(ConformanceError, match="host"):
            check_module(mod, spec)


class TestVersioning:
    MULTI = (
        '_net_ _at_("s1") unsigned a[4] = {0};\n'
        '_net_ _at_("s2") unsigned b[4] = {0};\n'
        "_net_ unsigned everywhere[4] = {0};\n"
        '_net_ _out_ _at_("s1") void only1(unsigned *d) { a[0] += d[0]; }\n'
        '_net_ _out_ _at_("s2") void only2(unsigned *d) { b[0] += d[0]; }\n'
        "_net_ _out_ void spmd(unsigned *d) {\n"
        '  if (location.id == _locid("s1")) { d[0] = 111; }\n'
        "  else { d[0] = 222; }\n"
        "}"
    )
    AND = (
        "host h0\nswitch s1\nswitch s2\nhost h1\n"
        "link h0 s1\nlink s1 s2\nlink s2 h1"
    )

    def versions(self):
        mod = lowered_module(self.MULTI)
        return {v.label: v for v in version_module(mod, parse_and(self.AND))}

    def test_one_module_per_switch(self):
        versions = self.versions()
        assert set(versions) == {"s1", "s2"}

    def test_pinned_kernels_filtered(self):
        versions = self.versions()
        assert "only1" in versions["s1"].module.functions
        assert "only1" not in versions["s2"].module.functions
        assert "only2" in versions["s2"].module.functions

    def test_location_less_kernel_everywhere(self):
        versions = self.versions()
        assert "spmd" in versions["s1"].module.functions
        assert "spmd" in versions["s2"].module.functions

    def test_pinned_state_filtered(self):
        versions = self.versions()
        assert "a" in versions["s1"].module.globals
        assert "a" not in versions["s2"].module.globals
        assert "everywhere" in versions["s1"].module.globals
        assert "everywhere" in versions["s2"].module.globals

    def test_location_split_resolves_branches(self):
        """Versioning + folding implements the paper's location splitting:
        the location.id branch collapses to a single arm per switch."""
        versions = self.versions()
        for label, want in (("s1", 111), ("s2", 222)):
            fn = versions[label].module.functions["spmd"]
            from repro.nir.passes import optimize_switch

            optimize_switch(fn)
            stores = [
                i for i in fn.instructions() if isinstance(i, ir.StoreParam)
            ]
            assert len(stores) == 1
            assert isinstance(stores[0].value, ir.Const)
            assert stores[0].value.value == want

    def test_spmd_execution_differs_by_location(self):
        src = (
            "_net_ unsigned hits[2] = {0};\n"
            "_net_ _out_ void probe(unsigned *d) {\n"
            '  if (location.id == _locid("s1")) hits[0] += 1;\n'
            "  else hits[1] += 1;\n"
            "}"
        )
        program = Compiler().compile(
            src,
            and_text=self.AND,
            windows={"probe": WindowConfig(mask=(1,))},
        )
        from repro.runtime import Cluster

        cluster = Cluster.from_program(program)
        cluster.host("h0").out("probe", [[1]], dst="h1")
        cluster.run()
        assert cluster.controller.register_dump("hits", label="s1") == [1, 0]
        assert cluster.controller.register_dump("hits", label="s2") == [0, 1]
