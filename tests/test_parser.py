"""NCL parser: declarations, specifiers, statements, expressions."""

import pytest

from repro.errors import NclSyntaxError
from repro.ncl import ast
from repro.ncl.parser import const_eval, parse
from repro.ncl import types as T


class TestGlobals:
    def test_net_array_with_at(self):
        prog = parse('_net_ _at_("s1") int accum[64] = {0};')
        g = prog.globals[0]
        assert g.is_net and not g.is_ctrl
        assert g.at_label == "s1"
        assert g.ty == T.ArrayType(T.I32, 64)

    def test_ctrl_variable(self):
        prog = parse('_net_ _at_("s1") _ctrl_ unsigned nworkers;')
        g = prog.globals[0]
        assert g.is_net and g.is_ctrl
        assert g.ty == T.U32

    def test_specifier_order_is_free(self):
        a = parse('_net_ _ctrl_ _at_("s1") unsigned x;').globals[0]
        b = parse('_net_ _at_("s1") _ctrl_ unsigned x;').globals[0]
        assert (a.is_ctrl, a.at_label) == (b.is_ctrl, b.at_label)

    def test_2d_array(self):
        g = parse("_net_ char Cache[256][128];").globals[0]
        assert g.ty == T.ArrayType(T.ArrayType(T.CHAR, 128), 256)

    def test_map_global(self):
        g = parse('_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 256> Idx;').globals[0]
        assert g.ty == T.MapType(T.U64, T.U8, 256)

    def test_bloom_global(self):
        g = parse('_net_ _at_("s1") ncl::BloomFilter<1024, 3> BF;').globals[0]
        assert g.ty == T.BloomFilterType(1024, 3)

    def test_const_dims_with_arithmetic(self):
        g = parse("int a[DATA/WIN];", defines={"DATA": 64, "WIN": 8}).globals[0]
        assert g.ty == T.ArrayType(T.I32, 8)

    def test_host_global_plain(self):
        g = parse("int counter = 3;").globals[0]
        assert not g.is_net

    def test_braced_init_nested(self):
        g = parse("int m[2][2] = {{1, 2}, {3, 4}};").globals[0]
        assert isinstance(g.init, list) and len(g.init) == 2


class TestKernels:
    def test_out_kernel(self):
        fn = parse("_net_ _out_ void k(int *data) { _drop(); }").functions[0]
        assert fn.kernel_kind is ast.KernelKind.OUT
        assert fn.params[0].ty == T.PointerType(T.I32)

    def test_out_kernel_implicit_void(self):
        fn = parse("_net_ _out_ k(uint64_t key) { }").functions[0]
        assert fn.ret.is_void
        assert fn.kernel_kind is ast.KernelKind.OUT

    def test_in_kernel_with_ext(self):
        fn = parse(
            "_net_ _in_ void r(int *d, _ext_ int *h, _ext_ bool *done) { }"
        ).functions[0]
        assert fn.kernel_kind is ast.KernelKind.IN
        assert [p.ext for p in fn.params] == [False, True, True]

    def test_kernel_at_location(self):
        fn = parse('_net_ _out_ _at_("s2") void k(int *d) { }').functions[0]
        assert fn.at_label == "s2"

    def test_out_without_net_rejected(self):
        with pytest.raises(NclSyntaxError):
            parse("_out_ void k(int *d) { }")

    def test_plain_function(self):
        fn = parse("int add(int a, int b) { return a + b; }").functions[0]
        assert fn.kernel_kind is None
        assert fn.ret == T.I32


class TestWindowExtension:
    def test_window_struct(self):
        prog = parse("struct window { unsigned len; unsigned short tag; };")
        ext = prog.window_ext
        assert ext is not None
        assert ext.fields == [("len", T.U32), ("tag", T.IntType(16, False))]

    def test_other_struct_rejected(self):
        with pytest.raises(NclSyntaxError):
            parse("struct foo { int x; };")

    def test_non_scalar_field_rejected(self):
        with pytest.raises(NclSyntaxError):
            parse("struct window { int xs[4]; };")


def first_stmt(body_src: str) -> ast.Stmt:
    prog = parse("void f() { " + body_src + " }")
    return prog.functions[0].body.stmts[0]


class TestStatements:
    def test_if_else_chain(self):
        stmt = first_stmt("if (1) ; else if (2) ; else ;")
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.orelse, ast.If)

    def test_if_cond_decl(self):
        prog = parse(
            '_net_ ncl::Map<uint64_t, uint8_t, 4> M;\n'
            "_net_ _out_ void k(uint64_t key) { if (auto *idx = M[key]) { } }"
        )
        stmt = prog.functions[0].body.stmts[0]
        assert isinstance(stmt, ast.If)
        assert stmt.cond_decl is not None and stmt.cond_decl.is_auto

    def test_for_loop_parts(self):
        stmt = first_stmt("for (unsigned i = 0; i < 8; ++i) ;")
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.DeclStmt)
        assert stmt.cond is not None and stmt.step is not None

    def test_while_and_do_while(self):
        assert isinstance(first_stmt("while (1) ;"), ast.While)
        desugared = first_stmt("do { } while (0);")
        assert isinstance(desugared, ast.Block)  # body; while(...)

    def test_break_continue(self):
        stmt = first_stmt("while (1) { break; }")
        assert isinstance(stmt.body.stmts[0], ast.Break)

    def test_return_value(self):
        prog = parse("int f() { return 1 + 2; }")
        ret = prog.functions[0].body.stmts[0]
        assert isinstance(ret, ast.Return) and ret.value is not None

    def test_missing_semicolon_raises(self):
        with pytest.raises(NclSyntaxError):
            parse("void f() { int x = 1 }")

    def test_unterminated_block_raises(self):
        with pytest.raises(NclSyntaxError):
            parse("void f() { if (1) {")


def expr_of(src: str) -> ast.Expr:
    stmt = first_stmt(src + ";")
    assert isinstance(stmt, ast.ExprStmt)
    return stmt.expr


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = expr_of("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert const_eval(e) == 7

    def test_precedence_shift_vs_relational(self):
        assert const_eval(expr_of("1 << 2 < 8")) == 1  # (1<<2) < 8

    def test_logical_binding(self):
        assert const_eval(expr_of("1 || 0 && 0")) == 1  # && binds tighter

    def test_ternary(self):
        assert const_eval(expr_of("1 ? 10 : 20")) == 10

    def test_unary_chain(self):
        assert const_eval(expr_of("-~0")) == 1
        assert const_eval(expr_of("!!5")) == 1

    def test_parenthesized(self):
        assert const_eval(expr_of("(1 + 2) * 3")) == 9

    def test_assignment_right_assoc(self):
        e = expr_of("a = b = 1")
        assert isinstance(e, ast.Assign)
        assert isinstance(e.value, ast.Assign)

    def test_compound_assign_ops(self):
        for op in ("+=", "-=", "*=", "&=", "|=", "^=", "<<=", ">>="):
            e = expr_of(f"a {op} 2")
            assert isinstance(e, ast.Assign) and e.op == op

    def test_postfix_and_prefix_incdec(self):
        post = expr_of("a++")
        pre = expr_of("++a")
        assert isinstance(post, ast.Unary) and post.postfix
        assert isinstance(pre, ast.Unary) and not pre.postfix

    def test_index_chain(self):
        e = expr_of("m[1][2]")
        assert isinstance(e, ast.Index) and isinstance(e.base, ast.Index)

    def test_member_access(self):
        e = expr_of("window.seq")
        assert isinstance(e, ast.Member) and e.field == "seq"

    def test_namespaced_call(self):
        e = expr_of('ncl::ctrl_wr(x, 16)')
        assert isinstance(e, ast.Call) and e.name == "ncl::ctrl_wr"

    def test_call_with_braced_list_arg(self):
        e = expr_of("ncl::out(k, {a, b}, 4)")
        assert isinstance(e.args[1], ast.Call) and e.args[1].name == "__list__"

    def test_sizeof_folds(self):
        assert const_eval(expr_of("sizeof(int)")) == 4
        assert const_eval(expr_of("sizeof(uint64_t)")) == 8

    def test_cast(self):
        e = expr_of("(unsigned) x")
        assert isinstance(e, ast.Cast) and e.target == T.U32

    def test_address_of_index(self):
        e = expr_of("&accum[base]")
        assert isinstance(e, ast.Unary) and e.op == "&"


class TestConstEval:
    @pytest.mark.parametrize(
        "src,value",
        [
            ("1 + 2 * 3", 7),
            ("(7 / 2)", 3),
            ("-7 / 2", -3),
            ("7 % 3", 1),
            ("1 << 10", 1024),
            ("0xFF & 0x0F", 0x0F),
            ("1 == 1", 1),
            ("3 > 4", 0),
            ("5 / 0", None),  # not constant-foldable: leaves the trap
        ],
    )
    def test_values(self, src, value):
        assert const_eval(expr_of(src)) == value

    def test_identifiers_not_constant(self):
        assert const_eval(expr_of("x + 1")) is None
