"""The event core: timing-wheel vs reference-heap scheduler semantics.

The wheel must be *observably identical* to the heap -- same dispatch
order (including (when, seq) tie-breaks), same ``run(until)`` stopping
behavior, same cancellation semantics -- only faster.  These tests drive
both schedulers through the same programs and compare.
"""

import random

import pytest

from repro.errors import SimulationError
from repro.net.events import (
    SCHEDULERS, Simulator, default_scheduler,
)


def record_run(scheduler: str, program) -> list:
    """Run *program* (sim, log) under *scheduler*, return the log."""
    sim = Simulator(scheduler=scheduler)
    log = []
    program(sim, log)
    return log


class TestDifferentialOrder:
    """Same schedule sequence => byte-identical dispatch order."""

    def _compare(self, program):
        runs = [record_run(s, program) for s in SCHEDULERS]
        assert runs[0] == runs[1]
        assert runs[0], "program dispatched nothing"

    def test_random_delays_identical_order(self):
        def program(sim, log):
            rng = random.Random(11)
            for i in range(2000):
                delay = rng.random() * 1e-3
                sim.schedule(delay, lambda i=i: log.append((sim.now(), i)))
            sim.run()

        self._compare(program)

    def test_equal_times_tie_break_by_seq(self):
        def program(sim, log):
            # Many events at exactly the same instant: dispatch must be
            # schedule order (the seq tie-break).
            for round_at in (0.0, 1e-6, 5e-5, 1.0):
                for i in range(50):
                    sim.schedule_at(
                        round_at, lambda i=i: log.append((sim.now(), i))
                    )
            sim.run()

        self._compare(program)

    def test_reschedule_from_callbacks(self):
        def program(sim, log):
            rng = random.Random(3)

            def make(tag):
                def fire():
                    log.append((sim.now(), tag))
                    if tag < 3000:
                        sim.schedule((tag % 17) * 1e-7 + 1e-9, make(tag + 500))
                return fire

            for i in range(500):
                sim.schedule(rng.random() * 2e-5, make(i))
            sim.run()

        self._compare(program)

    def test_far_future_overflow_events(self):
        def program(sim, log):
            # Mix near events with ones far past the wheel horizon
            # (default horizon is ~8.4ms; these reach seconds out).
            rng = random.Random(5)
            for i in range(800):
                delay = 10.0 ** rng.uniform(-7, 1)
                sim.schedule(delay, lambda i=i: log.append((round(sim.now(), 12), i)))
            sim.run()

        self._compare(program)

    def test_run_until_stop_and_resume(self):
        def program(sim, log):
            rng = random.Random(9)
            for i in range(500):
                sim.schedule(rng.random() * 1e-2, lambda i=i: log.append((sim.now(), i)))
            # stop mid-stream several times; schedule *earlier* events
            # between segments (they land before the wheel's current slot)
            for until in (1e-3, 2.5e-3, 7e-3):
                sim.run(until=until)
                log.append(("stopped", sim.now()))
                for j in range(20):
                    sim.schedule(
                        rng.random() * 1e-4,
                        lambda j=j: log.append((sim.now(), "late", j)),
                    )
            sim.run()

        self._compare(program)

    def test_cancellations_identical(self):
        def program(sim, log):
            rng = random.Random(13)
            timers = []
            for i in range(1000):
                timers.append(
                    sim.schedule_cancellable(
                        rng.random() * 1e-3,
                        lambda i=i: log.append((sim.now(), i)),
                    )
                )
            for i in range(0, 1000, 3):
                timers[i].cancel()
            sim.run()

        self._compare(program)


class TestRunSemantics:
    @pytest.fixture(params=SCHEDULERS)
    def sim(self, request):
        return Simulator(scheduler=request.param)

    def test_run_until_sets_now_even_when_idle(self, sim):
        sim.run(until=0.5)
        assert sim.now() == 0.5

    def test_run_until_does_not_consume_later_events(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run(until=0.5)
        assert fired == [] and sim.now() == 0.5
        sim.run()
        assert fired == [1] and sim.now() == 1.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError, match="in the past"):
            sim.schedule(-1e-9, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1e-6, lambda: None)
        sim.run()
        with pytest.raises(SimulationError, match="cannot schedule at"):
            sim.schedule_at(0.0, lambda: None)

    def test_max_events_livelock_guard(self, sim):
        def again():
            sim.schedule(1e-9, again)

        sim.schedule(1e-9, again)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=1000)

    def test_step_dispatches_one_event(self, sim):
        fired = []
        sim.schedule(1e-6, lambda: fired.append("a"))
        sim.schedule(2e-6, lambda: fired.append("b"))
        assert sim.step() is True
        assert fired == ["a"]
        assert sim.step() is True
        assert fired == ["a", "b"]
        assert sim.step() is False

    def test_events_processed_counts(self, sim):
        for _ in range(7):
            sim.schedule(1e-6, lambda: None)
        sim.run()
        assert sim.events_processed == 7


class TestCancellation:
    @pytest.fixture(params=SCHEDULERS)
    def sim(self, request):
        return Simulator(scheduler=request.param)

    def test_cancelled_event_never_fires(self, sim):
        fired = []
        timer = sim.schedule_cancellable(1e-6, lambda: fired.append(1))
        assert timer.active
        timer.cancel()
        assert not timer.active
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_run_until_idle_skips_cancelled(self, sim):
        """Regression: run_until_idle used to pop records unconditionally,
        firing lazily-cancelled callbacks."""
        fired = []
        timer = sim.schedule_cancellable(1e-6, lambda: fired.append("dead"))
        sim.schedule(2e-6, lambda: fired.append("live"))
        timer.cancel()
        sim.run_until_idle()
        assert fired == ["live"]

    def test_step_skips_cancelled(self, sim):
        fired = []
        timer = sim.schedule_cancellable(1e-6, lambda: fired.append("dead"))
        sim.schedule(2e-6, lambda: fired.append("live"))
        timer.cancel()
        assert sim.step() is True
        assert fired == ["live"]
        assert sim.step() is False

    def test_cancel_is_idempotent(self, sim):
        timer = sim.schedule_cancellable(1e-6, lambda: None)
        timer.cancel()
        timer.cancel()  # no error, no double counting
        assert sim.pending == 0

    def test_pending_tracks_cancellations(self, sim):
        timers = [
            sim.schedule_cancellable(1e-6 * (i + 1), lambda: None)
            for i in range(10)
        ]
        assert sim.pending == 10
        for t in timers[:4]:
            t.cancel()
        assert sim.pending == 6
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 6

    def test_stale_timer_after_record_reuse(self, sim):
        """A Timer held past its event's dispatch must stay dead even
        after the slab recycles the record for a new event."""
        timer = sim.schedule_cancellable(1e-6, lambda: None)
        sim.run()
        assert not timer.active
        fired = []
        sim.schedule(1e-6, lambda: fired.append(1))  # likely reuses the record
        timer.cancel()  # must be a no-op on the recycled record
        sim.run()
        assert fired == [1]


class TestConfiguration:
    def test_scheduler_selection_validates(self):
        with pytest.raises(SimulationError, match="unknown scheduler"):
            Simulator(scheduler="quantum")

    def test_wheel_parameters_validate(self):
        with pytest.raises(SimulationError):
            Simulator(slot_width=0.0)
        with pytest.raises(SimulationError):
            Simulator(wheel_slots=1000)  # not a power of two

    def test_default_scheduler_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHED", raising=False)
        assert default_scheduler() == "wheel"
        monkeypatch.setenv("REPRO_SCHED", "heap")
        assert default_scheduler() == "heap"
        assert Simulator().scheduler == "heap"
        monkeypatch.setenv("REPRO_SCHED", "bogus")
        with pytest.raises(SimulationError):
            default_scheduler()

    def test_tiny_wheel_still_correct(self):
        """A 2-slot wheel forces constant horizon rotation + overflow
        pulls; order must still match the heap."""
        def program(sim, log):
            rng = random.Random(21)
            for i in range(400):
                sim.schedule(
                    rng.random() * 1e-2, lambda i=i: log.append((sim.now(), i))
                )
            sim.run()

        heap_log = record_run("heap", program)
        sim = Simulator(scheduler="wheel", wheel_slots=2)
        wheel_log = []
        program(sim, wheel_log)
        assert wheel_log == heap_log
