"""The continuous profiler: attribution, throughput meters, exports,
and the disabled-overhead guard."""

import json
import time

import pytest

from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays
from repro.net.events import Simulator
from repro.obs import Observability, Profiler
from repro.obs.profile import split_label


def profiled_allreduce(n_workers=4, data_len=512):
    profiler = Profiler()
    job = AllReduceJob(
        n_workers, data_len, 8, obs=Observability(profiler=profiler)
    )
    arrays = random_arrays(n_workers, data_len, seed=n_workers)
    results, _ = job.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    return profiler, job


class TestAttribution:
    def test_named_attribution_at_least_95_percent(self):
        """The acceptance bar: on the Fig 4 AllReduce round every hot
        event comes from a labelled schedule site, so >= 95% of the run
        loop's wall time lands on named components."""
        profiler, _ = profiled_allreduce()
        assert profiler.attributed_fraction() >= 0.95
        assert profiler.events > 0
        assert profiler.total_wall > 0

    def test_labels_cover_switch_and_hosts(self):
        profiler, _ = profiled_allreduce(n_workers=2)
        components = {split_label(e["label"])[0:2]
                      for e in profiler.report()["entries"]}
        assert ("switch", "s1") in components
        assert ("host", "w0") in components
        assert ("host", "w1") in components

    def test_unlabelled_events_fall_back_to_qualname(self):
        sim = Simulator()
        profiler = Profiler()
        sim.obs = Observability(profiler=profiler)

        def mystery():
            pass

        sim.schedule(0.0, mystery)  # no label
        sim.schedule(1e-6, lambda: None, label="host;h0;deliver")
        sim.run()
        labels = {e["label"] for e in profiler.report()["entries"]}
        assert "host;h0;deliver" in labels
        assert any(lbl.startswith("other;;") and "mystery" in lbl
                   for lbl in labels)
        # the fallback bucket counts toward attributed but not named wall
        assert profiler.attributed_wall > profiler.named_wall

    def test_step_driven_simulation_is_attributed_too(self):
        sim = Simulator()
        profiler = Profiler()
        sim.obs = Observability(profiler=profiler)
        sim.schedule(0.0, lambda: None, label="host;h0;rx")
        sim.schedule(1e-6, lambda: None, label="host;h0;rx")
        while sim.step():
            pass
        assert profiler.events == 2
        # no run loop ran, so the denominator is the attributed sum
        assert profiler.loop_wall == 0.0
        assert profiler.total_wall == profiler.attributed_wall

    def test_split_label_pads_missing_parts(self):
        assert split_label("switch;s1;pipeline") == ("switch", "s1", "pipeline")
        assert split_label("ctrl") == ("ctrl", "", "")


class TestMeters:
    def test_throughput_meters(self):
        profiler, job = profiled_allreduce()
        assert profiler.events_per_sec() > 0
        assert profiler.packets_per_sec() > 0
        # every packet arrival is an event, so packets/sec < events/sec
        assert profiler.packets_per_sec() < profiler.events_per_sec()
        # packets/sec counts exactly the rx-handler events
        rx = sum(e["count"] for e in profiler.report()["entries"]
                 if e["handler"] == "rx")
        frames = sum(lk.stats.frames for lk in job.cluster.network.links)
        assert rx == frames

    def test_empty_profiler_meters_are_zero(self):
        profiler = Profiler()
        assert profiler.events_per_sec() == 0.0
        assert profiler.packets_per_sec() == 0.0
        assert profiler.attributed_fraction() == 0.0


class TestReport:
    def test_report_schema_and_ordering(self):
        profiler, _ = profiled_allreduce(n_workers=2)
        report = profiler.report()
        assert report["schema"] == "repro.profile/1"
        for key in ("total_wall_s", "attributed_fraction", "events",
                    "events_per_sec", "packets_per_sec", "entries"):
            assert key in report
        walls = [e["wall_s"] for e in report["entries"]]
        assert walls == sorted(walls, reverse=True)
        assert abs(sum(e["wall_pct"] for e in report["entries"])
                   - 100.0 * report["attributed_wall_s"]
                   / report["total_wall_s"]) < 1e-6
        json.dumps(report)  # JSON-ready

    def test_keep_samples_ring_is_bounded(self):
        profiler = Profiler(keep_samples=3)
        for i in range(10):
            profiler.record("host;h0;rx", None, i * 1e-6, 1e-7)
        assert len(profiler.samples) == 3
        assert profiler.samples[-1][1] == pytest.approx(9e-6)
        assert profiler.events == 10


class TestExports:
    def test_collapsed_stack_lines(self):
        profiler, _ = profiled_allreduce(n_workers=2)
        text = profiler.collapsed()
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("sim;")
            assert int(value) >= 1  # integer microseconds, never zero
        # one line per label, sorted (the collapsed format dedups stacks)
        stacks = [ln.rsplit(" ", 1)[0] for ln in lines]
        assert stacks == sorted(stacks)
        assert len(stacks) == len(set(stacks))

    def test_chrome_trace_loads_and_is_well_formed(self):
        profiler, _ = profiled_allreduce(n_workers=2)
        doc = json.loads(json.dumps(profiler.chrome_dict()))
        events = doc["traceEvents"]
        spans = [e for e in events if e["ph"] == "X"]
        metas = [e for e in events if e["ph"] == "M"]
        assert spans and metas
        names = {e["args"]["name"] for e in metas
                 if e["name"] == "thread_name"}
        assert "switch s1" in names
        # spans on one tid tile without overlap
        by_tid = {}
        for span in spans:
            by_tid.setdefault(span["tid"], []).append(span)
        for tid_spans in by_tid.values():
            tid_spans.sort(key=lambda s: s["ts"])
            for a, b in zip(tid_spans, tid_spans[1:]):
                assert a["ts"] + a["dur"] <= b["ts"] + 1e-9

    def test_write_json_round_trips(self, tmp_path):
        profiler, _ = profiled_allreduce(n_workers=2)
        path = tmp_path / "run.profile.json"
        with open(path, "w") as fp:
            profiler.write_json(fp)
        assert json.loads(path.read_text())["schema"] == "repro.profile/1"


class TestDisabledOverhead:
    def test_profiler_off_guard_is_near_free(self):
        """With no profiler/sampler the run loop is selected once per
        ``run()`` by two attribute reads; assert that check's cost, then
        bound the aggregate tax on a real AllReduce round by charging it
        (absurdly generously) once per simulated event: still < 1% of
        the round's wall-clock, mirroring the INT-off guard."""
        sim = Simulator()
        n = 100_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                obs = sim.obs
                profiler = obs.profiler if obs.enabled else None
                sampler = obs.sampler if obs.enabled else None
            best = min(best, (time.perf_counter() - t0) / n)
        assert profiler is None and sampler is None
        assert best < 5e-6  # 5 us bound; real cost is ~100 ns

        job = AllReduceJob(4, 512, 8)  # untraced: the fast path
        arrays = random_arrays(4, 512, seed=4)
        t0 = time.perf_counter()
        results, _ = job.run_round(arrays)
        round_wall = time.perf_counter() - t0
        assert results[0] == AllReduceJob.expected(arrays)
        events = job.cluster.network.sim.events_processed
        assert best * events < 0.01 * round_wall
