"""The NCL type system."""

import pytest

from repro.errors import NclTypeError
from repro.ncl import types as T


class TestEquality:
    def test_int_types_value_equality(self):
        assert T.IntType(32, False) == T.U32
        assert T.IntType(32, True) != T.U32
        assert hash(T.IntType(64, True)) == hash(T.I64)

    def test_array_equality(self):
        assert T.ArrayType(T.I32, 8) == T.ArrayType(T.I32, 8)
        assert T.ArrayType(T.I32, 8) != T.ArrayType(T.I32, 9)

    def test_pointer_equality(self):
        assert T.PointerType(T.U8) == T.PointerType(T.U8)
        assert T.PointerType(T.U8) != T.PointerType(T.I8)


class TestArrays:
    def test_total_elements_2d(self):
        ty = T.ArrayType(T.ArrayType(T.U8, 128), 256)
        assert ty.total_elements == 256 * 128
        assert ty.scalar_element == T.U8

    def test_zero_length_rejected(self):
        with pytest.raises(NclTypeError):
            T.ArrayType(T.I32, 0)


class TestMapType:
    def test_valid_map(self):
        m = T.MapType(T.U64, T.U8, 256)
        assert m.capacity == 256

    def test_non_integer_key_rejected(self):
        with pytest.raises(NclTypeError):
            T.MapType(T.PointerType(T.U8), T.U8, 4)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(NclTypeError):
            T.MapType(T.U64, T.U8, 0)


class TestCommonType:
    def test_wider_wins(self):
        assert T.common_type(T.U8, T.U32) == T.U32
        assert T.common_type(T.I64, T.I16) == T.I64

    def test_promotion_to_int(self):
        assert T.common_type(T.U8, T.I8) == T.I32
        assert T.common_type(T.BOOL, T.BOOL) == T.I32

    def test_equal_width_unsigned_wins(self):
        assert T.common_type(T.I32, T.U32) == T.U32
        assert T.common_type(T.U64, T.I64) == T.U64

    def test_signed_i64_vs_u32(self):
        assert T.common_type(T.I64, T.U32) == T.I64


class TestAssignable:
    def test_scalar_conversions_allowed(self):
        assert T.assignable(T.U8, T.I64)
        assert T.assignable(T.I32, T.BOOL)

    def test_exact_pointer_only(self):
        assert T.assignable(T.PointerType(T.I32), T.PointerType(T.I32))
        assert not T.assignable(T.PointerType(T.I32), T.PointerType(T.U32))

    def test_array_not_assignable(self):
        assert not T.assignable(T.ArrayType(T.I32, 4), T.ArrayType(T.I32, 4))


class TestSizeof:
    @pytest.mark.parametrize(
        "ty,size",
        [
            (T.U8, 1),
            (T.I16, 2),
            (T.U32, 4),
            (T.I64, 8),
            (T.BOOL, 1),
            (T.ArrayType(T.I32, 10), 40),
            (T.ArrayType(T.ArrayType(T.U8, 128), 4), 512),
            (T.PointerType(T.I32), 8),
        ],
    )
    def test_sizes(self, ty, size):
        assert T.sizeof(ty) == size

    def test_scalar_bits(self):
        assert T.scalar_bits(T.U16) == 16
        assert T.scalar_bits(T.BOOL) == 8
        with pytest.raises(NclTypeError):
            T.scalar_bits(T.ArrayType(T.I32, 2))

    def test_builtin_name_table(self):
        assert T.BUILTIN_TYPE_NAMES["unsigned"] == T.U32
        assert T.BUILTIN_TYPE_NAMES["char"] == T.CHAR
        assert T.BUILTIN_TYPE_NAMES["size_t"] == T.U64
