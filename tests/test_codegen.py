"""Code generation: the compiled P4 program must be observationally
equivalent to the NIR reference interpreter -- the central compiler
correctness invariant (differential testing, DESIGN.md S5)."""

import random

import pytest

from repro.ncl.types import PointerType, is_signed, scalar_bits
from repro.nclc import Compiler, WindowConfig
from repro.ncp.wire import decode_frame, encode_frame
from repro.nir import ir
from repro.nir.interp import DeviceState, Interpreter, WindowContext
from repro.pisa.switch_dev import PisaSwitch
from repro.util import intops

from tests.conftest import (
    ALLREDUCE_DEFINES,
    ALLREDUCE_SRC,
    KVS_AND,
    KVS_DEFINES,
    KVS_SRC,
    STAR_AND,
)

_FWD_NAME = {
    ir.FwdKind.PASS: "pass",
    ir.FwdKind.DROP: "drop",
    ir.FwdKind.BCAST: "bcast",
    ir.FwdKind.REFLECT: "reflect",
}


class DifferentialRig:
    """Runs the same window stream through (a) the compiled P4 program on
    a PisaSwitch and (b) the NIR interpreter, comparing everything."""

    def __init__(self, program, kernel: str, location: str = "s1"):
        self.program = program
        self.kernel = kernel
        self.layout = program.layouts[kernel]
        self.switch = PisaSwitch(program.switch_programs[location], location)
        self.state = DeviceState.from_module(program.ref_module, location=location)
        self.interp = Interpreter(program.ref_module, self.state)
        self.fn = program.ref_module.functions[kernel]
        self.location_id = program.and_spec.node(location).node_id
        self.label_ids = program.label_ids
        # Deployment would populate routes; give every AND node one so the
        # template's route-miss policy doesn't mask kernel verdicts.
        from repro.ncp.wire import node_ip

        for node in program.and_spec.nodes.values():
            self.switch.table_insert(
                "ipv4_route", [node_ip(node.node_id)], "ipv4_forward", [0]
            )

    def set_ctrl(self, name: str, value: int, index: int = 0) -> None:
        # The register may not exist when the optimizer proved the ctrl
        # variable unread; the reference state is still updated (reads of
        # it cannot exist either, so no divergence is possible).
        if f"reg_{name}" in self.switch.registers.arrays:
            self.switch.ctrl_register_write(f"reg_{name}", value, index)
        if isinstance(self.state.ctrl.get(name), list):
            self.state.ctrl_write(name, value, index)
        else:
            self.state.ctrl_write(name, value)

    def map_insert(self, name: str, key: int, value: int) -> None:
        self.switch.table_insert(f"map_{name}", [key], f"map_{name}_hit", [value])
        self.state.maps[name].insert(key, value)

    def run_window(self, meta, chunks, src=0, dst=1):
        # --- hardware path ---
        frame = encode_frame(
            self.layout,
            src_node=src,
            dst_node=dst,
            seq=meta.get("seq", 0),
            chunks=[list(c) for c in chunks],
            ext_values={k: v for k, v in meta.items() if k not in ("seq", "from", "last")},
            last=bool(meta.get("last", 0)),
            from_node=meta.get("from", src),
        )
        result = self.switch.process(frame)
        hw_chunks = decode_frame(result.data, {self.layout.kernel_id: self.layout}).chunks

        # --- reference path ---
        args = []
        ref_chunks = []
        data_params = [p for p in self.fn.params if not p.ext]
        for param, chunk in zip(data_params, chunks):
            if isinstance(param.ty, PointerType):
                buf = list(chunk)
                ref_chunks.append(buf)
                args.append(buf)
            else:
                ref_chunks.append(list(chunk))
                args.append(chunk[0])
        ctx = WindowContext(dict(meta), args, self.location_id, self.label_ids)
        ref_result = self.interp.run(self.fn, ctx)

        assert result.verdict == _FWD_NAME[ref_result.fwd], (
            f"verdict mismatch for meta={meta}: hw={result.verdict} "
            f"ref={_FWD_NAME[ref_result.fwd]}"
        )
        # Window data: scalars can't be modified in ref (bound by value);
        # compare pointer chunks only.
        for param, hw_chunk, ref_chunk in zip(data_params, hw_chunks, ref_chunks):
            if isinstance(param.ty, PointerType):
                assert hw_chunk == ref_chunk, (
                    f"window data mismatch for {param.name}: hw={hw_chunk} "
                    f"ref={ref_chunk} (meta={meta})"
                )
        self.compare_state()
        return result

    def compare_state(self):
        for name, ref_values in self.state.arrays.items():
            reg = f"reg_{name}"
            if reg not in self.switch.registers.arrays:
                continue
            gref = self.program.ref_module.globals[name]
            elem = gref.elem_type
            bits, signed = scalar_bits(elem), is_signed(elem)
            hw = [
                intops.wrap(v, bits, signed)
                for v in self.switch.registers.arrays[reg]
            ]
            assert hw == list(ref_values), f"register {name} diverged"


@pytest.fixture(scope="module")
def allreduce_rig():
    program = Compiler().compile(
        ALLREDUCE_SRC,
        and_text=STAR_AND,
        windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
        defines=ALLREDUCE_DEFINES,
    )
    return program


class TestAllReduceDifferential:
    def test_random_window_stream(self, allreduce_rig):
        rig = DifferentialRig(allreduce_rig, "allreduce")
        rig.set_ctrl("nworkers", 3)
        rng = random.Random(42)
        for _ in range(60):
            meta = {
                "seq": rng.randrange(16),
                "from": rng.randrange(3),
                "last": rng.randrange(2),
                "len": 4,
            }
            chunk = [rng.randint(-(2**31), 2**31 - 1) for _ in range(4)]
            rig.run_window(meta, [chunk])

    def test_bcast_exactly_on_nth_contribution(self, allreduce_rig):
        rig = DifferentialRig(allreduce_rig, "allreduce")
        rig.set_ctrl("nworkers", 2)
        r1 = rig.run_window({"seq": 0, "from": 0, "last": 0, "len": 4}, [[1, 2, 3, 4]])
        assert r1.verdict == "drop"
        r2 = rig.run_window({"seq": 0, "from": 1, "last": 0, "len": 4}, [[5, 5, 5, 5]])
        assert r2.verdict == "bcast"
        out = decode_frame(
            r2.data, {rig.layout.kernel_id: rig.layout}
        )
        assert out.chunks == [[6, 7, 8, 9]]


@pytest.fixture(scope="module")
def kvs_rig_program():
    return Compiler().compile(
        KVS_SRC,
        and_text=KVS_AND,
        windows={"query": WindowConfig(mask=(1, 4, 1))},
        defines=KVS_DEFINES,
    )


class TestKvsDifferential:
    def test_random_query_stream(self, kvs_rig_program):
        rig = DifferentialRig(kvs_rig_program, "query")
        for key, slot in [(11, 0), (22, 1), (33, 2)]:
            rig.map_insert("Idx", key, slot)
        rng = random.Random(7)
        keys = [11, 22, 33, 44, 55]
        for _ in range(80):
            meta = {
                "seq": rng.randrange(8),
                "from": rng.choice([0, 1, 2]),  # clients 0/1, server 2
                "last": 0,
            }
            chunks = [
                [rng.choice(keys)],
                [rng.randrange(2**32) for _ in range(4)],
                [rng.randrange(2)],
            ]
            rig.run_window(meta, chunks)

    def test_get_hit_reflects_with_value(self, kvs_rig_program):
        rig = DifferentialRig(kvs_rig_program, "query")
        rig.map_insert("Idx", 7, 3)
        # server populates slot 3
        r = rig.run_window(
            {"seq": 0, "from": 2, "last": 0}, [[7], [100, 200, 300, 400], [1]]
        )
        assert r.verdict == "drop"
        # client GET hits
        r = rig.run_window({"seq": 1, "from": 0, "last": 0}, [[7], [0, 0, 0, 0], [0]])
        assert r.verdict == "reflect"
        out = decode_frame(r.data, {rig.layout.kernel_id: rig.layout})
        assert out.chunks[1] == [100, 200, 300, 400]

    def test_put_invalidates(self, kvs_rig_program):
        rig = DifferentialRig(kvs_rig_program, "query")
        rig.map_insert("Idx", 9, 1)
        rig.run_window({"seq": 0, "from": 2, "last": 0}, [[9], [1, 1, 1, 1], [1]])
        # client PUT -> invalidate, pass to server
        r = rig.run_window({"seq": 1, "from": 0, "last": 0}, [[9], [2, 2, 2, 2], [1]])
        assert r.verdict == "pass"
        # client GET now misses (invalid)
        r = rig.run_window({"seq": 2, "from": 1, "last": 0}, [[9], [0, 0, 0, 0], [0]])
        assert r.verdict == "pass"

    def test_reflect_swaps_addresses(self, kvs_rig_program):
        rig = DifferentialRig(kvs_rig_program, "query")
        rig.map_insert("Idx", 5, 0)
        rig.run_window({"seq": 0, "from": 2, "last": 0}, [[5], [9, 9, 9, 9], [1]])
        r = rig.run_window(
            {"seq": 1, "from": 0, "last": 0}, [[5], [0, 0, 0, 0], [0]], src=0, dst=2
        )
        decoded = decode_frame(r.data, {rig.layout.kernel_id: rig.layout})
        assert decoded.dst_node == 0  # reflected back to the client
        assert decoded.src_node == 2


class TestGeneratedProgramShape:
    def test_allreduce_program_inventory(self, allreduce_rig):
        p = allreduce_rig.switch_programs["s1"]
        assert "reg_accum" in p.registers
        assert "reg_count" in p.registers
        assert "reg_nworkers" in p.registers
        assert p.registers["reg_accum"].size == ALLREDUCE_DEFINES["DATA_LEN"]
        assert "ipv4_route" in p.tables

    def test_kvs_program_inventory(self, kvs_rig_program):
        p = kvs_rig_program.switch_programs["s1"]
        assert "map_Idx" in p.tables
        assert p.tables["map_Idx"].managed_by == "control-plane"
        assert p.registers["reg_Cache"].size == 16 * 4
        assert p.registers["reg_Valid"].size == 16

    def test_parser_dispatches_on_kernel_id(self, allreduce_rig):
        p = allreduce_rig.switch_programs["s1"]
        ncp_state = next(s for s in p.parser if s.name == "parse_ncp")
        assert ncp_state.select_field == "ncp.kernel_id"
        assert ncp_state.transitions

    def test_reports_accepted(self, allreduce_rig, kvs_rig_program):
        assert allreduce_rig.reports["s1"].stages >= 1
        assert kvs_rig_program.reports["s1"].stages >= 2  # map apply + compute

    def test_non_ncp_traffic_routed_not_executed(self, allreduce_rig):
        sw = PisaSwitch(allreduce_rig.switch_programs["s1"])
        from repro.ncp.wire import ETH_FIELDS, ETHERTYPE_IPV4, IPV4_FIELDS, node_ip
        from repro.util.bits import pack_fields

        sw.table_insert("ipv4_route", [node_ip(1)], "ipv4_forward", [2])
        eth = pack_fields(
            ETH_FIELDS, {"dst": 1, "src": 2, "ethertype": ETHERTYPE_IPV4}
        )
        ipv4 = pack_fields(
            IPV4_FIELDS,
            {"version_ihl": 0x45, "ttl": 64, "proto": 6, "src": node_ip(0), "dst": node_ip(1)},
        )
        result = sw.process(eth + ipv4 + b"tcp-payload")
        assert result.verdict == "pass"
        assert result.phv.read("meta.egress_port") == 2
        assert result.data.endswith(b"tcp-payload")
