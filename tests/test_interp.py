"""NIR interpreter: the reference semantics of NCL kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PisaError
from repro.nir import ir
from repro.nir.interp import DeviceState, run_kernel
from repro.util import intops

from tests.diffutil import kernel_module


def run(source, kernel="k", meta=None, args=(), state=None, defines=None, **kw):
    mod = kernel_module(source, defines)
    state = state if state is not None else DeviceState.from_module(mod)
    result = run_kernel(mod, kernel, state, meta or {}, list(args), **kw)
    return result, state


class TestArithmetic:
    def test_wrapping_add_i32(self):
        buf = [2**31 - 1]
        run("_net_ _out_ void k(int *d) { d[0] = d[0] + 1; }", args=[buf])
        assert buf[0] == -(2**31)

    def test_unsigned_wrap(self):
        buf = [0]
        run("_net_ _out_ void k(unsigned *d) { d[0] = d[0] - 1; }", args=[buf])
        assert buf[0] == 2**32 - 1

    def test_u8_truncation_on_store(self):
        buf = [300]
        run("_net_ _out_ void k(uint8_t *d) { d[0] = d[0] + 0; }", args=[buf])
        assert buf[0] == 300 & 0xFF or buf[0] == 44  # 300 wraps to 44

    def test_signed_division_truncates(self):
        buf = [-7, 2, 0]
        run("_net_ _out_ void k(int *d) { d[2] = d[0] / d[1]; }", args=[buf])
        assert buf[2] == -3

    def test_division_by_zero_traps(self):
        with pytest.raises(ZeroDivisionError):
            run("_net_ _out_ void k(int *d) { d[0] = d[0] / d[1]; }", args=[[1, 0]])

    def test_shifts(self):
        buf = [-8, 0, 0]
        run(
            "_net_ _out_ void k(int *d) { d[1] = d[0] >> 1; d[2] = d[0] << 1; }",
            args=[buf],
        )
        assert buf[1] == -4 and buf[2] == -16

    def test_unsigned_shift_logical(self):
        buf = [0x80000000, 0]
        run("_net_ _out_ void k(unsigned *d) { d[1] = d[0] >> 31; }", args=[buf])
        assert buf[1] == 1

    def test_compare_signedness(self):
        buf = [-1, 0, 0]
        run(
            "_net_ _out_ void k(int *d, unsigned *u) {"
            " d[2] = d[0] < 1;"                      # signed: -1 < 1
            " u[0] = (unsigned)d[0] < 1u; }",        # unsigned: huge > 1
            args=[buf, [9]],
        )
        assert buf[2] == 1

    @given(st.integers(-(2**31), 2**31 - 1), st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_add_matches_c(self, a, b):
        buf = [a, b, 0]
        run("_net_ _out_ void k(int *d) { d[2] = d[0] + d[1]; }", args=[buf])
        assert buf[2] == intops.wrap_signed(a + b, 32)


class TestControlFlow:
    SRC = (
        "_net_ _out_ void k(int *d) {"
        " if (d[0] > 10) d[1] = 1;"
        " else if (d[0] > 0) d[1] = 2;"
        " else d[1] = 3; }"
    )

    @pytest.mark.parametrize("x,want", [(20, 1), (5, 2), (0, 3), (-1, 3)])
    def test_if_chain(self, x, want):
        buf = [x, 0]
        run(self.SRC, args=[buf])
        assert buf[1] == want

    def test_loop_sum(self):
        buf = list(range(8))
        src = (
            "struct window { unsigned len; };\n"
            "_net_ _out_ void k(int *d) {"
            " int s = 0;"
            " for (unsigned i = 0; i < window.len; ++i) s += d[i];"
            " d[0] = s; }"
        )
        run(src, meta={"len": 8}, args=[buf])
        assert buf[0] == sum(range(8))

    def test_while_with_break(self):
        buf = [0]
        src = (
            "_net_ _out_ void k(int *d) {"
            " unsigned i = 0;"
            " while (1) { if (i == 5) break; ++i; }"
            " d[0] = i; }"
        )
        run(src, args=[buf])
        assert buf[0] == 5

    def test_continue(self):
        buf = [0]
        src = (
            "_net_ _out_ void k(int *d) {"
            " for (unsigned i = 0; i < 10; ++i) {"
            "   if (i & 1) continue;"
            "   d[0] += 1; } }"
        )
        run(src, args=[buf])
        assert buf[0] == 5

    def test_ternary(self):
        buf = [7, 0]
        run("_net_ _out_ void k(int *d) { d[1] = d[0] > 5 ? 100 : 200; }", args=[buf])
        assert buf[1] == 100


class TestForwarding:
    def test_default_is_pass(self):
        result, _ = run("_net_ _out_ void k(int *d) { }", args=[[0]])
        assert result.fwd is ir.FwdKind.PASS

    def test_last_decision_wins(self):
        result, _ = run(
            "_net_ _out_ void k(int *d) { _drop(); _bcast(); }", args=[[0]]
        )
        assert result.fwd is ir.FwdKind.BCAST

    def test_pass_label(self):
        result, _ = run(
            '_net_ _out_ void k(int *d) { _pass("s2"); }', args=[[0]]
        )
        assert result.fwd is ir.FwdKind.PASS and result.fwd_label == "s2"


class TestState:
    def test_net_array_persists_across_windows(self):
        mod = kernel_module(
            "_net_ unsigned total[1] = {0};\n"
            "_net_ _out_ void k(unsigned *d) { total[0] += d[0]; }"
        )
        state = DeviceState.from_module(mod)
        for v in (5, 6, 7):
            run_kernel(mod, "k", state, {}, [[v]])
        assert state.arrays["total"][0] == 18

    def test_out_of_bounds_raises(self):
        with pytest.raises(PisaError, match="out of range"):
            run(
                "_net_ int a[4];\n_net_ _out_ void k(int *d) { a[d[0]] = 1; }",
                args=[[10]],
            )

    def test_ctrl_read(self):
        mod = kernel_module(
            '_net_ _at_("s1") _ctrl_ unsigned n;\n'
            "_net_ _out_ void k(unsigned *d) { d[0] = n; }"
        )
        state = DeviceState.from_module(mod)
        state.ctrl_write("n", 42)
        buf = [0]
        run_kernel(mod, "k", state, {}, [buf])
        assert buf[0] == 42

    def test_initializers_loaded(self):
        mod = kernel_module(
            "_net_ int a[4] = {10, 20};\n"
            "_net_ _out_ void k(int *d) { d[0] = a[0] + a[1] + a[3]; }"
        )
        state = DeviceState.from_module(mod)
        buf = [0]
        run_kernel(mod, "k", state, {}, [buf])
        assert buf[0] == 30

    def test_location_scoping(self):
        mod = kernel_module(
            '_net_ _at_("s1") int a[2];\n_net_ _at_("s2") int b[2];\n'
            "_net_ _out_ void k(int *d) { }"
        )
        state = DeviceState.from_module(mod, location="s1")
        assert "a" in state.arrays and "b" not in state.arrays


class TestMaps:
    SRC = (
        '_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> M;\n'
        "_net_ _out_ void k(uint64_t key, unsigned *out) {"
        " if (auto *v = M[key]) { out[0] = 1; out[1] = *v; }"
        " else { out[0] = 0; } }"
    )

    def test_hit_and_miss(self):
        mod = kernel_module(self.SRC)
        state = DeviceState.from_module(mod)
        state.maps["M"].insert(99, 7)
        out = [0, 0]
        run_kernel(mod, "k", state, {}, [99, out])
        assert out == [1, 7]
        out = [0, 0]
        run_kernel(mod, "k", state, {}, [100, out])
        assert out[0] == 0

    def test_capacity_enforced(self):
        mod = kernel_module(self.SRC)
        state = DeviceState.from_module(mod)
        for i in range(4):
            state.maps["M"].insert(i, i)
        with pytest.raises(PisaError, match="capacity"):
            state.maps["M"].insert(5, 5)

    def test_erase(self):
        mod = kernel_module(self.SRC)
        state = DeviceState.from_module(mod)
        state.maps["M"].insert(1, 1)
        state.maps["M"].erase(1)
        assert state.maps["M"].lookup(1) == (False, 0)


class TestBloom:
    SRC = (
        '_net_ _at_("s1") ncl::BloomFilter<1024, 3> B;\n'
        "_net_ _out_ void k(uint64_t key, unsigned *out) {"
        " out[0] = ncl::bf_query(B, key);"
        " ncl::bf_insert(B, key); }"
    )

    def test_insert_then_query(self):
        mod = kernel_module(self.SRC)
        state = DeviceState.from_module(mod)
        out = [9]
        run_kernel(mod, "k", state, {}, [1234, out])
        assert out[0] == 0  # not yet inserted
        run_kernel(mod, "k", state, {}, [1234, out])
        assert out[0] == 1  # inserted by the first window

    def test_no_false_negatives(self):
        mod = kernel_module(self.SRC)
        state = DeviceState.from_module(mod)
        keys = [k * 7919 for k in range(50)]
        for key in keys:
            run_kernel(mod, "k", state, {}, [key, [0]])
        for key in keys:
            out = [0]
            run_kernel(mod, "k", state, {}, [key, out])
            assert out[0] == 1


class TestMemcpy:
    def test_param_to_global_and_back(self):
        mod = kernel_module(
            "_net_ int stash[8];\n"
            "_net_ _out_ void k(int *d) {"
            " memcpy(&stash[2], d, 16);"
            " memcpy(d, &stash[2], 16); }"
        )
        state = DeviceState.from_module(mod)
        buf = [1, 2, 3, 4]
        run_kernel(mod, "k", state, {}, [buf])
        assert state.arrays["stash"][2:6] == [1, 2, 3, 4]
        assert buf == [1, 2, 3, 4]

    def test_row_copy_2d(self):
        mod = kernel_module(
            "_net_ unsigned m[4][2];\n"
            "_net_ _out_ void k(unsigned *d, unsigned row) {"
            " memcpy(m[row], d, 8); }"
        )
        state = DeviceState.from_module(mod)
        run_kernel(mod, "k", state, {}, [[7, 8], 3])
        assert state.arrays["m"][6:8] == [7, 8]

    def test_overrun_raises(self):
        mod = kernel_module(
            "_net_ int a[2];\n_net_ _out_ void k(int *d) { memcpy(a, d, 16); }"
        )
        state = DeviceState.from_module(mod)
        with pytest.raises(PisaError):
            run_kernel(mod, "k", state, {}, [[1, 2, 3, 4]])


class TestHelpers:
    def test_helper_inlined_semantics(self):
        buf = [250, 0]
        run(
            "int clamp(int v) { return v > 100 ? 100 : v; }\n"
            "_net_ _out_ void k(int *d) { d[1] = clamp(d[0]); }",
            args=[buf],
        )
        assert buf[1] == 100

    def test_helper_fwd_propagates(self):
        result, _ = run(
            "void decide(int v) { if (v) _drop(); }\n"
            "_net_ _out_ void k(int *d) { decide(d[0]); }",
            args=[[1]],
        )
        assert result.fwd is ir.FwdKind.DROP


class TestWindowMeta:
    def test_builtin_fields(self):
        buf = [0, 0, 0]
        run(
            "_net_ _out_ void k(unsigned *d) {"
            " d[0] = window.seq; d[1] = window.from; d[2] = window.last; }",
            meta={"seq": 9, "from": 3, "last": 1},
            args=[buf],
        )
        assert buf == [9, 3, 1]

    def test_missing_field_raises(self):
        with pytest.raises(PisaError, match="not bound"):
            run(
                "struct window { unsigned len; };\n"
                "_net_ _out_ void k(unsigned *d) { d[0] = window.len; }",
                meta={"seq": 0},
                args=[[0]],
            )

    def test_location_id(self):
        buf = [0]
        run(
            "_net_ _out_ void k(unsigned *d) { d[0] = location.id; }",
            args=[buf],
            location_id=7,
        )
        assert buf[0] == 7

    def test_locid_labels(self):
        result, _ = run(
            '_net_ _out_ void k(unsigned *d) {'
            ' if (location.id == _locid("s2")) _drop(); }',
            args=[[0]],
            location_id=5,
            location_labels={"s2": 5},
        )
        assert result.fwd is ir.FwdKind.DROP
