"""Cross-run regression diffing (``repro.obs.diff``): artifact
sniffing, flatteners, section diffs, the ``repro.diff/1`` report and
its validator, the ``query diff`` CLI, and the benchmarks
``compare_runs.py`` pairwise/trend driver."""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.diff import (
    DIFF_SCHEMA,
    build_report,
    diff_profile,
    diff_runs,
    diff_scalars,
    diff_timeseries,
    flatten_generic,
    flatten_metrics,
    flatten_profile,
    is_wall_metric,
    render_report,
    section_is_zero,
    sniff_kind,
    validate_report,
    write_report,
)

REPO = Path(__file__).resolve().parent.parent


def profile_doc(wall_by_label, total=1.0):
    return {
        "schema": "repro.profile/1",
        "total_wall_s": total,
        "events": 100,
        "entries": [
            {"label": label, "count": 10, "wall_s": wall}
            for label, wall in sorted(wall_by_label.items())
        ],
    }


def timeseries_doc(points_by_series, interval=1e-6):
    return {
        "schema": "repro.timeseries/1",
        "interval": interval,
        "series": [
            {"name": name, "labels": {}, "points": points}
            for name, points in sorted(points_by_series.items())
        ],
    }


def metrics_doc(values_by_link):
    return {
        "link.bytes": {
            "kind": "counter",
            "label_names": ["link"],
            "series": [
                {"labels": {"link": link}, "value": value}
                for link, value in sorted(values_by_link.items())
            ],
        }
    }


# ---------------------------------------------------------------------------
# sniffing + flattening
# ---------------------------------------------------------------------------


class TestSniffAndFlatten:
    def test_sniff_each_family(self):
        assert sniff_kind(profile_doc({})) == "profile"
        assert sniff_kind(timeseries_doc({})) == "timeseries"
        assert sniff_kind(metrics_doc({"a": 1})) == "metrics"
        assert sniff_kind({"x": 1, "y": 2.5}) == "scalars"
        assert sniff_kind({"schema": "repro.flight/1"}) == "generic"
        assert sniff_kind([1, 2]) == "generic"

    def test_wall_markers(self):
        assert is_wall_metric("total_wall_s")
        assert is_wall_metric("fig4_events_per_sec")
        assert is_wall_metric("parse.avg_us")
        assert not is_wall_metric("events")
        assert not is_wall_metric("link.bytes")

    def test_flatten_metrics_labels_and_histograms(self):
        snap = metrics_doc({"h0<->s1": 640})
        snap["lat"] = {
            "kind": "histogram",
            "label_names": [],
            "series": [{
                "labels": {},
                "value": {
                    "count": 4, "sum": 0.1,
                    "buckets": {"0.001": 2, "+Inf": 2},
                },
            }],
        }
        flat = flatten_metrics(snap)
        assert flat["link.bytes{link=h0<->s1}"] == 640
        assert flat["lat.count"] == 4
        assert flat["lat.buckets.le=+Inf"] == 2

    def test_flatten_metrics_surfaces_overflow(self):
        snap = metrics_doc({"a": 1})
        snap["link.bytes"]["overflow_routed"] = 3
        assert flatten_metrics(snap)["link.bytes.__overflow_routed__"] == 3

    def test_flatten_profile(self):
        flat = flatten_profile(profile_doc({"parse": 0.25}))
        assert flat["total_wall_s"] == 1.0
        assert flat["entry{parse}.wall_s"] == 0.25
        assert flat["entry{parse}.count"] == 10

    def test_flatten_generic_skips_bools_and_strings(self):
        flat = flatten_generic({
            "a": {"b": 1}, "ok": True, "name": "x",
            "list": [1.5, {"c": 2}],
        })
        assert flat == {"a.b": 1, "list[0]": 1.5, "list[1].c": 2}


# ---------------------------------------------------------------------------
# section diffs
# ---------------------------------------------------------------------------


class TestSectionDiffs:
    def test_diff_scalars_changed_added_removed(self):
        out = diff_scalars(
            {"same": 1, "moved": 10, "gone": 5},
            {"same": 1, "moved": 15, "fresh": 2},
        )
        assert out["unchanged"] == 1
        [changed] = out["changed"]
        assert changed == {
            "key": "moved", "a": 10, "b": 15, "delta": 5, "pct": 50.0,
        }
        assert out["added"] == [{"key": "fresh", "b": 2}]
        assert out["removed"] == [{"key": "gone", "a": 5}]

    def test_wall_clock_keys_are_tagged_and_ignored_by_zero(self):
        out = diff_scalars({"x_per_sec": 100.0}, {"x_per_sec": 120.0})
        assert out["changed"][0]["wall_clock"] is True
        out["kind"] = "scalars"
        assert section_is_zero(out)

    def test_diff_profile_ranks_regressions(self):
        a = profile_doc({"parse": 0.1, "act": 0.2, "route": 0.3})
        b = profile_doc({"parse": 0.4, "act": 0.25, "route": 0.2})
        out = diff_profile(a, b, top=2)
        labels = [e["label"] for e in out["top_regressed"]]
        assert labels == ["parse", "act"]  # biggest wall growth first
        assert out["top_regressed"][0]["delta_wall_s"] == pytest.approx(0.3)
        assert out["top_regressed"][0]["pct"] == pytest.approx(300.0)

    def test_diff_timeseries_divergence(self):
        a = timeseries_doc({"drops": [[0, 0], [1, 2], [2, 2]]})
        b = timeseries_doc({"drops": [[0, 0], [1, 2], [2, 7]],
                            "retx": [[0, 1]]})
        out = diff_timeseries(a, b)
        [changed] = out["changed"]
        assert changed["key"] == "drops"
        assert changed["first_divergence"] == 2
        assert changed["max_divergence"] == 5
        assert changed["a"] == 2 and changed["b"] == 7
        assert out["added"] == [{"key": "retx"}]

    def test_diff_timeseries_identical_is_quiet(self):
        doc = timeseries_doc({"drops": [[0, 0], [3, 1]]})
        out = diff_timeseries(doc, json.loads(json.dumps(doc)))
        assert out["changed"] == [] and out["unchanged"] >= 1


# ---------------------------------------------------------------------------
# the report: build, validate, render, determinism
# ---------------------------------------------------------------------------


class TestReport:
    def _report(self, a_val=1, b_val=1):
        return build_report(
            [("metrics", "scalars", {"x": a_val}, {"x": b_val})],
            a_label="runA", b_label="runB",
        )

    def test_zero_delta_and_counts(self):
        zero = self._report()
        assert zero["schema"] == DIFF_SCHEMA
        assert zero["zero_delta"] is True
        assert zero["changed_total"] == 0
        hot = self._report(1, 2)
        assert hot["zero_delta"] is False
        assert hot["changed_total"] == 1

    def test_identical_inputs_byte_identical_reports(self):
        buf1, buf2 = io.StringIO(), io.StringIO()
        write_report(self._report(3, 4), buf1)
        write_report(self._report(3, 4), buf2)
        assert buf1.getvalue() == buf2.getvalue()
        assert buf1.getvalue().endswith("\n")

    def test_validate_accepts_good_report(self):
        assert validate_report(self._report(1, 2)) == []

    def test_validate_flags_problems(self):
        assert validate_report([]) == ["report is not an object"]
        report = self._report()
        report["schema"] = "repro.diff/0"
        assert any("schema" in p for p in validate_report(report))
        report = self._report()
        del report["sections"]
        assert any("sections" in p for p in validate_report(report))
        report = self._report(1, 2)
        report["zero_delta"] = True  # lies about its own contents
        assert any("zero_delta" in p for p in validate_report(report))
        report = self._report()
        report["sections"]["metrics"]["kind"] = "mystery"
        assert any("unknown kind" in p for p in validate_report(report))

    def test_render_mentions_zero_delta_and_changes(self):
        assert "zero-delta" in render_report(self._report())
        text = render_report(self._report(10, 12))
        assert "x: 10 -> 12" in text and "(+20%)" in text

    def test_render_shows_top_regressed(self):
        report = build_report([(
            "profile", "profile",
            profile_doc({"parse": 0.1}), profile_doc({"parse": 0.5}),
        )])
        assert "regressed: parse" in render_report(report)


# ---------------------------------------------------------------------------
# loading runs from disk + the CLI surfaces
# ---------------------------------------------------------------------------


def _write_run(run_dir: Path, wall, drops):
    run_dir.mkdir(parents=True, exist_ok=True)
    (run_dir / "fig4.profile.json").write_text(
        json.dumps(profile_doc({"parse": wall}))
    )
    (run_dir / "fig4.metrics.json").write_text(
        json.dumps(metrics_doc({"h0<->s1": drops}))
    )


class TestDiffRuns:
    def test_single_files(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps({"x": 1}))
        b.write_text(json.dumps({"x": 2}))
        report = diff_runs(str(a), str(b))
        assert report["a"] == str(a)
        assert report["sections"]["scalars"]["changed"][0]["delta"] == 1

    def test_directories_pair_by_artifact_name(self, tmp_path):
        # the wall_s move is wall-clock-tagged (still zero-delta); the
        # link-bytes move is deterministic and breaks it
        _write_run(tmp_path / "a", wall=0.1, drops=3)
        _write_run(tmp_path / "b", wall=0.2, drops=8)
        report = diff_runs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert set(report["sections"]) == {
            "fig4.profile.json", "fig4.metrics.json"
        }
        assert section_is_zero(report["sections"]["fig4.profile.json"])
        assert not section_is_zero(report["sections"]["fig4.metrics.json"])
        assert report["zero_delta"] is False

    def test_section_only_in_one_run_still_diffs(self, tmp_path):
        _write_run(tmp_path / "a", wall=0.1, drops=3)
        _write_run(tmp_path / "b", wall=0.1, drops=3)
        (tmp_path / "b" / "extra.results.json").write_text(
            json.dumps({"new_metric": 9})
        )
        report = diff_runs(str(tmp_path / "a"), str(tmp_path / "b"))
        section = report["sections"]["extra.results.json"]
        assert section["added"] == [{"key": "new_metric", "b": 9}]
        assert report["zero_delta"] is False

    def test_empty_dir_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError, match="no diffable"):
            diff_runs(str(tmp_path / "empty"), str(tmp_path / "empty"))


class TestQueryDiffCli:
    def _runs(self, tmp_path, b_drops=3):
        _write_run(tmp_path / "a", wall=0.1, drops=3)
        _write_run(tmp_path / "b", wall=0.1, drops=b_drops)
        return str(tmp_path / "a"), str(tmp_path / "b")

    def test_text_mode_zero_delta(self, tmp_path, capsys):
        from repro.obs.query import main

        a, b = self._runs(tmp_path)
        assert main(["diff", a, b]) == 0
        assert "zero-delta" in capsys.readouterr().out

    def test_json_output_validates(self, tmp_path, capsys):
        from repro.obs.query import main

        a, b = self._runs(tmp_path, b_drops=9)
        out_path = tmp_path / "report.json"
        assert main(["diff", a, b, "--json", "-o", str(out_path)]) == 0
        report = json.loads(out_path.read_text())
        assert validate_report(report) == []
        assert report["zero_delta"] is False

    def test_fail_on_delta_exit_codes(self, tmp_path, capsys):
        from repro.obs.query import main

        a, b = self._runs(tmp_path)
        assert main(["diff", a, b, "--fail-on-delta"]) == 0
        a, b = self._runs(tmp_path, b_drops=9)
        assert main(["diff", a, b, "--fail-on-delta"]) == 1


class TestCompareRuns:
    """The benchmarks/compare_runs.py driver, exercised as a CLI."""

    SCRIPT = REPO / "benchmarks" / "compare_runs.py"

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, str(self.SCRIPT), *argv],
            capture_output=True, text=True, cwd=str(REPO),
        )

    def _history(self, tmp_path, series):
        ledger = tmp_path / "history"
        ledger.mkdir()
        for i, measured in enumerate(series):
            (ledger / f"run-{i:04d}.json").write_text(
                json.dumps({"measured": measured, "profile": {}})
            )
        return ledger

    def test_pairwise_fail_on_delta(self, tmp_path):
        _write_run(tmp_path / "a", wall=0.1, drops=3)
        _write_run(tmp_path / "b", wall=0.1, drops=8)
        proc = self._run(str(tmp_path / "a"), str(tmp_path / "b"),
                         "--fail-on-delta")
        assert proc.returncode == 1, proc.stderr
        assert "link.bytes{link=h0<->s1}: 3 -> 8" in proc.stdout

    def test_trend_table_and_passing_gate(self, tmp_path):
        ledger = self._history(tmp_path, [
            {"fig4_bytes": 100, "fig4_events_per_sec": 5000.0},
            {"fig4_bytes": 100, "fig4_events_per_sec": 9000.0},
        ])
        proc = self._run("--trend", str(ledger), "--gate", "10")
        assert proc.returncode == 0, proc.stderr
        assert "trend over 2 runs" in proc.stdout
        # wall-clock metrics are flagged and never trip the gate
        assert "wall-clock" in proc.stdout
        assert "trend gate passed" in proc.stdout

    def test_trend_gate_trips_on_deterministic_drift(self, tmp_path):
        ledger = self._history(tmp_path, [
            {"fig4_bytes": 100}, {"fig4_bytes": 150},
        ])
        proc = self._run("--trend", str(ledger), "--gate", "10")
        assert proc.returncode == 1
        assert "trend gate FAILED" in proc.stderr
        assert "fig4_bytes: 100 -> 150" in proc.stderr

    def test_trend_gate_uses_newest_pair_only(self, tmp_path):
        # the old outlier (run 0) must not trip a gate on runs 1 -> 2
        ledger = self._history(tmp_path, [
            {"fig4_bytes": 999}, {"fig4_bytes": 100}, {"fig4_bytes": 101},
        ])
        proc = self._run("--trend", str(ledger), "--gate", "5")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_trend_needs_two_runs(self, tmp_path):
        ledger = self._history(tmp_path, [{"x": 1}])
        proc = self._run("--trend", str(ledger))
        assert proc.returncode != 0
        assert "at least 2 runs" in proc.stderr
