"""Fixed-width integer semantics (repro.util.intops)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.util import intops


class TestMask:
    def test_mask_widths(self):
        assert intops.mask(8) == 0xFF
        assert intops.mask(16) == 0xFFFF
        assert intops.mask(32) == 0xFFFFFFFF
        assert intops.mask(64) == 0xFFFFFFFFFFFFFFFF

    def test_mask_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            intops.mask(0)
        with pytest.raises(ReproError):
            intops.mask(-3)


class TestWrap:
    def test_unsigned_wraps_modulo(self):
        assert intops.wrap_unsigned(256, 8) == 0
        assert intops.wrap_unsigned(257, 8) == 1
        assert intops.wrap_unsigned(-1, 8) == 255

    def test_signed_wraps_twos_complement(self):
        assert intops.wrap_signed(127, 8) == 127
        assert intops.wrap_signed(128, 8) == -128
        assert intops.wrap_signed(255, 8) == -1
        assert intops.wrap_signed(-129, 8) == 127

    def test_wrap_dispatches_on_signedness(self):
        assert intops.wrap(200, 8, signed=True) == -56
        assert intops.wrap(200, 8, signed=False) == 200

    @given(st.integers(), st.sampled_from([8, 16, 32, 64]))
    def test_unsigned_always_in_range(self, value, bits):
        wrapped = intops.wrap_unsigned(value, bits)
        assert 0 <= wrapped < (1 << bits)

    @given(st.integers(), st.sampled_from([8, 16, 32, 64]))
    def test_signed_always_in_range(self, value, bits):
        wrapped = intops.wrap_signed(value, bits)
        assert -(1 << (bits - 1)) <= wrapped < (1 << (bits - 1))

    @given(st.integers(), st.sampled_from([8, 16, 32, 64]))
    def test_signed_unsigned_same_bit_pattern(self, value, bits):
        assert intops.to_unsigned(
            intops.wrap_signed(value, bits), bits
        ) == intops.wrap_unsigned(value, bits)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_wrap_identity_in_range(self, value):
        assert intops.wrap_unsigned(value, 32) == value


class TestSignExtend:
    def test_extends_negative(self):
        assert intops.sign_extend(0xFF, 8, 16) == 0xFFFF
        assert intops.sign_extend(0x80, 8, 32) == 0xFFFFFF80

    def test_positive_unchanged(self):
        assert intops.sign_extend(0x7F, 8, 32) == 0x7F

    @given(st.integers(min_value=-128, max_value=127))
    def test_roundtrip_through_wider(self, v):
        pattern = intops.to_unsigned(v, 8)
        assert intops.wrap_signed(intops.sign_extend(pattern, 8, 32), 32) == v


class TestDivision:
    def test_udiv(self):
        assert intops.checked_udiv(7, 2) == 3

    def test_sdiv_truncates_toward_zero(self):
        assert intops.checked_sdiv(7, 2) == 3
        assert intops.checked_sdiv(-7, 2) == -3
        assert intops.checked_sdiv(7, -2) == -3
        assert intops.checked_sdiv(-7, -2) == 3

    def test_srem_sign_of_dividend(self):
        assert intops.checked_srem(7, 2) == 1
        assert intops.checked_srem(-7, 2) == -1
        assert intops.checked_srem(7, -2) == 1

    def test_divide_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            intops.checked_udiv(1, 0)
        with pytest.raises(ZeroDivisionError):
            intops.checked_sdiv(1, 0)

    @given(
        st.integers(min_value=-(2**31), max_value=2**31 - 1),
        st.integers(min_value=-(2**31), max_value=2**31 - 1).filter(lambda x: x != 0),
    )
    def test_c_division_identity(self, a, b):
        q = intops.checked_sdiv(a, b)
        r = intops.checked_srem(a, b)
        assert q * b + r == a
        assert abs(r) < abs(b)


class TestShift:
    def test_shift_amount_mod_width(self):
        assert intops.shift_amount(33, 32) == 1
        assert intops.shift_amount(5, 32) == 5

    def test_negative_shift_raises(self):
        with pytest.raises(ReproError):
            intops.shift_amount(-1, 32)


class TestFits:
    def test_unsigned_range(self):
        assert intops.bit_length_fits(255, 8, signed=False)
        assert not intops.bit_length_fits(256, 8, signed=False)
        assert not intops.bit_length_fits(-1, 8, signed=False)

    def test_signed_range(self):
        assert intops.bit_length_fits(-128, 8, signed=True)
        assert intops.bit_length_fits(127, 8, signed=True)
        assert not intops.bit_length_fits(128, 8, signed=True)
