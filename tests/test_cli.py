"""The nclc command-line interface."""

import json

import pytest

from repro.nclc.__main__ import main

from tests.conftest import ALLREDUCE_SRC, STAR_AND


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "prog.ncl").write_text(ALLREDUCE_SRC)
    (tmp_path / "net.and").write_text(STAR_AND)
    return tmp_path


def run_cli(workdir, *extra):
    return main(
        [
            str(workdir / "prog.ncl"),
            "--and",
            str(workdir / "net.and"),
            "-o",
            str(workdir / "build"),
            "--window",
            "allreduce=4",
            "--ext",
            "len=4",
            "-D",
            "DATA_LEN=64",
            "-D",
            "WIN_LEN=4",
            *extra,
        ]
    )


class TestCli:
    def test_successful_compile_writes_artifacts(self, workdir, capsys):
        assert run_cli(workdir) == 0
        out = capsys.readouterr().out
        assert "ACCEPTED" in out
        build = workdir / "build"
        assert (build / "s1.p4").exists()
        report = json.loads((build / "s1.report.json").read_text())
        assert report["profile"] == "bmv2"
        assert report["stages"] >= 1
        layouts = json.loads((build / "ncp_layouts.json").read_text())
        assert layouts["allreduce"]["kernel_id"] == 1
        assert layouts["allreduce"]["chunks"][0]["count"] == 4

    def test_tofino_with_split_accepts_and_records(self, workdir):
        assert run_cli(workdir, "--profile", "tofino-like") == 0
        report = json.loads(
            (workdir / "build" / "s1.report.json").read_text()
        )
        assert report["splits"] and report["splits"][0]["array"] == "accum"

    def test_tofino_without_split_rejects(self, workdir, capsys):
        rc = run_cli(workdir, "--profile", "tofino-like", "--no-split")
        assert rc == 2
        err = capsys.readouterr().err
        assert "REJECTED" in err and "reg_accum" in err

    def test_conformance_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.ncl"
        bad.write_text(
            "_net_ _out_ void k(unsigned *d) {"
            " for (unsigned i = 0; i < d[0]; ++i) d[1] += 1; }"
        )
        rc = main([str(bad), "--window", "k=4"])
        assert rc == 1
        assert "not provably constant" in capsys.readouterr().err

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.ncl"
        bad.write_text("_net_ _out_ void k(int *d) { d[0] = ; }")
        rc = main([str(bad)])
        assert rc == 1

    def test_dump_ir_prints_source(self, workdir, capsys):
        assert run_cli(workdir, "--dump-ir") == 0
        out = capsys.readouterr().out
        assert "control Ingress" in out


class TestBuildSubcommandAndFlags:
    def run_build(self, workdir, *extra):
        from repro.nclc.__main__ import main

        return main(
            [
                "build",
                str(workdir / "prog.ncl"),
                "--and",
                str(workdir / "net.and"),
                "-o",
                str(workdir / "build"),
                "--window",
                "allreduce=4",
                "--ext",
                "len=4",
                "-D",
                "DATA_LEN=64",
                "-D",
                "WIN_LEN=4",
                *extra,
            ]
        )

    def test_build_word_is_optional(self, workdir, capsys):
        assert self.run_build(workdir) == 0
        assert "ACCEPTED" in capsys.readouterr().out
        assert (workdir / "build" / "s1.p4").exists()

    def test_emit_ast_prints_parse_tree(self, workdir, capsys):
        assert self.run_build(workdir, "--emit", "ast") == 0
        out = capsys.readouterr().out
        assert "Program" in out
        assert "FuncDecl" in out and "name='allreduce'" in out

    def test_emit_nir_prints_optimized_modules(self, workdir, capsys):
        assert self.run_build(workdir, "--emit", "nir") == 0
        out = capsys.readouterr().out
        assert "switch s1 (optimized NIR, -O2)" in out
        assert "module ncl@s1" in out
        assert "func allreduce" in out

    def test_emit_artifact_writes_loadable_program(self, workdir, capsys):
        from repro.nclc.driver import CompiledProgram

        assert self.run_build(workdir, "--emit", "artifact") == 0
        assert "repro.nclc/1" in capsys.readouterr().out
        artifact = workdir / "build" / "prog.nclc.json"
        program = CompiledProgram.load(artifact)
        assert "s1" in program.switch_programs

    def test_opt_level_flag(self, workdir, capsys):
        assert self.run_build(workdir, "-O0", "--emit", "nir") == 0
        o0 = capsys.readouterr().out
        assert self.run_build(workdir, "-O2", "--emit", "nir") == 0
        o2 = capsys.readouterr().out
        assert "-O0" in o0 and "-O2" in o2
        # -O0 leaves the redundant loads the -O2 menu removes
        assert len(o0.splitlines()) > len(o2.splitlines())

    def test_bad_opt_level_rejected(self, workdir, capsys):
        with pytest.raises(SystemExit):
            self.run_build(workdir, "-O7")

    def test_cache_flag_hits_on_rebuild(self, workdir, capsys):
        cache_dir = workdir / "cache"
        assert self.run_build(workdir, "--cache", str(cache_dir)) == 0
        assert list(cache_dir.glob("*/*.nclc.json"))
        assert self.run_build(workdir, "--cache", str(cache_dir), "--timing") == 0
        assert "artifact cache: hit" in capsys.readouterr().out

    def test_bad_define_exits_2(self, workdir, capsys):
        assert self.run_build(workdir, "-D", "JUNK") == 2
        assert "NAME=VALUE" in capsys.readouterr().err
