"""The nclc command-line interface."""

import json

import pytest

from repro.nclc.__main__ import main

from tests.conftest import ALLREDUCE_SRC, STAR_AND


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "prog.ncl").write_text(ALLREDUCE_SRC)
    (tmp_path / "net.and").write_text(STAR_AND)
    return tmp_path


def run_cli(workdir, *extra):
    return main(
        [
            str(workdir / "prog.ncl"),
            "--and",
            str(workdir / "net.and"),
            "-o",
            str(workdir / "build"),
            "--window",
            "allreduce=4",
            "--ext",
            "len=4",
            "-D",
            "DATA_LEN=64",
            "-D",
            "WIN_LEN=4",
            *extra,
        ]
    )


class TestCli:
    def test_successful_compile_writes_artifacts(self, workdir, capsys):
        assert run_cli(workdir) == 0
        out = capsys.readouterr().out
        assert "ACCEPTED" in out
        build = workdir / "build"
        assert (build / "s1.p4").exists()
        report = json.loads((build / "s1.report.json").read_text())
        assert report["profile"] == "bmv2"
        assert report["stages"] >= 1
        layouts = json.loads((build / "ncp_layouts.json").read_text())
        assert layouts["allreduce"]["kernel_id"] == 1
        assert layouts["allreduce"]["chunks"][0]["count"] == 4

    def test_tofino_with_split_accepts_and_records(self, workdir):
        assert run_cli(workdir, "--profile", "tofino-like") == 0
        report = json.loads(
            (workdir / "build" / "s1.report.json").read_text()
        )
        assert report["splits"] and report["splits"][0]["array"] == "accum"

    def test_tofino_without_split_rejects(self, workdir, capsys):
        rc = run_cli(workdir, "--profile", "tofino-like", "--no-split")
        assert rc == 2
        err = capsys.readouterr().err
        assert "REJECTED" in err and "reg_accum" in err

    def test_conformance_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.ncl"
        bad.write_text(
            "_net_ _out_ void k(unsigned *d) {"
            " for (unsigned i = 0; i < d[0]; ++i) d[1] += 1; }"
        )
        rc = main([str(bad), "--window", "k=4"])
        assert rc == 1
        assert "not provably constant" in capsys.readouterr().err

    def test_syntax_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.ncl"
        bad.write_text("_net_ _out_ void k(int *d) { d[0] = ; }")
        rc = main([str(bad)])
        assert rc == 1

    def test_dump_ir_prints_source(self, workdir, capsys):
        assert run_cli(workdir, "--dump-ir") == 0
        out = capsys.readouterr().out
        assert "control Ingress" in out
