"""The health alert engine: rule parsing, evaluation, escalation."""

import pytest

from repro.obs import AlertEngine, AlertRule, Observability, TimeSeriesSampler
from repro.obs.health import parse_duration, parse_rule
from repro.obs.registry import ObservabilityError


class TestRuleParsing:
    def test_parse_duration(self):
        assert parse_duration("10us") == pytest.approx(1e-5)
        assert parse_duration("1.5ms") == pytest.approx(1.5e-3)
        assert parse_duration("2s") == 2.0
        assert parse_duration("500ns") == pytest.approx(5e-7)
        with pytest.raises(ObservabilityError, match="duration"):
            parse_duration("10 minutes")

    def test_threshold_rule(self):
        rule = parse_rule("link.qdepth_bytes > 4096")
        assert (rule.mode, rule.op, rule.threshold) == ("value", ">", 4096.0)
        assert rule.name == "link.qdepth_bytes"
        assert rule.severity == "warning"

    def test_rate_rule_with_name_labels_and_severity(self):
        rule = parse_rule(
            "drops: link.drops{cause=down} rate > 0 over 2us !critical"
        )
        assert rule.name == "drops"
        assert rule.series == "link.drops"
        assert rule.labels == {"cause": "down"}
        assert rule.mode == "rate"
        assert rule.over == pytest.approx(2e-6)
        assert rule.escalates

    def test_absence_rule(self):
        rule = parse_rule("stalled: ncp.windows_received absent over 20us")
        assert rule.mode == "absent"
        assert rule.op == "=="
        assert rule.threshold == 0.0
        assert rule.over == pytest.approx(2e-5)

    def test_text_round_trips(self):
        for text in (
            "drops: link.drops{cause=down} rate > 0 over 2us !critical",
            "stalled: ncp.windows_received absent over 20us",
            "q: link.qdepth_bytes{dir=w0->,link=s1<->w0} >= 100",
        ):
            rule = parse_rule(text)
            again = parse_rule(rule.text())
            assert again.text() == rule.text()

    def test_bad_rules_rejected(self):
        for bad in ("", "series >", "s ~ 3", "s rate > 1",  # rate needs over
                    "s{cause} > 1"):
            with pytest.raises(ObservabilityError):
                parse_rule(bad)

    def test_constructor_validation(self):
        with pytest.raises(ObservabilityError, match="mode"):
            AlertRule("r", "s", mode="median")
        with pytest.raises(ObservabilityError, match="comparison"):
            AlertRule("r", "s", op="~")
        with pytest.raises(ObservabilityError, match="severity"):
            AlertRule("r", "s", severity="page")
        with pytest.raises(ObservabilityError, match="'over'"):
            AlertRule("r", "s", mode="rate")

    def test_duplicate_rule_names_rejected(self):
        engine = AlertEngine(["a: s > 1"])
        with pytest.raises(ObservabilityError, match="duplicate"):
            engine.add_rule("a: other > 2")


def driven_engine(rules, values, interval=1e-6, series="s"):
    """Drive an engine through ``values`` sampled at successive
    boundaries of a sampler with one probed series."""
    sampler = TimeSeriesSampler(interval)
    state = {"v": 0.0}
    sampler.add_probe(series, lambda: state["v"])
    engine = AlertEngine(rules)
    obs = Observability(sampler=sampler, health=engine)
    for i, value in enumerate(values):
        state["v"] = value
        sampler.advance(i * interval)
    return engine, obs


class TestEvaluation:
    def test_threshold_fires_and_resolves(self):
        engine, obs = driven_engine(["s > 10"], [0, 5, 20, 30, 5])
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.fired_at == pytest.approx(2e-6)
        assert alert.resolved_at == pytest.approx(4e-6)
        assert alert.state == "resolved"
        assert alert.value == 20.0
        assert not engine.firing()
        # trace instants landed on the health track
        names = [(e.name, e.args["alert"]) for e in obs.tracer.events
                 if e.track == "health"]
        assert names == [("alert:firing", "s"), ("alert:resolved", "s")]

    def test_still_firing_at_end_of_run(self):
        engine, _ = driven_engine(["s > 10"], [0, 20, 30])
        assert engine.alerts[0].state == "firing"
        assert engine.firing() == engine.alerts

    def test_rate_rule_fires_on_counter_slope(self):
        # counter flat, then +10/bucket: rate = 1e7/s over 1us buckets
        engine, _ = driven_engine(
            ["fast: s rate > 5e6 over 2us"], [0, 0, 0, 10, 20, 20, 20, 20]
        )
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.fired_at == pytest.approx(4e-6)
        assert alert.resolved_at is not None
        # evidence window carries the triggering rate curve
        assert alert.window
        assert alert.window[-1][1] == pytest.approx(1e7)

    def test_absent_rule_fires_while_counter_stalls(self):
        engine, _ = driven_engine(
            ["stall: s absent over 3us"], [0, 1, 2, 3, 3, 3, 3, 4, 5]
        )
        assert len(engine.alerts) == 1
        alert = engine.alerts[0]
        assert alert.fired_at == pytest.approx(6e-6)
        assert alert.resolved_at == pytest.approx(7e-6)

    def test_no_history_no_false_fire(self):
        engine, _ = driven_engine(["r: s rate > 0 over 5us"], [0, 10])
        assert engine.alerts == []  # not enough buckets for the window

    def test_label_filter_selects_series(self):
        sampler = TimeSeriesSampler(1e-6)
        sampler.add_probe("c", lambda: 100, {"cause": "down"})
        sampler.add_probe("c", lambda: 0, {"cause": "loss"})
        engine = AlertEngine(["only: c{cause=loss} > 1"])
        Observability(sampler=sampler, health=engine)
        sampler.advance(0.0)
        assert engine.alerts == []  # the filtered stream stays at 0


class TestEscalation:
    def test_critical_firing_escalates_once(self):
        calls = []
        engine = AlertEngine(["bad: s > 1 !critical", "meh: s > 2"])
        engine.escalate_to(lambda reason, t: calls.append((reason, t)))
        sampler = TimeSeriesSampler(1e-6)
        state = {"v": 0.0}
        sampler.add_probe("s", lambda: state["v"])
        sampler.on_bucket(engine.observe)
        for i, value in enumerate([0, 5, 5, 5]):
            state["v"] = value
            sampler.advance(i * 1e-6)
        # both rules fired, only the critical one escalated, exactly once
        assert len(engine.alerts) == 2
        assert calls == [("alert:bad", pytest.approx(1e-6))]


class TestExport:
    def test_export_schema(self):
        engine, _ = driven_engine(["s > 10"], [0, 20, 5])
        doc = engine.export()
        assert doc["schema"] == "repro.alerts/1"
        assert doc["rules"] == ["s: s > 10"]
        (alert,) = doc["alerts"]
        assert alert["state"] == "resolved"
        assert alert["rule"] == "s: s > 10"
        assert alert["window"]
