"""Baselines: host-only AllReduce schemes, host-only KVS, hand-written P4."""

import pytest

from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays, value_words, zipf_keys
from repro.baselines.host_allreduce import ParameterServerAllReduce, RingAllReduce
from repro.baselines.host_kvs import HostOnlyKvs
from repro.baselines.p4_netcache import build_netcache_program, handwritten_p4_source
from repro.ncp.wire import encode_frame
from repro.pisa.switch_dev import PisaSwitch


class TestParameterServer:
    def test_correctness(self):
        n, length, w = 3, 48, 8
        arrays = random_arrays(n, length, seed=1)
        ps = ParameterServerAllReduce(n, length, w)
        results, elapsed = ps.run(arrays)
        expected = AllReduceJob.expected(arrays)
        assert all(r == expected for r in results)
        assert elapsed > 0

    def test_ps_link_is_bottleneck(self):
        # The PS uplink carries ~2*n*size; each worker link ~2*size.
        n, length, w = 4, 64, 8
        ps = ParameterServerAllReduce(n, length, w)
        ps.run(random_arrays(n, length, seed=2))
        link_bytes = {
            frozenset((lk.a.name, lk.b.name)): lk.stats.bytes for lk in ps.net.links
        }
        ps_bytes = link_bytes[frozenset(("ps", "tor"))]
        worker_bytes = link_bytes[frozenset(("w0", "tor"))]
        assert ps_bytes >= worker_bytes * (n - 1)


class TestRing:
    def test_correctness(self):
        n, w = 4, 4
        length = n * w * 2
        arrays = random_arrays(n, length, seed=3)
        ring = RingAllReduce(n, length, w)
        results, _ = ring.run(arrays)
        expected = AllReduceJob.expected(arrays)
        assert all(r == expected for r in results)

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_various_worker_counts(self, n):
        w = 2
        length = n * w * 3
        arrays = random_arrays(n, length, seed=n)
        ring = RingAllReduce(n, length, w)
        results, _ = ring.run(arrays)
        assert results[0] == AllReduceJob.expected(arrays)

    def test_rejects_single_worker(self):
        with pytest.raises(Exception):
            RingAllReduce(1, 8, 2)

    def test_alignment_requirement(self):
        with pytest.raises(Exception):
            RingAllReduce(3, 10, 2)  # 10 not divisible by 3*2


class TestHostKvs:
    def test_all_gets_hit_server(self):
        kvs = HostOnlyKvs(n_clients=1, val_words=4, n_keys=32)
        keys = zipf_keys(50, 32, 1.0, seed=1)
        records = kvs.run_workload(0, keys)
        assert len(records) == 50
        assert kvs.server_ops == 50
        for record, key in zip(records, keys):
            assert record.value == value_words(key, 4)

    def test_put_updates_store(self):
        kvs = HostOnlyKvs(n_clients=1, val_words=4)
        kvs.put(0, 5, [9, 9, 9, 9])
        kvs.net.run()
        kvs.get(0, 5)
        kvs.net.run()
        assert kvs.records[-1].value == [9, 9, 9, 9]

    def test_latency_includes_server_delay(self):
        kvs = HostOnlyKvs(n_clients=1, val_words=4, server_delay=100e-6)
        kvs.get(0, 1)
        kvs.net.run()
        assert kvs.records[-1].latency > 100e-6


class TestHandwrittenNetcache:
    def make(self, cache_size=8, val_words=4):

        program = build_netcache_program(cache_size, val_words, server_id=1)
        sw = PisaSwitch(program)
        from repro.ncp.wire import ChunkLayout, KernelLayout

        layout = KernelLayout(
            1,
            "kv",
            [
                ChunkLayout("key", 1, 64, False),
                ChunkLayout("val", val_words, 32, False),
                ChunkLayout("update", 1, 8, False),
            ],
        )
        from repro.ncp.wire import node_ip

        sw.table_insert("ipv4_route", [node_ip(0)], "ipv4_forward", [0])
        sw.table_insert("ipv4_route", [node_ip(1)], "ipv4_forward", [1])
        return sw, layout

    def test_get_miss_passes(self):
        sw, layout = self.make()
        frame = encode_frame(layout, 0, 1, seq=0, chunks=[[5], [0, 0, 0, 0], [0]])
        assert sw.process(frame).verdict == "pass"

    def test_populate_then_hit(self):
        sw, layout = self.make()
        sw.table_insert("CacheLookup", [5], "CacheHit", [2])
        update = encode_frame(
            layout, 1, 0, seq=0, chunks=[[5], [7, 8, 9, 10], [1]], from_node=1
        )
        assert sw.process(update).verdict == "drop"
        get = encode_frame(layout, 0, 1, seq=1, chunks=[[5], [0, 0, 0, 0], [0]])
        result = sw.process(get)
        assert result.verdict == "reflect"
        from repro.ncp.wire import decode_frame

        decoded = decode_frame(result.data, {1: layout})
        assert decoded.chunks[1] == [7, 8, 9, 10]

    def test_put_invalidates(self):
        sw, layout = self.make()
        sw.table_insert("CacheLookup", [5], "CacheHit", [2])
        sw.process(
            encode_frame(layout, 1, 0, seq=0, chunks=[[5], [7, 8, 9, 10], [1]], from_node=1)
        )
        put = encode_frame(layout, 0, 1, seq=1, chunks=[[5], [1, 1, 1, 1], [1]])
        assert sw.process(put).verdict == "pass"  # to server
        get = encode_frame(layout, 0, 1, seq=2, chunks=[[5], [0, 0, 0, 0], [0]])
        assert sw.process(get).verdict == "pass"  # invalid -> miss

    def test_source_is_much_longer_than_ncl(self):
        from repro.apps.kvs_cache import KVS_NCL

        hand_loc = len([ln for ln in handwritten_p4_source(256, 8).splitlines() if ln.strip()])
        ncl_loc = len(
            [ln for ln in KVS_NCL.splitlines()
             if ln.strip() and not ln.strip().startswith("//")]
        )
        assert hand_loc > 5 * ncl_loc  # the S2 motivation, quantified
