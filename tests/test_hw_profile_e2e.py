"""End-to-end runs on the hardware-flavoured (tofino-like) profile:
the arch-transformed programs must behave identically to the bmv2 ones
through the full cluster stack, and the controller must see through the
register splits."""


from repro.apps.allreduce import AllReduceJob
from repro.apps.kvs_cache import KvsCluster
from repro.apps.workloads import random_arrays, value_words, zipf_keys


class TestAllReduceOnHardwareProfile:
    def test_round_correctness(self):
        job = AllReduceJob(3, 64, 8, profile="tofino-like")
        arrays = random_arrays(3, 64, seed=5)
        results, _ = job.run_round(arrays)
        expected = AllReduceJob.expected(arrays)
        assert all(r == expected for r in results)

    def test_splits_were_performed(self):
        job = AllReduceJob(2, 32, 4, profile="tofino-like")
        splits = job.program.split_info["s1"]
        assert {s.name for s in splits} == {"accum"}
        report = job.program.reports["s1"]
        assert all(v <= 1 for v in report.max_register_accesses.values())

    def test_register_dump_reassembles_logical_array(self):
        job = AllReduceJob(1, 16, 4, profile="tofino-like", multiround=False)
        arrays = [[i + 1 for i in range(16)]]
        job.run_round(arrays)
        # accum is physically split into accum__0..3; the controller
        # presents the logical array.
        dump = job.cluster.controller.register_dump("accum")
        assert dump == arrays[0]

    def test_multiround_on_hardware(self):
        job = AllReduceJob(2, 16, 4, profile="tofino-like", multiround=True)
        for seed in range(2):
            arrays = random_arrays(2, 16, seed=seed)
            results, _ = job.run_round(arrays)
            assert results[0] == AllReduceJob.expected(arrays)


class TestKvsOnHardwareProfile:
    def test_cache_behaviour_identical(self):
        kvs = KvsCluster(
            n_clients=1, cache_size=8, val_words=4, n_keys=64,
            profile="tofino-like",
        )
        kvs.install_hot_keys([1, 2])
        kvs.get(0, 1)
        kvs.get(0, 40)
        kvs.run()
        hit, miss = kvs.records
        if not hit.served_by_cache:
            hit, miss = miss, hit
        assert hit.value == value_words(1, 4)
        assert miss.value == value_words(40, 4)
        assert hit.latency < miss.latency

    def test_cache_register_split_recorded(self):
        kvs = KvsCluster(
            n_clients=1, cache_size=8, val_words=4, profile="tofino-like"
        )
        names = {s.name for s in kvs.program.split_info["s1"]}
        assert "Cache" in names

    def test_workload_parity_with_bmv2(self):
        keys = zipf_keys(60, 64, 1.0, seed=3)
        outcomes = {}
        for profile in ("bmv2", "tofino-like"):
            kvs = KvsCluster(
                n_clients=1, cache_size=8, val_words=4, n_keys=64,
                profile=profile,
            )
            kvs.install_hot_keys([0, 1, 2, 3])
            kvs.run_workload(0, keys)
            outcomes[profile] = [
                (r.key, r.served_by_cache, tuple(r.value)) for r in kvs.records
            ]
        assert outcomes["bmv2"] == outcomes["tofino-like"]
