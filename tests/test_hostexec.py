"""HostProgram: executing NCL host code (main) against a live cluster."""

import pytest

from repro.errors import RuntimeApiError
from repro.nclc import Compiler, WindowConfig
from repro.runtime import Cluster, HostProgram

UNIFIED = r"""
struct window { unsigned len; };
_net_ _at_("s1") int accum[16] = {0};
_net_ _at_("s1") unsigned count[4] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

int data[16];
int result_buf[16];
bool done = false;
int rounds = 0;

_net_ _out_ void allreduce(int *d) {
  unsigned base = window.seq * window.len;
  for (unsigned i = 0; i < window.len; ++i)
    accum[base + i] += d[i];
  if (++count[window.seq] == nworkers) {
    memcpy(d, &accum[base], window.len * 4);
    count[window.seq] = 0; _bcast();
  } else { _drop(); }
}

_net_ _in_ void result(int *d, _ext_ int *hdata, _ext_ bool *flag) {
  for (unsigned i = 0; i < window.len; ++i)
    hdata[window.seq * window.len + i] = d[i];
  if (window.last) *flag = true;
}

int fill(int scale) {
  for (unsigned i = 0; i < 16; ++i) data[i] = (int)i * scale;
  return scale;
}

int main() {
  ncl::ctrl_wr(&nworkers, 1);
  fill(2);
  ncl::out(allreduce, {data});
  while (!done) {
    ncl::in(result, {result_buf, &done});
    rounds = rounds + 1;
  }
  return rounds;
}
"""

AND = "host w0\nswitch s1\nlink w0 s1"


@pytest.fixture()
def cluster():
    program = Compiler().compile(
        UNIFIED,
        and_text=AND,
        windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
    )
    return Cluster.from_program(program)


class TestUnifiedExecution:
    def test_main_runs_to_completion(self, cluster):
        hp = HostProgram(cluster, "w0")
        rc = hp.run("main")
        assert rc == 4  # 16 elements / window 4 = 4 in() iterations
        state = cluster.host("w0").state
        assert state.arrays["result_buf"] == [i * 2 for i in range(16)]
        assert state.arrays["done"] == [1]

    def test_helper_function_callable(self, cluster):
        hp = HostProgram(cluster, "w0")
        assert hp.run("fill", [3]) == 3
        assert cluster.host("w0").state.arrays["data"][5] == 15

    def test_ctrl_wr_applied(self, cluster):
        hp = HostProgram(cluster, "w0")
        hp.run("main")
        assert cluster.controller.ctrl_rd("nworkers") == 1

    def test_missing_function_raises(self, cluster):
        hp = HostProgram(cluster, "w0")
        with pytest.raises(RuntimeApiError, match="no host function"):
            hp.run("nonexistent")


HOST_SEMANTICS = r"""
int scratch[8];

_net_ _out_ void dummy(int *d) { }

int arith() {
  int x = 2147483647;
  x = x + 1;                 // wraps
  if (x != -2147483648) return 1;
  unsigned u = 0;
  u = u - 1;
  if (u != 4294967295u) return 2;
  int q = -7 / 2;
  if (q != -3) return 3;
  return 0;
}

int shortcircuit() {
  int hits = 0;
  // rhs must not evaluate: division by zero would trap
  if (0 && (1 / 0)) hits = 99;
  if (1 || (1 / 0)) hits = hits + 1;
  return hits;
}

int loops() {
  int total = 0;
  for (int i = 0; i < 10; ++i) {
    if (i == 3) continue;
    if (i == 7) break;
    total += i;
  }
  int j = 0;
  while (j < 4) { ++j; }
  return total * 100 + j;
}

int pointers() {
  scratch[2] = 5;
  scratch[2] += 10;
  return scratch[2];
}
"""


@pytest.fixture()
def host_sema_cluster():
    program = Compiler().compile(HOST_SEMANTICS, windows={"dummy": WindowConfig(mask=(1,))})
    return Cluster.from_program(program)


class TestHostCSemantics:
    def test_fixed_width_arithmetic(self, host_sema_cluster):
        hp = HostProgram(host_sema_cluster, "h0")
        assert hp.run("arith") == 0

    def test_short_circuit_unlike_kernels(self, host_sema_cluster):
        hp = HostProgram(host_sema_cluster, "h0")
        assert hp.run("shortcircuit") == 1

    def test_loop_control(self, host_sema_cluster):
        hp = HostProgram(host_sema_cluster, "h0")
        # 0+1+2+4+5+6 = 18; j ends at 4
        assert hp.run("loops") == 1804

    def test_global_array_mutation(self, host_sema_cluster):
        hp = HostProgram(host_sema_cluster, "h0")
        assert hp.run("pointers") == 15
        assert host_sema_cluster.host("h0").state.arrays["scratch"][2] == 15


MAP_HOST = r"""
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 8> Idx;
_net_ _at_("s1") bool Valid[8] = {false};

_net_ _out_ void probe(uint64_t key, unsigned *out) {
  if (auto *slot = Idx[key]) out[0] = 100 + *slot;
  else out[0] = 0;
}

int setup() {
  ncl::map_insert(&Idx, 42, 3);
  ncl::map_insert(&Idx, 43, 4);
  ncl::map_erase(&Idx, 43);
  return 0;
}
"""


class TestHostMapManagement:
    def test_map_insert_and_erase_from_ncl(self):
        from repro.nclc import Compiler, WindowConfig
        from repro.runtime import Cluster, HostProgram

        program = Compiler().compile(
            MAP_HOST,
            and_text="host a\nhost b\nswitch s1\nlink a s1\nlink s1 b",
            windows={"probe": WindowConfig(mask=(1, 1))},
        )
        cluster = Cluster.from_program(program)
        hp = HostProgram(cluster, "a")
        hp.run("setup")
        assert cluster.controller.map_entries("Idx") == {42: 3}
        got = []
        cluster.hosts["b"].on_raw_window("probe", lambda w, h: got.append(w.chunks[1][0]))
        cluster.hosts["a"].out_window("probe", 0, [[42], [0]], dst="b")
        cluster.hosts["a"].out_window("probe", 1, [[43], [0]], dst="b")
        cluster.run()
        assert got == [103, 0]
