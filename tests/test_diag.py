"""Tests for the repro.diag diagnostics engine (sink, render, export)."""

import json

from repro.diag import (
    Diagnostic,
    DiagnosticSink,
    Severity,
    Span,
    diagnostic_from_error,
)
from repro.diag.export import SCHEMA, export_dict, findings_by_code, render_json
from repro.diag.render import SourceMap, render_diagnostic, render_text
from repro.errors import NclSyntaxError, NclTypeError, SourceLocation


def loc(line, col, filename="demo.ncl"):
    return SourceLocation(filename, line, col)


class TestSinkBasics:
    def test_counts_and_flags(self):
        sink = DiagnosticSink()
        sink.error("NCL0400", "bad type", loc(1, 1))
        sink.warning("NCL0703", "dead store", loc(2, 3))
        sink.note("NCL0001", "fyi")
        assert len(sink) == 3
        assert sink.count(Severity.ERROR) == 1
        assert sink.count(Severity.WARNING) == 1
        assert sink.count(Severity.NOTE) == 1
        assert sink.has_errors and sink.has_warnings

    def test_promote_warnings_counts(self):
        sink = DiagnosticSink()
        sink.warning("NCL0703", "w1", loc(1, 1))
        sink.warning("NCL0703", "w2", loc(2, 1))
        sink.note("NCL0001", "n")
        assert sink.promote_warnings() == 2
        assert sink.count(Severity.ERROR) == 2
        assert not sink.has_warnings

    def test_sorted_is_source_order_then_severity(self):
        sink = DiagnosticSink()
        sink.warning("NCL0703", "later line", loc(5, 1))
        sink.error("NCL0400", "early line", loc(2, 1))
        sink.warning("NCL0701", "same spot warning", loc(2, 1))
        out = [d.message for d in sink.sorted()]
        # line 2 first; at the same location errors outrank warnings.
        assert out == ["early line", "same spot warning", "later line"]

    def test_extend(self):
        a, b = DiagnosticSink(), DiagnosticSink()
        a.error("NCL0400", "x", loc(1, 1))
        b.extend(a)
        assert len(b) == 1


class TestFromError:
    def test_default_code_from_class(self):
        diag = diagnostic_from_error(NclSyntaxError("bad token", loc(3, 7)))
        assert diag.code == "NCL0101"
        assert diag.severity is Severity.ERROR
        assert (diag.primary.line, diag.primary.column) == (3, 7)

    def test_explicit_code_and_length(self):
        exc = NclTypeError("no such name", loc(1, 5), code="NCL0404", length=4)
        diag = diagnostic_from_error(exc)
        assert diag.code == "NCL0404"
        assert diag.primary.length == 4

    def test_locless_error_has_no_span(self):
        diag = diagnostic_from_error(NclTypeError("somewhere"))
        assert diag.primary is None


class TestRender:
    SOURCE = "int x;\nx = foo + 1;\n"

    def test_caret_excerpt(self):
        diag = Diagnostic(
            Severity.ERROR,
            "NCL0404",
            "use of undeclared identifier 'foo'",
            primary=Span(loc(2, 5), 3),
        )
        text = render_diagnostic(diag, SourceMap({"demo.ncl": self.SOURCE}))
        assert text == (
            "error[NCL0404]: use of undeclared identifier 'foo'\n"
            "  --> demo.ncl:2:5\n"
            "  |\n"
            "2 | x = foo + 1;\n"
            "  |     ^^^"
        )

    def test_secondary_span_and_note(self):
        diag = Diagnostic(
            Severity.WARNING,
            "NCL0701",
            "possible race",
            primary=Span(loc(1, 1), 3),
            secondary=[Span(loc(2, 1), 1, "second site")],
            notes=["a note"],
            fixit="pin it",
        )
        text = render_diagnostic(diag, SourceMap({"demo.ncl": self.SOURCE}))
        assert "- second site" in text
        assert "  = note: a note" in text
        assert "  = help: pin it" in text

    def test_summary_line(self):
        sink = DiagnosticSink()
        sink.error("NCL0400", "e", loc(1, 1))
        sink.warning("NCL0703", "w", loc(2, 1))
        text = render_text(sink, {"demo.ncl": self.SOURCE})
        assert text.rstrip().endswith("1 error and 1 warning generated")
        empty = render_text(DiagnosticSink(), {})
        assert empty.strip() == "no diagnostics"

    def test_render_is_deterministic(self):
        def build():
            sink = DiagnosticSink()
            sink.warning("NCL0703", "w", loc(2, 1))
            sink.error("NCL0400", "e", loc(1, 1))
            return render_text(sink, {"demo.ncl": self.SOURCE})

        assert build() == build()


class TestExport:
    def make_sink(self):
        sink = DiagnosticSink()
        sink.error("NCL0400", "bad", loc(1, 2), length=3, rule="sema")
        sink.warning(
            "NCL0701",
            "race",
            loc(4, 1),
            secondary=[Span(loc(9, 3), 2, "other site")],
            notes=["n1"],
            fixit="do this",
            rule="race",
        )
        return sink

    def test_schema_and_summary(self):
        data = export_dict(self.make_sink())
        assert data["schema"] == SCHEMA == "repro.diag/1"
        assert data["summary"] == {"errors": 1, "warnings": 1, "notes": 0}
        first = data["diagnostics"][0]
        assert first["code"] == "NCL0400"
        assert first["primary"] == {
            "file": "demo.ncl",
            "line": 1,
            "column": 2,
            "length": 3,
        }

    def test_secondary_and_fixit_round_trip(self):
        data = export_dict(self.make_sink())
        race = data["diagnostics"][1]
        assert race["secondary"][0]["label"] == "other site"
        assert race["fixit"] == "do this"
        assert race["rule"] == "race"

    def test_json_byte_deterministic(self):
        a = render_json(self.make_sink())
        b = render_json(self.make_sink())
        assert a == b
        assert a.endswith("\n")
        json.loads(a)  # valid JSON

    def test_findings_by_code(self):
        grouped = findings_by_code(self.make_sink())
        assert set(grouped) == {"NCL0400", "NCL0701"}
        assert len(grouped["NCL0701"]) == 1


class TestDedupe:
    """Sink dedupe: byte-identical findings from several analysis
    contexts collapse to one; anything content-distinct survives."""

    def test_identical_diagnostics_collapse(self):
        sink = DiagnosticSink()
        for _ in range(3):
            sink.error(
                "NCL0921", "aliases", loc(4, 2),
                notes=["shared"], fixit="rename it", rule="namespaces",
            )
        assert sink.dedupe() == 2
        assert len(sink) == 1

    def test_first_occurrence_and_order_kept(self):
        sink = DiagnosticSink()
        a = sink.error("NCL0400", "first", loc(1, 1))
        sink.warning("NCL0703", "second", loc(2, 1))
        sink.error("NCL0400", "first", loc(1, 1))
        assert sink.dedupe() == 1
        assert sink.diagnostics[0] is a
        assert [d.message for d in sink] == ["first", "second"]

    def test_any_content_difference_survives(self):
        base = dict(loc=loc(1, 1), notes=["n"], fixit="f", rule="r")
        sink = DiagnosticSink()
        sink.error("NCL0400", "msg", **base)
        sink.error("NCL0400", "msg", loc=loc(1, 2), notes=["n"], fixit="f", rule="r")
        sink.error("NCL0400", "msg", loc=loc(1, 1), notes=["other"], fixit="f", rule="r")
        sink.error("NCL0400", "msg", loc=loc(1, 1), notes=["n"], fixit="g", rule="r")
        sink.warning("NCL0400", "msg", **base)
        sink.error("NCL0401", "msg", **base)
        assert sink.dedupe() == 0
        assert len(sink) == 6

    def test_secondary_spans_participate_in_identity(self):
        sink = DiagnosticSink()
        sink.error("NCL0400", "msg", loc(1, 1),
                   secondary=[Span(loc(5, 1), 2, "here")])
        sink.error("NCL0400", "msg", loc(1, 1),
                   secondary=[Span(loc(5, 1), 2, "there")])
        sink.error("NCL0400", "msg", loc(1, 1),
                   secondary=[Span(loc(5, 1), 2, "here")])
        assert sink.dedupe() == 1
        assert len(sink) == 2

    def test_status_participates_in_identity(self):
        sink = DiagnosticSink()
        sink.warning("NCL0802", "overflow", loc(1, 1), status="proved")
        sink.warning("NCL0802", "overflow", loc(1, 1), status="possible")
        assert sink.dedupe() == 0

    def test_empty_sink(self):
        assert DiagnosticSink().dedupe() == 0
