"""Unit + golden tests for the NIR abstract interpreter.

Three layers:

* domain algebra -- AbsVal join/widen/wrap/known-bits laws, checked
  directly and against exhaustive concrete enumeration at small widths;
* whole-function facts -- ranges, proved branches, trap statuses on
  hand-built and compiled kernels;
* golden dump -- ``nclc build --emit absint`` output for
  examples/parity.ncl is byte-stable across compiles and matches
  tests/golden/parity_absint.txt.
"""

import itertools
import random
from pathlib import Path

import pytest

from repro.analysis.absint import (
    AbsVal,
    analyze_module,
    compare_verdict,
    exact_range,
)
from repro.nclc import Compiler
from repro.nir import ir

REPO = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden"


def interval(lo, hi, bits=8, signed=False):
    return AbsVal(bits, signed, lo, hi).reduced()


class TestDomainAlgebra:
    def test_const_is_singleton_with_full_pattern(self):
        v = AbsVal.const(9, 8, False)
        assert v.singleton == 9
        assert v.pattern() == "00001001"

    def test_join_covers_both_operands(self):
        a = interval(1, 3)
        b = interval(10, 12)
        j = a.join(b)
        assert j.lo == 1 and j.hi == 12
        # known bits survive a join only where both sides agree
        assert j.ones & ~(a.ones & b.ones) == 0

    def test_join_with_bottom_is_identity(self):
        a = interval(4, 7)
        bot = AbsVal.bottom(8, False)
        assert a.join(bot).lo == a.lo and a.join(bot).hi == a.hi
        assert bot.join(a).lo == a.lo and bot.join(a).hi == a.hi

    def test_widen_jumps_unstable_bounds_to_type_range(self):
        a = interval(0, 200)
        grown = interval(0, 201)
        w = a.widened(grown)
        assert w.lo == 0 and w.hi == 255  # hi unstable -> type max

    def test_widen_respects_shared_known_bits(self):
        # both sides know the top five bits are zero, so the widened
        # bound lands on 7, not the type max -- the bit domain still
        # converges because repeated widening clears unstable bits too
        w = interval(0, 3).widened(interval(0, 5))
        assert w.hi == 7

    def test_widen_keeps_stable_bounds(self):
        a = interval(2, 10)
        shrunk = interval(3, 10)
        w = a.widened(shrunk)
        assert w.lo == 2 and w.hi == 10

    def test_reduced_exchanges_bounds_and_bits(self):
        # bounds 40..47 share their top five bits -> pattern learns them
        v = interval(40, 47)
        assert v.pattern().startswith("00101")
        # conversely, a known low bit tightens parity-impossible bounds
        forced = AbsVal(8, False, 0, 255, zeros=0, ones=1).reduced()
        assert forced.lo >= 1

    def test_informative_gate(self):
        assert not AbsVal.top(8, False).informative()
        assert interval(0, 200).informative()
        assert AbsVal.top(8, True).informative() is False

    @pytest.mark.parametrize("signed", [False, True])
    def test_unsigned_range_matches_patterns(self, signed):
        v = AbsVal.const(-3 if signed else 250, 8, signed)
        lo, hi = v.unsigned_range()
        assert lo == hi == (253 if signed else 250)


class TestTransferSoundness:
    """Exhaustive 4-bit soundness: every concrete result of an operation
    on members of the abstract inputs lies inside the abstract output."""

    OPS = ["add", "sub", "mul", "and", "or", "xor"]

    @pytest.mark.parametrize("op", OPS)
    @pytest.mark.parametrize("signed", [False, True])
    def test_exhaustive_small_width(self, op, signed):
        from repro.util import intops

        bits = 4
        rng = random.Random(f"{op}:{signed}")
        concrete = {
            "add": lambda a, b: a + b,
            "sub": lambda a, b: a - b,
            "mul": lambda a, b: a * b,
            "and": lambda a, b: (a & intops.mask(bits)) & (b & intops.mask(bits)),
            "or": lambda a, b: (a & intops.mask(bits)) | (b & intops.mask(bits)),
            "xor": lambda a, b: (a & intops.mask(bits)) ^ (b & intops.mask(bits)),
        }[op]
        from repro.analysis.absint import _binop_arith

        tlo, thi = (-8, 7) if signed else (0, 15)
        for _ in range(40):
            alo = rng.randint(tlo, thi)
            ahi = rng.randint(alo, thi)
            blo = rng.randint(tlo, thi)
            bhi = rng.randint(blo, thi)
            a = AbsVal(bits, signed, alo, ahi).reduced()
            b = AbsVal(bits, signed, blo, bhi).reduced()
            out = _binop_arith(op, a, b, bits, signed)
            for ca, cb in itertools.product(
                range(alo, ahi + 1), range(blo, bhi + 1)
            ):
                wrapped = intops.wrap(concrete(ca, cb), bits, signed)
                assert out.contains(wrapped), (
                    f"{op} [{alo},{ahi}] x [{blo},{bhi}]: concrete "
                    f"{ca}?{cb}={wrapped} escapes {out!r}"
                )
                pat = wrapped & intops.mask(bits)
                assert pat & out.zeros == 0 and (~pat) & out.ones == 0

    def test_exact_range_is_unwrapped(self):
        a = interval(200, 255)
        b = interval(200, 255)
        lo, hi = exact_range("add", a, b)
        assert lo == 400 and hi == 510  # deliberately NOT wrapped to 8 bits

    def test_compare_verdicts(self):
        lo = interval(0, 7)
        nine = AbsVal.const(9, 8, False)
        assert compare_verdict("ugt", lo, nine) is False
        assert compare_verdict("ult", lo, nine) is True
        assert compare_verdict("eq", lo, nine) is False
        assert compare_verdict("eq", lo, AbsVal.const(3, 8, False)) is None
        # known-bits contradiction: even vs odd can never be equal
        even = AbsVal(8, False, 0, 255, zeros=1, ones=0).reduced()
        odd = AbsVal(8, False, 0, 255, zeros=0, ones=1).reduced()
        assert compare_verdict("eq", even, odd) is False


def _analyze_example(name, **compile_kw):
    source = (REPO / "examples" / name).read_text()
    program = Compiler(**compile_kw).compile(source, filename=name)
    return program


class TestFunctionFacts:
    def test_parity_tag_proved_constant(self):
        program = _analyze_example("parity.ncl", opt_level=0)
        [(label, module)] = program.switch_modules.items()
        facts = analyze_module(module, label_ids=program.label_ids)
        fn_facts = facts["parity"]
        # the (v | 9) & 1 result is a proved singleton 1
        ands = [
            i for i in fn_facts.fn.instructions()
            if isinstance(i, ir.BinOp) and i.op == "and"
        ]
        assert any(
            fn_facts.values.get(i) is not None
            and fn_facts.values[i].singleton == 1
            for i in ands
        )

    def test_stats_facts_cover_all_reachable_values(self):
        program = _analyze_example("stats.ncl", opt_level=1)
        for label, module in program.switch_modules.items():
            facts = analyze_module(module, label_ids=program.label_ids)
            for name, fn_facts in facts.items():
                assert fn_facts.reachable, name
                assert fn_facts.rounds >= 1


class TestGoldenDump:
    """``--emit absint`` output is byte-deterministic and golden-pinned.

    Regenerate (after an intentional analysis change) with::

        PYTHONPATH=src python -c "
        from pathlib import Path
        from repro.nclc import Compiler
        src = Path('examples/parity.ncl').read_text()
        p = Compiler(opt_level=2).compile(src, filename='examples/parity.ncl')
        Path('tests/golden/parity_absint.txt').write_text(p.render_absint())
        "
    """

    def test_dump_matches_golden(self):
        program = _analyze_example("parity.ncl", opt_level=2)
        expected = (GOLDEN / "parity_absint.txt").read_text()
        assert program.render_absint() == expected

    def test_dump_is_deterministic_across_compiles(self):
        first = _analyze_example("parity.ncl", opt_level=2).render_absint()
        second = _analyze_example("parity.ncl", opt_level=2).render_absint()
        assert first == second


class TestRangeSimplify:
    def test_parity_shrinks_at_o2_via_ranges(self):
        """rangesimplify is what removes the or/and: -O1 (everything but
        rangesimplify) keeps them, -O2 drops them."""

        def count(program):
            return sum(
                sum(1 for _ in fn.instructions())
                for module in program.switch_modules.values()
                for fn in module.functions.values()
            )

        at_o1 = _analyze_example("parity.ncl", opt_level=1)
        at_o2 = _analyze_example("parity.ncl", opt_level=2)
        assert count(at_o2) < count(at_o1)

    def test_simplify_ranges_reports_replacements(self):
        from repro.nir.passes.clone import clone_function
        from repro.nir.passes.rangesimplify import simplify_ranges

        program = _analyze_example("parity.ncl", opt_level=1)
        [(label, module)] = program.switch_modules.items()
        fn = clone_function(module.functions["parity"])
        assert simplify_ranges(fn) > 0
