"""Shared fixtures: canonical NCL programs and compile helpers."""

from __future__ import annotations

import pytest

from repro.nclc import Compiler, WindowConfig

#: Fig 4 -- AllReduce (multi-round variant used throughout tests).
ALLREDUCE_SRC = r"""
struct window { unsigned len; };
_net_ _at_("s1") int accum[DATA_LEN] = {0};
_net_ _at_("s1") unsigned count[DATA_LEN / WIN_LEN] = {0};
_net_ _at_("s1") _ctrl_ unsigned nworkers;

_net_ _out_ void allreduce(int *data) {
  unsigned base = window.seq * window.len;
  for (unsigned i = 0; i < window.len; ++i)
    accum[base + i] += data[i];
  if (++count[window.seq] == nworkers) {
    memcpy(data, &accum[base], window.len * 4);
    count[window.seq] = 0; _bcast();
  } else { _drop(); }
}

_net_ _in_ void result(int *data, _ext_ int *hdata, _ext_ bool *done) {
  for (unsigned i = 0; i < window.len; ++i)
    hdata[window.seq * window.len + i] = data[i];
  if (window.last) *done = true;
}
"""

#: Fig 5 -- KVS cache.
KVS_SRC = r"""
_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, CACHE_SIZE> Idx;
_net_ _at_("s1") unsigned Cache[CACHE_SIZE][VAL_WORDS] = {{0}};
_net_ _at_("s1") bool Valid[CACHE_SIZE] = {false};

_net_ _out_ void query(uint64_t key, unsigned *val, bool update) {
  if (window.from != SERVER && update) {
    if (auto *idx = Idx[key]) Valid[*idx] = false;
  } else if (window.from != SERVER) {
    if (auto *idx = Idx[key]) {
      if (Valid[*idx]) {
        memcpy(val, Cache[*idx], VAL_WORDS * 4); _reflect(); } }
  } else if (update) {
    if (auto *idx = Idx[key]) {
      memcpy(Cache[*idx], val, VAL_WORDS * 4);
      Valid[idx] = true; }
    _drop();
  } else { }
}
"""

ALLREDUCE_DEFINES = {"DATA_LEN": 64, "WIN_LEN": 4}
KVS_DEFINES = {"CACHE_SIZE": 16, "VAL_WORDS": 4, "SERVER": 2}

STAR_AND = """
host w0
host w1
switch s1
link w0 s1
link w1 s1
"""

KVS_AND = """
host c0
host c1
host server
switch s1
link c0 s1
link c1 s1
link server s1
"""


def frontend_unit(source: str, defines=None):
    from repro.ncl import frontend

    return frontend(source, defines=defines)


def lowered_module(source: str, defines=None):
    from repro.ncl import frontend
    from repro.nir.lower import lower_unit

    return lower_unit(frontend(source, defines=defines))


@pytest.fixture(scope="session")
def allreduce_program():
    return Compiler().compile(
        ALLREDUCE_SRC,
        and_text=STAR_AND,
        windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
        defines=ALLREDUCE_DEFINES,
    )


@pytest.fixture(scope="session")
def kvs_program():
    return Compiler().compile(
        KVS_SRC,
        and_text=KVS_AND,
        windows={"query": WindowConfig(mask=(1, 4, 1))},
        defines=KVS_DEFINES,
    )
