"""End-to-end tests for ``python -m repro.nclc lint`` (CLI + goldens)."""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.diag.export import render_json
from repro.diag.render import render_text
from repro.nclc.__main__ import main as nclc_main
from repro.nclc.lint import main as lint_main

REPO = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden"
DEMO = "examples/lint_demo.ncl"
CLEAN = "examples/stats.ncl"


def run_lint(tmp_path, source, *flags):
    path = tmp_path / "prog.ncl"
    path.write_text(source)
    return lint_main([str(path), *flags])


class TestExitCodes:
    def test_clean_file_exits_zero(self, capsys):
        assert lint_main([str(REPO / CLEAN)]) == 0
        assert "no diagnostics" in capsys.readouterr().out

    def test_demo_has_errors_exits_one(self, capsys):
        assert lint_main([str(REPO / DEMO)]) == 1
        out = capsys.readouterr().out
        assert "error[NCL0400]" in out and "warning[NCL0701]" in out

    def test_warnings_alone_exit_zero(self, tmp_path, capsys):
        src = "_net_ _out_ void k(int *d) { int h = 0; h = d[0]; d[1] = h; }"
        assert run_lint(tmp_path, src) == 0
        assert "warning[NCL0703]" in capsys.readouterr().out

    def test_werror_promotes_to_exit_one(self, tmp_path, capsys):
        src = "_net_ _out_ void k(int *d) { int h = 0; h = d[0]; d[1] = h; }"
        assert run_lint(tmp_path, src, "--werror") == 1
        assert "error[NCL0703]" in capsys.readouterr().out

    def test_clean_file_survives_werror(self, capsys):
        assert lint_main([str(REPO / CLEAN), "--werror"]) == 0

    def test_unknown_rule_exits_two(self, capsys):
        assert lint_main([str(REPO / CLEAN), "-W", "bogus"]) == 2
        assert "unknown analysis rule" in capsys.readouterr().err

    def test_unknown_profile_exits_two(self, capsys):
        assert lint_main([str(REPO / CLEAN), "--profile", "asic9000"]) == 2

    def test_missing_file_exits_two(self, capsys):
        assert lint_main(["no/such/file.ncl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_sources_exits_two(self, capsys):
        assert lint_main([]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "race" in out and "NCL0701" in out

    def test_dispatch_through_nclc_main(self, capsys):
        assert nclc_main(["lint", str(REPO / CLEAN)]) == 0


class TestMultiErrorRecovery:
    THREE_ERRORS = (
        "_net_ ncl::Map<unsigned, unsigned, 64> M;\n"
        "_net_ _out_ void k(int *d) { d[0] = nope; }\n"
        "_net_ _out_ void j(int *d) { d[0] = alsonope; }\n"
    )

    def test_three_sema_errors_in_one_invocation(self, tmp_path, capsys):
        """Acceptance: 3 independent sema errors -> all 3 reported, each
        with a stable code and a caret span, in a single lint run."""
        assert run_lint(tmp_path, self.THREE_ERRORS) == 1
        out = capsys.readouterr().out
        assert out.count("error[NCL") >= 3
        assert "nope" in out and "alsonope" in out and "'M'" in out
        # every error block carries a caret excerpt
        assert out.count("^") >= 3

    def test_three_errors_in_json(self, tmp_path, capsys):
        run_lint(tmp_path, self.THREE_ERRORS, "--json")
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.diag/1"
        assert data["summary"]["errors"] >= 3
        for diag in data["diagnostics"]:
            assert diag["primary"] is not None


class TestJsonOutput:
    def test_json_parses_and_is_deterministic(self, capsys):
        assert lint_main([str(REPO / DEMO), "--json"]) == 1
        first = capsys.readouterr().out
        lint_main([str(REPO / DEMO), "--json"])
        second = capsys.readouterr().out
        assert first == second
        data = json.loads(first)
        assert data["summary"] == {"errors": 6, "warnings": 8, "notes": 0}

    def test_status_field_grades_range_findings(self, capsys):
        """Absint-graded findings carry "proved"/"possible"; others none."""
        lint_main([str(REPO / DEMO), "--json"])
        data = json.loads(capsys.readouterr().out)
        by_code = {}
        for diag in data["diagnostics"]:
            by_code.setdefault(diag["code"], []).append(diag.get("status"))
        assert by_code["NCL0706"] == ["proved"]
        assert sorted(by_code["NCL0802"]) == ["possible", "proved"]
        assert sorted(by_code["NCL0805"]) == ["possible", "proved"]
        assert by_code["NCL0801"] == ["possible"]
        assert by_code["NCL0701"] == [None, None]  # no range evidence
        # proved findings are error severity, possible ones warnings
        for diag in data["diagnostics"]:
            if diag.get("status") == "proved":
                assert diag["severity"] == "error"
            elif diag.get("status") == "possible":
                assert diag["severity"] == "warning"


class TestGolden:
    """Byte-identical text and JSON reports for examples/lint_demo.ncl.

    Regenerate (after an intentional output change) with::

        PYTHONPATH=src python -c "
        from pathlib import Path
        from repro.analysis import lint_source
        from repro.diag.export import render_json
        from repro.diag.render import render_text
        name = 'examples/lint_demo.ncl'
        src = Path(name).read_text()
        r = lint_source(src, name)
        Path('tests/golden/lint_demo.txt').write_text(render_text(r.sink, {name: src}))
        Path('tests/golden/lint_demo.json').write_text(render_json(r.sink))
        "
    """

    @pytest.fixture()
    def result(self):
        source = (REPO / DEMO).read_text()
        return source, lint_source(source, DEMO)

    def test_text_golden(self, result):
        source, res = result
        expected = (GOLDEN / "lint_demo.txt").read_text()
        assert render_text(res.sink, {DEMO: source}) == expected

    def test_json_golden(self, result):
        _, res = result
        expected = (GOLDEN / "lint_demo.json").read_text()
        assert render_json(res.sink) == expected

    def test_demo_seeds_every_advertised_code(self, result):
        _, res = result
        seeded = {d.code for d in res.sink.sorted()}
        assert {"NCL0400", "NCL0701", "NCL0702", "NCL0703", "NCL0706",
                "NCL0801", "NCL0802", "NCL0805", "NCL0903"} <= seeded
        races = [d for d in res.sink.sorted() if d.code == "NCL0701"]
        assert len(races) == 2
        assert all(d.secondary for d in races)


class TestExamplesStayClean:
    """Regression: every shipped NCL program lints clean (all rules)."""

    def test_stats_example_file(self):
        assert lint_main([str(REPO / CLEAN), "--werror"]) == 0

    def test_parity_example_file(self):
        # parity.ncl's tag is *provably* constant, but the dead-branch /
        # overflow rules must not flag straight-line provable arithmetic
        assert lint_main([str(REPO / "examples/parity.ncl"), "--werror"]) == 0

    @pytest.mark.parametrize("app,defines", [
        ("allreduce.ALLREDUCE_NCL",
         {"DATA_LEN": 64, "WIN_LEN": 8, "NWORKERS": 2}),
        ("allreduce.ALLREDUCE_MULTIROUND_NCL",
         {"DATA_LEN": 64, "WIN_LEN": 8, "NWORKERS": 2, "CHUNK": 16}),
        ("dedup.DEDUP_NCL", {"FILTER_BITS": 1024}),
        ("kvs_cache.KVS_NCL",
         {"VAL_WORDS": 2, "SERVER": 1, "CACHE_SIZE": 64}),
        ("telemetry.TELEMETRY_NCL", {"SLOTS": 1024}),
    ])
    def test_shipped_apps(self, app, defines):
        import importlib

        mod_name, attr = app.split(".")
        module = importlib.import_module(f"repro.apps.{mod_name}")
        source = getattr(module, attr)
        result = lint_source(source, app, defines=defines or None)
        assert [d.code for d in result.sink.sorted()] == []
