"""Optimization passes: unit behaviour + differential semantics checks.

Every transform is validated two ways: structural assertions on the IR
it produces, and (the stronger guarantee) interpretation before/after on
randomized windows and states must be observationally identical.
"""

import pytest

from repro.errors import ConformanceError
from repro.nir import ir
from repro.nir.mem2reg import promote_allocas
from repro.nir.passes import optimize_host, optimize_switch
from repro.nir.passes.constfold import fold_constants
from repro.nir.passes.dce import eliminate_dead_code
from repro.nir.passes.gvn import global_value_numbering
from repro.nir.passes.inline import inline_calls
from repro.nir.passes.simplify_cfg import simplify_cfg
from repro.nir.passes.specialize import specialize_window
from repro.nir.passes.unroll import unroll_loops

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, KVS_DEFINES, KVS_SRC
from tests.diffutil import assert_transform_preserves, kernel_module


def count(fn, cls):
    return sum(1 for i in fn.instructions() if isinstance(i, cls))


def prep(fn):
    inline_calls(fn)
    promote_allocas(fn)


class TestConstFold:
    def test_folds_arithmetic(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) { d[0] = (3 + 4) * 2 - 6; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        fold_constants(fn)
        stores = [i for i in fn.instructions() if isinstance(i, ir.StoreParam)]
        assert isinstance(stores[0].value, ir.Const)
        assert stores[0].value.value == 8

    def test_strength_reduces_mul_pow2(self):
        mod = kernel_module("_net_ _out_ void k(unsigned *d) { d[0] = d[1] * 8; }")
        fn = mod.functions["k"]
        prep(fn)
        fold_constants(fn)
        eliminate_dead_code(fn)
        ops = {i.op for i in fn.instructions() if isinstance(i, ir.BinOp)}
        assert "mul" not in ops and "shl" in ops

    def test_strength_reduces_udiv_and_urem(self):
        mod = kernel_module(
            "_net_ _out_ void k(unsigned *d) { d[0] = d[1] / 4; d[2] = d[1] % 4; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        fold_constants(fn)
        eliminate_dead_code(fn)
        ops = {i.op for i in fn.instructions() if isinstance(i, ir.BinOp)}
        assert "udiv" not in ops and "urem" not in ops
        assert {"lshr", "and"} <= ops

    def test_identity_simplifications(self):
        mod = kernel_module(
            "_net_ _out_ void k(unsigned *d) {"
            " d[0] = d[1] + 0; d[2] = d[1] * 1; d[3] = d[1] & 0; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        fold_constants(fn)
        eliminate_dead_code(fn)
        assert count(fn, ir.BinOp) == 0  # all folded away

    def test_no_fold_of_division_by_zero(self):
        mod = kernel_module("_net_ _out_ void k(int *d) { d[0] = 1 / 0; }")
        fn = mod.functions["k"]
        prep(fn)
        fold_constants(fn)
        assert count(fn, ir.BinOp) == 1  # trap preserved

    @pytest.mark.parametrize("seed", range(3))
    def test_semantics_preserved(self, seed):
        assert_transform_preserves(
            "_net_ _out_ void k(int *d, unsigned *u) {"
            " d[0] = d[1] * 4 + (10 - 3);"
            " u[0] = (u[1] | 0) ^ (u[2] & 0xFFFFFFFF);"
            " d[2] = d[3] == d[3] ? 1 : u[3] > 2; }",
            "k",
            fold_constants,
            metas=[{}] * 5,
            seed=seed,
            pre=prep,
        )


class TestDce:
    def test_removes_unused_pure(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) { int unused = d[0] * 37; d[1] = 1; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        eliminate_dead_code(fn)
        assert count(fn, ir.BinOp) == 0
        assert count(fn, ir.LoadParam) == 0

    def test_keeps_side_effects(self):
        mod = kernel_module(
            "_net_ unsigned total[1];\n"
            "_net_ _out_ void k(unsigned *d) { total[0] += d[0]; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        eliminate_dead_code(fn)
        assert count(fn, ir.StoreElem) == 1

    def test_transitive_removal(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) {"
            " int a = d[0] + 1; int b = a * 2; int c = b - 3; d[1] = 5; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        eliminate_dead_code(fn)
        assert count(fn, ir.BinOp) == 0


class TestGvn:
    def test_cse_duplicate_expressions(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) {"
            " d[1] = d[0] * 3 + 1; d[2] = d[0] * 3 + 1; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        before = count(fn, ir.BinOp)
        global_value_numbering(fn)
        eliminate_dead_code(fn)
        assert count(fn, ir.BinOp) < before

    def test_commutative_normalization(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) { d[2] = d[0] + d[1]; d[3] = d[1] + d[0]; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        global_value_numbering(fn)
        eliminate_dead_code(fn)
        adds = [i for i in fn.instructions() if isinstance(i, ir.BinOp) and i.op == "add"]
        assert len(adds) == 1

    def test_map_lookups_cse(self):
        mod = kernel_module(KVS_SRC, KVS_DEFINES)
        fn = mod.functions["query"]
        prep(fn)
        fold_constants(fn)
        simplify_cfg(fn)
        global_value_numbering(fn)
        eliminate_dead_code(fn)
        # All three Idx[key] lookups collapse to one.
        assert count(fn, ir.MapLookup) == 1

    def test_loads_not_cse_across_stores(self):
        mod = kernel_module(
            "_net_ unsigned a[4];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " d[0] = a[0]; a[0] = 99; d[1] = a[0]; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        global_value_numbering(fn)
        assert count(fn, ir.LoadElem) == 2

    def test_semantics_preserved(self):
        assert_transform_preserves(
            KVS_SRC,
            "query",
            lambda fn: (global_value_numbering(fn), eliminate_dead_code(fn)),
            metas=[{"from": 0}, {"from": 2}, {"from": 1}] * 3,
            defines=KVS_DEFINES,
            pre=prep,
            prepare_state=lambda s: s.maps["Idx"].insert(0, 1),
            chunk_len=4,
        )


class TestSimplifyCfg:
    def test_folds_constant_branch(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) { if (1) d[0] = 1; else d[0] = 2; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        fold_constants(fn)
        simplify_cfg(fn)
        assert count(fn, ir.CondBr) == 0
        assert len(fn.blocks) == 1

    def test_merges_straightline_blocks(self):
        mod = kernel_module("_net_ _out_ void k(int *d) { { { d[0] = 1; } } }")
        fn = mod.functions["k"]
        prep(fn)
        simplify_cfg(fn)
        assert len(fn.blocks) == 1

    def test_semantics_preserved(self):
        assert_transform_preserves(
            "_net_ _out_ void k(int *d) {"
            " if (d[0] > 0) { if (0) d[1] = 9; else d[1] = 1; }"
            " else d[1] = 2;"
            " if (1) d[2] = 3; }",
            "k",
            lambda fn: (fold_constants(fn), simplify_cfg(fn)),
            metas=[{}] * 6,
            pre=prep,
        )


class TestInline:
    def test_call_disappears(self):
        mod = kernel_module(
            "int dbl(int x) { return x + x; }\n"
            "_net_ _out_ void k(int *d) { d[0] = dbl(d[1]); }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        assert count(fn, ir.CallFn) == 0

    def test_nested_helpers(self):
        mod = kernel_module(
            "int a(int x) { return x + 1; }\n"
            "int b(int x) { return a(x) * 2; }\n"
            "_net_ _out_ void k(int *d) { d[0] = b(d[1]); }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        assert count(fn, ir.CallFn) == 0

    def test_multi_return_makes_phi(self):
        mod = kernel_module(
            "int pick(int x) { if (x > 0) return 1; return 2; }\n"
            "_net_ _out_ void k(int *d) { d[0] = pick(d[1]); }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        promote_allocas(fn)
        assert count(fn, ir.Phi) >= 1

    def test_semantics_preserved(self):
        assert_transform_preserves(
            "int clamp(int v) { if (v > 50) return 50; if (v < -50) return -50; return v; }\n"
            "_net_ _out_ void k(int *d) { d[0] = clamp(d[0]) + clamp(d[1]); }",
            "k",
            lambda fn: (inline_calls(fn), promote_allocas(fn)),
            metas=[{}] * 6,
        )


class TestSpecializeWindow:
    def test_replaces_fields(self):
        mod = kernel_module(
            "struct window { unsigned len; };\n"
            "_net_ _out_ void k(int *d) { d[0] = window.len; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        n = specialize_window(fn, {"len": 4})
        assert n == 1
        assert count(fn, ir.WinField) == 0

    def test_builtin_fields_untouched_without_spec(self):
        mod = kernel_module("_net_ _out_ void k(unsigned *d) { d[0] = window.seq; }")
        fn = mod.functions["k"]
        prep(fn)
        specialize_window(fn, {"len": 4})
        assert count(fn, ir.WinField) == 1


class TestUnroll:
    def test_constant_trip_count_unrolls(self):
        mod = kernel_module(
            "_net_ unsigned a[8];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " for (unsigned i = 0; i < 8; ++i) a[i] += d[0]; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        unroll_loops(fn)
        fold_constants(fn)
        simplify_cfg(fn)
        from repro.nir.cfg import natural_loops

        assert not natural_loops(fn)
        assert count(fn, ir.StoreElem) == 8

    def test_zero_trip_loop_vanishes(self):
        mod = kernel_module(
            "_net_ _out_ void k(int *d) { for (unsigned i = 0; i < 0; ++i) d[0] = 1; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        unroll_loops(fn)
        assert count(fn, ir.StoreParam) == 0

    def test_accumulator_carried_out(self):
        assert_transform_preserves(
            "_net_ _out_ void k(int *d) {"
            " int s = 0;"
            " for (unsigned i = 0; i < 4; ++i) s += d[i];"
            " d[0] = s; }",
            "k",
            unroll_loops,
            metas=[{}] * 4,
            pre=prep,
        )

    def test_nested_loops(self):
        assert_transform_preserves(
            "_net_ unsigned m[4][4];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " for (unsigned i = 0; i < 4; ++i)"
            "   for (unsigned j = 0; j < 4; ++j)"
            "     m[i][j] = d[0] + i * 4 + j; }",
            "k",
            unroll_loops,
            metas=[{}] * 2,
            pre=prep,
        )

    def test_branch_in_body(self):
        assert_transform_preserves(
            "_net_ _out_ void k(int *d) {"
            " for (unsigned i = 0; i < 4; ++i)"
            "   if (d[i] > 0) d[i] = 0; else d[i] = 1; }",
            "k",
            unroll_loops,
            metas=[{}] * 5,
            pre=prep,
        )

    def test_data_dependent_bound_rejected(self):
        mod = kernel_module(
            "_net_ _out_ void k(unsigned *d) {"
            " for (unsigned i = 0; i < d[0]; ++i) d[1] += 1; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        with pytest.raises(ConformanceError, match="not provably constant"):
            unroll_loops(fn)

    def test_window_len_bound_needs_specialization(self):
        mod = kernel_module(
            "struct window { unsigned len; };\n"
            "_net_ _out_ void k(int *d) {"
            " for (unsigned i = 0; i < window.len; ++i) d[i] = 0; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        with pytest.raises(ConformanceError):
            unroll_loops(fn)

    def test_specialized_window_len_unrolls(self):
        mod = kernel_module(
            "struct window { unsigned len; };\n"
            "_net_ _out_ void k(int *d) {"
            " for (unsigned i = 0; i < window.len; ++i) d[i] = 7; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        specialize_window(fn, {"len": 3})
        fold_constants(fn)
        unroll_loops(fn)
        assert count(fn, ir.StoreParam) == 3

    def test_trip_limit_enforced(self):
        mod = kernel_module(
            "_net_ unsigned t[1];\n"
            "_net_ _out_ void k(int *d) {"
            " for (unsigned i = 0; i < 100000; ++i) t[0] += 1; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        with pytest.raises(ConformanceError, match="unroll limit"):
            unroll_loops(fn, max_trips=64)

    def test_infinite_loop_rejected(self):
        mod = kernel_module(
            "_net_ unsigned t[1];\n"
            "_net_ _out_ void k(int *d) { while (1) t[0] += 1; }"
        )
        fn = mod.functions["k"]
        prep(fn)
        with pytest.raises(ConformanceError):
            unroll_loops(fn, max_trips=64)


class TestPipelines:
    def test_optimize_switch_allreduce_differential(self):
        assert_transform_preserves(
            ALLREDUCE_SRC,
            "allreduce",
            lambda fn: optimize_switch(fn, window_spec={"len": 4}),
            metas=[
                {"seq": s, "len": 4, "from": w, "last": 0}
                for s in range(4)
                for w in range(2)
            ],
            defines=ALLREDUCE_DEFINES,
            prepare_state=lambda s: s.ctrl_write("nworkers", 2),
            chunk_len=4,
        )

    def test_optimize_switch_kvs_differential(self):
        def prepare(state):
            state.maps["Idx"].insert(1, 0)
            state.maps["Idx"].insert(2, 1)

        assert_transform_preserves(
            KVS_SRC,
            "query",
            lambda fn: optimize_switch(fn, window_spec={}),
            metas=[{"from": f} for f in (0, 1, 2)] * 4,
            defines=KVS_DEFINES,
            prepare_state=prepare,
            chunk_len=4,
        )

    def test_optimize_host_keeps_loops_dynamic(self):
        mod = kernel_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        fn = mod.functions["result"]
        optimize_host(fn)
        from repro.nir.cfg import natural_loops

        assert natural_loops(fn)  # host code keeps its loops
