"""The nclc pass manager (repro.nclc.pm): registry integrity, dependency
checking, preserved-analysis invalidation, presets, fingerprints."""

import pytest

from repro.errors import PipelineError, ReproError
from repro.nclc import pm
from repro.nclc.pm import (
    BUILD_PASSES,
    COMPILE_PASSES,
    CompilePass,
    PassManager,
    PipelineContext,
    build_pipeline,
    pipeline_fingerprint,
)


@pytest.fixture()
def scratch_passes():
    """Register throwaway passes for a test, then restore the registry."""
    added = []

    def register(name, **kw):
        @pm.register_compile_pass(name, **kw)
        def _fn(ctx, _fns=kw.pop("fn", None)):  # pragma: no cover - replaced
            pass

        added.append(name)
        cpass = COMPILE_PASSES[name]
        return cpass

    yield register
    for name in added:
        cpass = COMPILE_PASSES.pop(name, None)
        if cpass is not None and cpass.analysis:
            for key in cpass.provides:
                pm._ANALYSIS_PRODUCERS.pop(key, None)


class TestRegistry:
    def test_build_pipeline_names_are_all_registered(self):
        for name in BUILD_PASSES:
            assert name in COMPILE_PASSES

    def test_every_pass_documents_itself(self):
        for name in BUILD_PASSES:
            assert COMPILE_PASSES[name].about, f"{name} has no about text"

    def test_dependencies_are_satisfied_in_preset_order(self):
        """Statically check the preset: each pass's requires must be met
        by the initial context keys or an earlier pass's provides."""
        available = {"source", "filename", "defines", "and_text", "windows_in"}
        for name in BUILD_PASSES:
            cpass = COMPILE_PASSES[name]
            for key in cpass.requires:
                assert key in available, f"{name} requires unproduced {key!r}"
            available.update(cpass.provides)

    def test_duplicate_registration_rejected(self, scratch_passes):
        scratch_passes("t-dup")
        with pytest.raises(PipelineError, match="duplicate"):
            pm.register_compile_pass("t-dup")(lambda ctx: None)

    def test_unknown_pipeline_name_rejected(self):
        with pytest.raises(PipelineError, match="unknown compile passes"):
            PassManager(["lex", "no-such-pass"])


class TestDependencyChecking:
    def test_missing_requirement_raises(self):
        ctx = PipelineContext(source="_net_ _out_ void k(int *d) { d[0] = 1; }")
        with pytest.raises(PipelineError, match="requires 'tokens'"):
            PassManager(["parse"]).run(ctx)

    def test_artifact_get_before_put_raises(self):
        ctx = PipelineContext(source="")
        with pytest.raises(PipelineError, match="not produced yet"):
            ctx.get("module")


class TestAnalysisInvalidation:
    def test_transform_invalidates_and_producer_recomputes(self, scratch_passes):
        runs = {"analysis": 0, "consumer": 0}

        scratch_passes(
            "t-analysis", provides=("t-ok",), analysis=True, about="t"
        )
        scratch_passes(
            "t-clobber", requires=(), preserves=(), about="t"
        )
        scratch_passes(
            "t-preserving", requires=(), preserves=("t-ok",), about="t"
        )
        scratch_passes("t-consumer", requires=("t-ok",), preserves=("*",), about="t")
        COMPILE_PASSES["t-analysis"].fn = lambda ctx: runs.__setitem__(
            "analysis", runs["analysis"] + 1
        )
        COMPILE_PASSES["t-clobber"].fn = lambda ctx: None
        COMPILE_PASSES["t-preserving"].fn = lambda ctx: None
        COMPILE_PASSES["t-consumer"].fn = lambda ctx: runs.__setitem__(
            "consumer", runs["consumer"] + 1
        )

        ctx = PipelineContext(source="")
        PassManager(
            ["t-analysis", "t-preserving", "t-consumer"]
        ).run(ctx)
        assert runs == {"analysis": 1, "consumer": 1}
        assert "t-ok" in ctx.valid_analyses

        # A transform that does NOT preserve the analysis invalidates it;
        # the next consumer triggers recomputation through the producer.
        runs.update(analysis=0, consumer=0)
        ctx = PipelineContext(source="")
        PassManager(
            ["t-analysis", "t-clobber", "t-consumer"]
        ).run(ctx)
        assert runs == {"analysis": 2, "consumer": 1}

    def test_real_pipeline_keeps_conformance_valid_to_the_end(self):
        ctx = PipelineContext(
            source="_net_ _out_ void k(int *d) { d[0] += 1; }",
            options={"profile": __import__("repro.pisa.arch", fromlist=["profile_by_name"]).profile_by_name(None)},
        )
        PassManager(build_pipeline(2)).run(ctx)
        assert "conformance-ok" in ctx.valid_analyses
        assert "s1" in ctx.get("switch_programs")


class TestFailureReporting:
    def test_pass_failure_lands_in_the_sink(self):
        from repro.diag import DiagnosticSink

        sink = DiagnosticSink()
        ctx = PipelineContext(source="_net_ _out_ void k( {", sink=sink)
        with pytest.raises(ReproError):
            PassManager(["lex", "parse"]).run(ctx)
        assert sink.has_errors
        codes = [d.code for d in sink.diagnostics]
        assert "NCL0990" in codes

    def test_stage_times_accumulate_even_on_failure(self):
        ctx = PipelineContext(source="_net_ _out_ void k( {")
        with pytest.raises(ReproError):
            PassManager(["lex", "parse"]).run(ctx)
        assert "frontend" in ctx.stage_times


class TestPresetsAndFingerprints:
    def test_same_pass_names_at_every_level(self):
        assert build_pipeline(0) == build_pipeline(1) == build_pipeline(2)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown opt level"):
            build_pipeline(7)

    def test_fingerprint_varies_by_opt_level(self):
        prints = {pipeline_fingerprint(level) for level in (0, 1, 2)}
        assert len(prints) == 3

    def test_fingerprint_stable_across_calls(self):
        assert pipeline_fingerprint(2) == pipeline_fingerprint(2)

    def test_fingerprint_tracks_compiler_version(self, monkeypatch):
        before = pipeline_fingerprint(2)
        monkeypatch.setattr(pm, "NCLC_VERSION", pm.NCLC_VERSION + "-next")
        assert pipeline_fingerprint(2) != before

    def test_fingerprint_extra_items(self):
        assert pipeline_fingerprint(2, extra=("x",)) != pipeline_fingerprint(2)


class TestTraceGrouping:
    def test_frontend_passes_share_one_trace_stage(self):
        from repro.obs import CompileTrace

        fake = iter(range(10_000))
        trace = CompileTrace(clock=lambda: next(fake) * 1e-3)
        ctx = PipelineContext(
            source="_net_ _out_ void k(int *d) { d[0] += 1; }",
            options={"profile": __import__("repro.pisa.arch", fromlist=["profile_by_name"]).profile_by_name(None)},
            trace=trace,
        )
        PassManager(build_pipeline(2)).run(ctx)
        stages = [r["stage"] for r in trace.stages]
        assert stages[0] == "frontend"
        assert stages.count("frontend") == 1
        # but stage_times itemizes every pass or stage key
        for key in ("frontend", "irgen", "conformance", "versioning"):
            assert key in ctx.stage_times
