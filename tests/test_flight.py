"""The crash flight recorder: bounded ring, triggers, bundle validity,
and the end-to-end link-failure -> alert -> bundle -> query story."""

import json

import pytest

from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays
from repro.errors import RuntimeApiError, SimulationError
from repro.obs import (
    AlertEngine,
    FlightRecorder,
    Observability,
    TimeSeriesSampler,
    attach_cluster_probes,
    attach_network_probes,
    flight_guard,
    render_prom,
    validate_bundle,
)


class TestRing:
    def test_ring_is_bounded_but_counts_everything(self):
        flight = FlightRecorder(capacity=8)
        obs = Observability(flight=flight)
        for i in range(50):
            obs.tracer.instant(f"e{i}", i * 1e-6, track="t")
        assert flight.events_seen == 50
        recent = flight.recent()
        assert len(recent) == 8
        assert [e["name"] for e in recent] == [f"e{i}" for i in range(42, 50)]

    def test_bundle_is_self_contained_and_valid(self):
        sampler = TimeSeriesSampler(1e-6)
        sampler.add_probe("c", lambda: 1)
        flight = FlightRecorder(capacity=4)
        obs = Observability(
            sampler=sampler, health=AlertEngine(["c > 100"]), flight=flight
        )
        obs.tracer.instant("hello", 0.0, track="t")
        sampler.finish(0.0)
        bundle = flight.bundle("manual", now=0.0)
        assert validate_bundle(bundle) == []
        assert bundle["schema"] == "repro.flight/1"
        assert bundle["timeseries"]["schema"] == "repro.timeseries/1"
        assert bundle["alerts"]["schema"] == "repro.alerts/1"
        json.dumps(bundle)  # self-contained pure data

    def test_validate_rejects_malformed_bundles(self):
        assert validate_bundle([]) == ["bundle is not an object"]
        problems = validate_bundle({"schema": "nope"})
        assert any("schema" in p for p in problems)
        assert any("missing key" in p for p in problems)
        good = FlightRecorder(capacity=2).bundle("r")
        bad = dict(good, events=[{"ts": 0}])
        assert any("lacks ts/name/track" in p for p in validate_bundle(bad))
        overfull = dict(
            good, events=[{"ts": 0, "name": "e", "track": "t"}] * 3
        )
        assert any("exceed capacity" in p for p in validate_bundle(overfull))


class TestTriggers:
    def test_trigger_writes_numbered_bundles(self, tmp_path):
        flight = FlightRecorder(capacity=4, out_dir=str(tmp_path))
        Observability(flight=flight)
        flight.trigger("first", now=1e-6)
        flight.trigger("second", now=2e-6)
        paths = sorted(p.name for p in tmp_path.glob("flight-*.json"))
        assert paths == ["flight-0.json", "flight-1.json"]
        data = json.loads((tmp_path / "flight-1.json").read_text())
        assert data["reason"] == "second"
        assert validate_bundle(data) == []
        assert [r for r, _, _ in flight.bundles] == ["first", "second"]

    def test_flight_guard_dumps_and_reraises(self):
        flight = FlightRecorder(capacity=4)
        obs = Observability(flight=flight)
        with pytest.raises(SimulationError):
            with flight_guard(obs, clock=lambda: 3e-6):
                raise SimulationError("boom")
        ((reason, data, path),) = flight.bundles
        assert reason == "exception:SimulationError"
        assert data["virtual_time"] == 3e-6
        assert path is None  # no out_dir configured

    def test_flight_guard_without_flight_recorder_is_passthrough(self):
        with pytest.raises(ValueError):
            with flight_guard(Observability()):
                raise ValueError("x")


def crashed_allreduce(out_dir):
    """A 2-worker AllReduce with the full observability stack: round 1
    succeeds, then the w0 uplink goes down mid-round-2 -- the critical
    drop-rate alert fires (bundle 0), the round times out inside
    flight_guard (bundle 1)."""
    sampler = TimeSeriesSampler(1e-6)
    health = AlertEngine(
        ["drops: link.drops{cause=down} rate > 0 over 2us !critical"]
    )
    flight = FlightRecorder(capacity=128, out_dir=str(out_dir))
    obs = Observability(sampler=sampler, health=health, flight=flight)
    job = AllReduceJob(2, 256, 8, obs=obs)
    attach_network_probes(sampler, job.cluster.network)
    attach_cluster_probes(sampler, job.cluster)
    job.run_round(random_arrays(2, 256, seed=1))
    job.cluster.network.fail_link("w0", "s1", at=job.cluster.now() + 1e-6)
    with pytest.raises(RuntimeApiError):
        with flight_guard(obs, clock=job.cluster.now):
            job.run_round(random_arrays(2, 256, seed=2))
    sampler.finish(job.cluster.now())
    return obs, job


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def crash(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("flight")
        obs, job = crashed_allreduce(out_dir)
        return obs, job, out_dir

    def test_failure_produces_both_bundles(self, crash):
        obs, job, out_dir = crash
        reasons = [r for r, _, _ in obs.flight.bundles]
        assert reasons == ["alert:drops", "exception:RuntimeApiError"]
        link = job.cluster.network.link_between("w0", "s1")
        assert not link.up
        assert link.stats.drops_down > 0

    def test_bundles_validate_and_carry_the_alert(self, crash):
        obs, _, out_dir = crash
        for n in (0, 1):
            data = json.loads((out_dir / f"flight-{n}.json").read_text())
            assert validate_bundle(data) == []
        escalation = json.loads((out_dir / "flight-0.json").read_text())
        (alert,) = escalation["alerts"]["alerts"]
        assert alert["name"] == "drops"
        assert alert["severity"] == "critical"
        assert alert["state"] == "firing"
        # the evidence window shows the drop rate crossing zero
        assert alert["window"][-1][1] > 0
        assert alert["window"][0][1] == 0
        # and the bundled time series contains the triggering curve
        down = [
            s for s in escalation["timeseries"]["series"]
            if s["name"] == "link.drops" and s["labels"]["cause"] == "down"
        ]
        assert any(s["points"][-1][1] > 0 for s in down)

    def test_query_alerts_reconstructs_from_the_bundle(self, crash, capsys):
        """The acceptance bar: ``repro.obs.query alerts --flight``
        reconstructs the firing alert and its triggering window from
        the bundle alone."""
        from repro.obs.query import main

        _, _, out_dir = crash
        rc = main(
            ["alerts", "--flight", str(out_dir / "flight-0.json"), "--window"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "reason='alert:drops'" in out
        assert "link.drops{cause=down} rate > 0 over 2us !critical" in out
        assert "[critical] drops:" in out
        assert "still firing" in out
        assert "t=" in out  # the evidence window printed

    def test_query_alerts_rejects_invalid_bundle(self, tmp_path, capsys):
        from repro.obs.query import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        rc = main(["alerts", "--flight", str(bad)])
        assert rc == 2
        assert "invalid flight bundle" in capsys.readouterr().err

    def test_flight_events_bounded_by_capacity(self, crash):
        obs, _, out_dir = crash
        data = json.loads((out_dir / "flight-0.json").read_text())
        assert len(data["events"]) <= data["capacity"] == 128
        assert data["events_seen"] > data["capacity"]  # ring actually wrapped


class TestPromExport:
    def test_render_prom_from_crash_snapshot(self, tmp_path):
        obs, job = crashed_allreduce(tmp_path)
        text = render_prom(obs.snapshot())
        assert '# TYPE link_drops gauge' in text
        assert 'link_drops{cause="down",link="s1<->w0"}' in text
        # sanitized names, no dots
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split("{")[0].split(" ")[0]

    def test_query_export_prom(self, tmp_path, capsys):
        from repro.obs.query import main

        obs, _ = crashed_allreduce(tmp_path)
        metrics = tmp_path / "run.metrics.json"
        metrics.write_text(json.dumps(obs.snapshot()))
        rc = main(["export", "--metrics", str(metrics), "--format", "prom"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "# HELP" in out and "# TYPE" in out
        assert 'link_drops{cause="down"' in out
        out_path = tmp_path / "metrics.prom"
        rc = main(["export", "--metrics", str(metrics),
                   "--format", "prom", "-o", str(out_path)])
        assert rc == 0
        assert out_path.read_text().startswith("# HELP")
