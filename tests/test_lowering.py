"""AST -> NIR lowering."""

import pytest

from repro.errors import NclTypeError
from repro.nir import ir
from repro.nir.verify import verify_module

from tests.conftest import (
    ALLREDUCE_DEFINES,
    ALLREDUCE_SRC,
    KVS_DEFINES,
    KVS_SRC,
    lowered_module,
)


def instrs_of(module, fn_name, cls):
    return [i for i in module.functions[fn_name].instructions() if isinstance(i, cls)]


class TestGlobals:
    def test_spaces(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        assert mod.globals["accum"].space == "net"
        assert mod.globals["nworkers"].space == "ctrl"

    def test_initializer_flattening(self):
        mod = lowered_module("int m[2][3] = {{1, 2}, {4}};")
        assert mod.globals["m"].init == [1, 2, 0, 4, 0, 0]

    def test_scalar_initializer(self):
        mod = lowered_module("unsigned x = 7;")
        assert mod.globals["x"].init == [7]

    def test_zero_fill(self):
        mod = lowered_module("int a[4] = {0};")
        assert mod.globals["a"].init == [0, 0, 0, 0]


class TestAllReduceLowering:
    def test_verifies(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        verify_module(mod)

    def test_kernel_kinds(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        assert mod.functions["allreduce"].kind is ir.FunctionKind.OUT_KERNEL
        assert mod.functions["result"].kind is ir.FunctionKind.IN_KERNEL

    def test_window_fields_lower_to_winfld(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        fields = {i.field for i in instrs_of(mod, "allreduce", ir.WinField)}
        assert {"seq", "len"} <= fields

    def test_ctrl_read_present(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        reads = instrs_of(mod, "allreduce", ir.CtrlRead)
        assert len(reads) == 1 and reads[0].ref.name == "nworkers"

    def test_forwarding_decisions(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        kinds = {i.kind for i in instrs_of(mod, "allreduce", ir.Fwd)}
        assert kinds == {ir.FwdKind.BCAST, ir.FwdKind.DROP}

    def test_memcpy_regions(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        (cpy,) = instrs_of(mod, "allreduce", ir.Memcpy)
        assert cpy.dst.kind == "param" and cpy.dst.param.name == "data"
        assert cpy.src.kind == "global" and cpy.src.ref.name == "accum"


class TestKvsLowering:
    def test_verifies(self):
        verify_module(lowered_module(KVS_SRC, KVS_DEFINES))

    def test_map_lookup_chain(self):
        mod = lowered_module(KVS_SRC, KVS_DEFINES)
        lookups = instrs_of(mod, "query", ir.MapLookup)
        assert len(lookups) == 3  # one per branch arm before CSE
        founds = instrs_of(mod, "query", ir.MapFound)
        assert founds  # `if (auto *idx = ...)` tests found-ness
        for f in founds:
            # pre-mem2reg the token flows through the `idx` stack slot
            assert f.operands[0].ty.is_pointer

    def test_2d_row_memcpy_offsets_scaled(self):
        mod = lowered_module(KVS_SRC, KVS_DEFINES)
        copies = instrs_of(mod, "query", ir.Memcpy)
        cache_copies = [
            c for c in copies if (c.src.ref and c.src.ref.name == "Cache")
            or (c.dst.ref and c.dst.ref.name == "Cache")
        ]
        assert len(cache_copies) == 2  # hit read + server update write

    def test_reflect_present(self):
        mod = lowered_module(KVS_SRC, KVS_DEFINES)
        kinds = {i.kind for i in instrs_of(mod, "query", ir.Fwd)}
        assert ir.FwdKind.REFLECT in kinds and ir.FwdKind.DROP in kinds


class TestExpressionLowering:
    def test_signed_vs_unsigned_compare(self):
        mod = lowered_module(
            "_net_ _out_ void k(int *d, unsigned *u) {"
            " if (d[0] < 0) _drop();"
            " if (u[0] < 5) _bcast(); }"
        )
        ops = {i.op for i in instrs_of(mod, "k", ir.BinOp) if i.op in ("slt", "ult")}
        assert ops == {"slt", "ult"}

    def test_division_choice(self):
        mod = lowered_module(
            "_net_ _out_ void k(int *d, unsigned *u) {"
            " d[0] = d[0] / d[1]; u[0] = u[0] / u[1]; }"
        )
        ops = {i.op for i in instrs_of(mod, "k", ir.BinOp)}
        assert {"sdiv", "udiv"} <= ops

    def test_shift_choice(self):
        mod = lowered_module(
            "_net_ _out_ void k(int *d, unsigned *u) {"
            " d[0] = d[0] >> 1; u[0] = u[0] >> 1; }"
        )
        ops = {i.op for i in instrs_of(mod, "k", ir.BinOp)}
        assert {"ashr", "lshr"} <= ops

    def test_logical_ops_eager(self):
        mod = lowered_module(
            "_net_ _out_ void k(int *d) { if (d[0] && d[1]) _drop(); }"
        )
        ops = [i for i in instrs_of(mod, "k", ir.BinOp) if i.op == "and"]
        assert len(ops) == 1

    def test_ternary_lowers_to_select(self):
        mod = lowered_module(
            "_net_ _out_ void k(int *d) { d[0] = d[1] > 0 ? d[1] : 0; }"
        )
        assert instrs_of(mod, "k", ir.Select)

    def test_postfix_returns_old_value(self):
        mod = lowered_module(
            "_net_ unsigned c[4];\n"
            "_net_ _out_ void k(unsigned *d) { d[0] = c[0]++; }"
        )
        verify_module(mod)

    def test_address_of_outside_memcpy_rejected(self):
        with pytest.raises(NclTypeError, match="memcpy"):
            lowered_module("_net_ _out_ void k(int *d) { d[0] = (int)&d[1]; }")

    def test_2d_index_linearized(self):
        mod = lowered_module(
            "_net_ unsigned m[4][8];\n"
            "_net_ _out_ void k(unsigned *d) { d[0] = m[d[1]][d[2]]; }"
        )
        muls = [i for i in instrs_of(mod, "k", ir.BinOp) if i.op == "mul"]
        assert any(
            isinstance(m.rhs, ir.Const) and m.rhs.value == 8 for m in muls
        )

    def test_partial_index_outside_memcpy_rejected(self):
        with pytest.raises(NclTypeError, match="cannot assign"):
            lowered_module(
                "_net_ unsigned m[4][8];\n"
                "_net_ _out_ void k(unsigned *d) { d[0] = m[1]; }"
            )

    def test_helper_becomes_call(self):
        mod = lowered_module(
            "int f(int x) { return x + 1; }\n"
            "_net_ _out_ void k(int *d) { d[0] = f(d[0]); }"
        )
        calls = instrs_of(mod, "k", ir.CallFn)
        assert len(calls) == 1 and calls[0].callee.name == "f"

    def test_locid_lowering(self):
        mod = lowered_module(
            '_net_ _out_ void k(int *d) { if (location.id == _locid("s1")) _drop(); }'
        )
        assert instrs_of(mod, "k", ir.LocField)
        assert instrs_of(mod, "k", ir.LocLabel)

    def test_dead_code_after_return_dropped(self):
        mod = lowered_module(
            "int f() { return 1; return 2; }\n"
            "_net_ _out_ void k(int *d) { d[0] = f(); }"
        )
        rets = instrs_of(mod, "f", ir.Ret)
        assert len(rets) == 1

    def test_host_only_functions_not_lowered(self):
        # main/setup code using the runtime API is hostexec territory;
        # it must not reach NIR (where ncl:: calls are invalid).
        mod = lowered_module(
            '_net_ _at_("s1") _ctrl_ unsigned n;\n'
            "_net_ _out_ void k(unsigned *d) { d[0] = n; }\n"
            "int main() { ncl::ctrl_wr(&n, 4); return 0; }"
        )
        assert "main" not in mod.functions
        assert "k" in mod.functions
