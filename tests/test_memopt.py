"""The post-unroll memory optimizations: memcpy expansion, store-to-load
forwarding, predicated store fusion, and register-array splitting."""


from repro.nir import ir
from repro.nir.interp import DeviceState, run_kernel
from repro.nir.mem2reg import promote_allocas
from repro.nir.passes import (
    eliminate_dead_code,
    expand_memcpy,
    fold_constants,
    forward_stores,
    inline_calls,
    optimize_switch,
    split_register_arrays,
)

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, lowered_module
from tests.diffutil import assert_transform_preserves, kernel_module


def count(fn, cls):
    return sum(1 for i in fn.instructions() if isinstance(i, cls))


def prepped(source, kernel="k", defines=None, window_spec=None):
    mod = kernel_module(source, defines)
    fn = mod.functions[kernel]
    optimize_switch(fn, window_spec=window_spec or {})
    return mod, fn


class TestMemExpand:
    def test_constant_memcpy_expands(self):
        mod = kernel_module(
            "_net_ int stash[8];\n"
            "_net_ _out_ void k(int *d) { memcpy(&stash[2], d, 16); }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        promote_allocas(fn)
        fold_constants(fn)
        n = expand_memcpy(fn)
        assert n == 1
        assert count(fn, ir.Memcpy) == 0
        assert count(fn, ir.StoreElem) == 4
        assert count(fn, ir.LoadParam) == 4

    def test_dynamic_memcpy_left_alone(self):
        mod = kernel_module(
            "struct window { unsigned len; };\n"
            "_net_ int stash[8];\n"
            "_net_ _out_ void k(int *d) { memcpy(stash, d, window.len * 4); }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        promote_allocas(fn)
        assert expand_memcpy(fn) == 0
        assert count(fn, ir.Memcpy) == 1

    def test_expansion_preserves_semantics(self):
        assert_transform_preserves(
            "_net_ int stash[8] = {9, 9, 9, 9, 9, 9, 9, 9};\n"
            "_net_ _out_ void k(int *d) {"
            " memcpy(&stash[1], d, 12);"
            " memcpy(d, &stash[0], 12); }",
            "k",
            lambda fn: (fold_constants(fn), expand_memcpy(fn)),
            metas=[{}] * 4,
            pre=lambda fn: (inline_calls(fn), promote_allocas(fn)),
        )


class TestStoreForwarding:
    def test_rmw_reread_forwarded(self):
        mod = kernel_module(
            "_net_ int a[4];\n"
            "_net_ _out_ void k(int *d) {"
            " a[d[0] & 3] += 5;"
            " d[1] = a[d[0] & 3]; }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        promote_allocas(fn)
        from repro.nir.passes import global_value_numbering

        global_value_numbering(fn)
        before = count(fn, ir.LoadElem)
        forwarded = forward_stores(fn)
        eliminate_dead_code(fn)
        assert forwarded >= 1
        assert count(fn, ir.LoadElem) < before

    def test_distinct_offsets_not_confused(self):
        assert_transform_preserves(
            "_net_ unsigned a[8];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " unsigned base = d[0] & 3;"
            " a[base + 0] = d[1];"
            " a[base + 1] = d[2];"
            " d[3] = a[base + 0];"
            " d[4] = a[base + 1]; }",
            "k",
            forward_stores,
            metas=[{}] * 5,
            chunk_len=6,
            pre=lambda fn: (inline_calls(fn), promote_allocas(fn)),
        )

    def test_conditional_store_blocks_forwarding(self):
        mod = kernel_module(
            "_net_ unsigned a[4];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " a[0] = d[0];"
            " if (d[1]) a[0] = 7;"
            " d[2] = a[0]; }"
        )
        fn = mod.functions["k"]
        inline_calls(fn)
        promote_allocas(fn)
        assert forward_stores(fn) == 0  # the load after the if must survive

    def test_allreduce_memcpy_loads_vanish(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        fn = mod.functions["allreduce"]
        optimize_switch(fn, window_spec={"len": 4})
        # all accum re-reads for the result copy were forwarded:
        loads = [
            i for i in fn.instructions()
            if isinstance(i, ir.LoadElem) and i.ref.name == "accum"
        ]
        stores = [
            i for i in fn.instructions()
            if isinstance(i, ir.StoreElem) and i.ref.name == "accum"
        ]
        assert len(loads) == 4 and len(stores) == 4  # one RMW per element


class TestStoreMerge:
    SRC = (
        "_net_ unsigned c[8];\n"
        "_net_ _at_(\"s1\") _ctrl_ unsigned limit;\n"
        "_net_ _out_ void k(unsigned *d) {"
        " unsigned slot = d[0] & 7;"
        " c[slot] += 1;"
        " if (c[slot] == limit) { c[slot] = 0; _bcast(); }"
        " else { _drop(); } }"
    )

    def test_fuses_to_single_access(self):
        mod = kernel_module(self.SRC)
        fn = mod.functions["k"]
        optimize_switch(fn)
        stores = [
            i for i in fn.instructions()
            if isinstance(i, ir.StoreElem) and i.ref.name == "c"
        ]
        loads = [
            i for i in fn.instructions()
            if isinstance(i, ir.LoadElem) and i.ref.name == "c"
        ]
        assert len(stores) == 1
        assert len(loads) == 1
        assert count(fn, ir.Select) >= 1

    def test_fusion_preserves_semantics(self):
        def prepare(state):
            state.ctrl_write("limit", 3)

        assert_transform_preserves(
            self.SRC,
            "k",
            lambda fn: optimize_switch(fn),
            metas=[{}] * 12,
            prepare_state=prepare,
        )

    def test_both_branches_store(self):
        assert_transform_preserves(
            "_net_ unsigned a[4];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " a[0] = d[0];"
            " if (d[1] > 5) { a[0] = 1; } else { a[0] = 2; } }",
            "k",
            lambda fn: optimize_switch(fn),
            metas=[{}] * 8,
        )


class TestRegisterSplitting:
    def split_allreduce(self, window=4):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        fn = mod.functions["allreduce"]
        optimize_switch(fn, window_spec={"len": window})
        splits = split_register_arrays(mod, max_accesses=1)
        return mod, fn, splits

    def test_accum_split_by_window(self):
        mod, fn, splits = self.split_allreduce()
        assert [s.name for s in splits] == ["accum"]
        assert splits[0].stride == 4
        assert "accum" not in mod.globals
        for k in range(4):
            assert f"accum__{k}" in mod.globals
            assert mod.globals[f"accum__{k}"].total_elements == 16

    def test_split_semantics_via_interpreter(self):
        mod, fn, splits = self.split_allreduce()
        state = DeviceState.from_module(mod)
        state.ctrl_write("nworkers", 2)
        chunk_a = [1, 2, 3, 4]
        chunk_b = [10, 20, 30, 40]
        r1 = run_kernel(mod, "allreduce", state, {"seq": 1, "len": 4, "from": 0, "last": 0}, [chunk_a])
        r2 = run_kernel(mod, "allreduce", state, {"seq": 1, "len": 4, "from": 1, "last": 0}, [chunk_b])
        assert r1.fwd is ir.FwdKind.DROP
        assert r2.fwd is ir.FwdKind.BCAST
        assert chunk_b == [11, 22, 33, 44]
        # slot 1 lives at index 1 of each split part
        for k, want in enumerate([11, 22, 33, 44]):
            assert state.arrays[f"accum__{k}"][1] == want

    def test_initializers_deinterleaved(self):
        mod = kernel_module(
            "_net_ int a[4] = {10, 11, 12, 13};\n"
            "_net_ _out_ void k(int *d, unsigned base) {"
            " unsigned b = (base & 1) * 2;"
            " d[0] = a[b + 0]; d[1] = a[b + 1]; }"
        )
        fn = mod.functions["k"]
        optimize_switch(fn)
        splits = split_register_arrays(mod, max_accesses=1)
        assert splits and splits[0].stride == 2
        assert mod.globals["a__0"].init == [10, 12]
        assert mod.globals["a__1"].init == [11, 13]

    def test_no_split_when_not_needed(self):
        mod = kernel_module(
            "_net_ unsigned total[4];\n"
            "_net_ _out_ void k(unsigned *d) { total[d[0] & 3] += 1; }"
        )
        fn = mod.functions["k"]
        optimize_switch(fn)
        assert split_register_arrays(mod, max_accesses=1) == []

    def test_no_split_with_unprovable_base(self):
        mod = kernel_module(
            "_net_ unsigned a[8];\n"
            "_net_ _out_ void k(unsigned *d) {"
            " unsigned base = d[0] & 7;"  # NOT a multiple of 2
            " d[1] = a[base + 0] + a[base + 1]; }"
        )
        fn = mod.functions["k"]
        optimize_switch(fn)
        assert split_register_arrays(mod, max_accesses=1) == []

    def test_end_to_end_tofino_differential(self):
        """Compiled-with-splitting P4 on the tofino profile behaves like
        the unsplit reference interpreter."""
        from repro.nclc import Compiler, WindowConfig
        from repro.ncp.wire import decode_frame, encode_frame
        from repro.pisa.switch_dev import PisaSwitch

        from tests.conftest import STAR_AND

        program = Compiler(profile="tofino-like").compile(
            ALLREDUCE_SRC,
            and_text=STAR_AND,
            windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            defines=ALLREDUCE_DEFINES,
        )
        sw = PisaSwitch(program.switch_programs["s1"])
        sw.ctrl_register_write("reg_nworkers", 2)
        layout = program.layouts["allreduce"]
        from repro.ncp.wire import node_ip

        for node in range(3):
            sw.table_insert("ipv4_route", [node_ip(node)], "ipv4_forward", [0])
        f1 = encode_frame(layout, 0, 2, seq=3, chunks=[[5, 6, 7, 8]], ext_values={"len": 4})
        f2 = encode_frame(layout, 1, 2, seq=3, chunks=[[1, 1, 1, 1]], ext_values={"len": 4})
        assert sw.process(f1).verdict == "drop"
        out = sw.process(f2)
        assert out.verdict == "bcast"
        decoded = decode_frame(out.data, {layout.kernel_id: layout})
        assert decoded.chunks == [[6, 7, 8, 9]]
