"""Differential-testing helpers: run a kernel before/after a transform
and require identical observable behaviour (window data, device state,
forwarding decision)."""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Sequence

from repro.ncl import frontend
from repro.ncl.types import PointerType, is_signed, scalar_bits
from repro.nir import ir
from repro.nir.interp import DeviceState, Interpreter, WindowContext
from repro.nir.lower import lower_unit
from repro.nir.passes.clone import clone_function


def kernel_module(source: str, defines=None) -> ir.Module:
    return lower_unit(frontend(source, defines=defines))


def clone_state(state: DeviceState) -> DeviceState:
    new = DeviceState()
    new.arrays = {k: list(v) for k, v in state.arrays.items()}
    new.ctrl = {
        k: (list(v) if isinstance(v, list) else v) for k, v in state.ctrl.items()
    }
    for name, m in state.maps.items():
        from repro.nir.interp import MapState

        ms = MapState(m.ty)
        ms.entries = dict(m.entries)
        new.maps[name] = ms
    for name, b in state.blooms.items():
        from repro.nir.interp import BloomState

        bs = BloomState(b.ty)
        bs.bits = list(b.bits)
        new.blooms[name] = bs
    return new


def random_args(fn: ir.Function, rng, chunk_len: int = 4) -> List:
    """Random window-data argument bindings for a kernel's parameters."""
    args: List = []
    for param in fn.params:
        ty = param.ty
        if isinstance(ty, PointerType):
            bits = scalar_bits(ty.pointee)
            signed = is_signed(ty.pointee)
            lo = -(1 << (bits - 1)) if signed else 0
            hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
            args.append([rng.randint(lo, hi) for _ in range(chunk_len)])
        else:
            bits = scalar_bits(ty)
            signed = is_signed(ty)
            lo = -(1 << (bits - 1)) if signed else 0
            hi = (1 << (bits - 1)) - 1 if signed else (1 << bits) - 1
            args.append(rng.randint(lo, hi))
    return args


def observe(
    module: ir.Module,
    fn: ir.Function,
    state: DeviceState,
    meta: Dict[str, int],
    args: List,
    location_id: int = 0,
    location_labels: Optional[Dict[str, int]] = None,
):
    """Run and return the full observable outcome."""
    interp = Interpreter(module, state)
    ctx = WindowContext(meta, copy.deepcopy(args), location_id, location_labels)
    result = interp.run(fn, ctx)
    return {
        "fwd": result.fwd,
        "label": result.fwd_label,
        "args": ctx.args,
        "arrays": {k: list(v) for k, v in state.arrays.items()},
        "maps": {k: dict(m.entries) for k, m in state.maps.items()},
    }


def assert_transform_preserves(
    source: str,
    kernel: str,
    transform: Callable[[ir.Function], object],
    metas: Sequence[Dict[str, int]],
    defines=None,
    chunk_len: int = 4,
    seed: int = 0,
    prepare_state: Optional[Callable[[DeviceState], None]] = None,
    location_id: int = 0,
    location_labels: Optional[Dict[str, int]] = None,
    pre: Optional[Callable[[ir.Function], object]] = None,
):
    """The workhorse: semantics before == semantics after `transform`."""
    import random

    rng = random.Random(seed)
    module = kernel_module(source, defines)
    fn = module.functions[kernel]
    if pre is not None:
        pre(fn)
    reference = clone_function(fn, f"{kernel}_ref")
    module.functions[reference.name] = reference
    transform(fn)
    from repro.nir.verify import verify_function

    verify_function(fn)

    base_state = DeviceState.from_module(module)
    if prepare_state is not None:
        prepare_state(base_state)

    state_a = clone_state(base_state)
    state_b = clone_state(base_state)
    for meta in metas:
        args = random_args(fn, rng, chunk_len)
        got = observe(module, fn, state_a, meta, args, location_id, location_labels)
        want = observe(
            module, reference, state_b, meta, args, location_id, location_labels
        )
        assert got == want, (
            f"transform changed semantics for meta={meta}:\n"
            f"got:  {got}\nwant: {want}"
        )
