"""NCL lexer."""

import pytest

from repro.errors import NclSyntaxError
from repro.ncl.lexer import tokenize
from repro.ncl.tokens import TokenKind


def kinds(source, **kw):
    return [t.kind for t in tokenize(source, **kw)]


def texts(source, **kw):
    return [t.text for t in tokenize(source, **kw) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_is_just_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind is TokenKind.EOF

    def test_identifier_vs_keyword(self):
        toks = tokenize("int foo")
        assert toks[0].kind is TokenKind.KEYWORD
        assert toks[1].kind is TokenKind.IDENT

    def test_ncl_specifiers_are_keywords(self):
        for spec in ("_net_", "_out_", "_in_", "_ctrl_", "_ext_", "_at_"):
            assert tokenize(spec)[0].kind is TokenKind.KEYWORD

    def test_underscored_identifier_not_keyword(self):
        assert tokenize("_netx_")[0].kind is TokenKind.IDENT

    def test_punctuators_longest_match(self):
        assert texts("a <<= b") == ["a", "<<=", "b"]
        assert texts("a << b") == ["a", "<<", "b"]
        assert texts("x++ + ++y") == ["x", "++", "+", "++", "y"]
        assert texts("ncl::Map") == ["ncl", "::", "Map"]


class TestIntLiterals:
    @pytest.mark.parametrize(
        "text,value",
        [
            ("0", 0),
            ("42", 42),
            ("0x10", 16),
            ("0XFF", 255),
            ("0b101", 5),
            ("010", 8),
            ("42u", 42),
            ("42UL", 42),
            ("1000000000000", 10**12),
        ],
    )
    def test_literal_values(self, text, value):
        tok = tokenize(text)[0]
        assert tok.kind is TokenKind.INT_LIT
        assert tok.value == value

    def test_char_literal(self):
        tok = tokenize("'A'")[0]
        assert tok.kind is TokenKind.CHAR_LIT
        assert tok.value == 65

    def test_char_escapes(self):
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0
        assert tokenize(r"'\x41'")[0].value == 65

    def test_empty_char_raises(self):
        with pytest.raises(NclSyntaxError):
            tokenize("''")


class TestStringLiterals:
    def test_simple(self):
        tok = tokenize('"s1"')[0]
        assert tok.kind is TokenKind.STRING_LIT
        assert tok.value == "s1"

    def test_escapes(self):
        assert tokenize(r'"a\tb"')[0].value == "a\tb"

    def test_unterminated_raises(self):
        with pytest.raises(NclSyntaxError):
            tokenize('"abc')


class TestTrivia:
    def test_line_comment(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* x\n y */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(NclSyntaxError):
            tokenize("/* never closed")

    def test_preprocessor_lines_skipped(self):
        assert texts("#include <x.h>\nint a;") == ["int", "a", ";"]

    def test_locations_track_lines(self):
        toks = tokenize("a\n  b")
        assert toks[0].loc.line == 1 and toks[0].loc.column == 1
        assert toks[1].loc.line == 2 and toks[1].loc.column == 3


class TestDefines:
    def test_define_substitution(self):
        toks = tokenize("int a[N];", defines={"N": 16})
        lit = [t for t in toks if t.kind is TokenKind.INT_LIT]
        assert len(lit) == 1 and lit[0].value == 16

    def test_defines_do_not_touch_keywords(self):
        toks = tokenize("int int2;", defines={"int2": 5})
        assert toks[1].kind is TokenKind.INT_LIT

    def test_unknown_char_raises_with_location(self):
        with pytest.raises(NclSyntaxError) as exc:
            tokenize("int a = $;")
        assert "$" in str(exc.value)
