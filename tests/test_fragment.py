"""Multi-packet windows: NCP fragmentation/reassembly (S6 future work)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NcpError
from repro.ncp.fragment import (
    FLAG_FRAG,
    FRAG_KERNEL_BIT,
    Reassembler,
    fragment_frame,
    is_fragment,
)
from repro.ncp.wire import ChunkLayout, KernelLayout, decode_frame, encode_frame


def big_layout(n=64):
    return KernelLayout(5, "big", [ChunkLayout("data", n, 32, True)])


def big_frame(n=64, seq=3, src=1, dst=2):
    layout = big_layout(n)
    return layout, encode_frame(
        layout, src, dst, seq=seq, chunks=[list(range(n))], last=True
    )


class TestFragmentation:
    def test_small_frame_untouched(self):
        layout, frame = big_frame(4)
        assert fragment_frame(frame, 1500) == [frame]

    def test_fragments_fit_mtu(self):
        layout, frame = big_frame(64)
        frames = fragment_frame(frame, 128)
        assert len(frames) > 1
        assert all(len(f) <= 128 for f in frames)
        assert all(is_fragment(f) for f in frames)

    def test_fragment_kernel_id_outside_dispatch_space(self):
        from repro.ncp.wire import ETH_FIELDS, IPV4_FIELDS, NCP_FIELDS, UDP_FIELDS
        from repro.util.bits import unpack_fields

        layout, frame = big_frame(64)
        frag = fragment_frame(frame, 128)[0]
        _, rest = unpack_fields(ETH_FIELDS, frag)
        _, rest = unpack_fields(IPV4_FIELDS, rest)
        _, rest = unpack_fields(UDP_FIELDS, rest)
        ncp, _ = unpack_fields(NCP_FIELDS, rest)
        assert ncp["kernel_id"] & FRAG_KERNEL_BIT
        assert ncp["flags"] & FLAG_FRAG

    def test_mtu_too_small(self):
        layout, frame = big_frame(64)
        with pytest.raises(NcpError, match="mtu"):
            fragment_frame(frame, 10)

    def test_refuses_double_fragmentation(self):
        layout, frame = big_frame(64)
        frag = fragment_frame(frame, 128)[0]
        with pytest.raises(NcpError, match="fragment"):
            fragment_frame(frag, 64)


class TestReassembly:
    def test_roundtrip_in_order(self):
        layout, frame = big_frame(64)
        r = Reassembler()
        rebuilt = None
        for piece in fragment_frame(frame, 100):
            rebuilt = r.feed(piece)
        assert rebuilt == frame
        decoded = decode_frame(rebuilt, {5: layout})
        assert decoded.chunks == [list(range(64))]
        assert decoded.last

    def test_roundtrip_out_of_order(self):
        layout, frame = big_frame(64)
        pieces = fragment_frame(frame, 100)
        r = Reassembler()
        rebuilt = None
        for piece in reversed(pieces):
            result = r.feed(piece)
            if result is not None:
                rebuilt = result
        assert rebuilt == frame

    def test_interleaved_windows(self):
        layout, frame_a = big_frame(64, seq=0)
        _, frame_b = big_frame(64, seq=1)
        pieces_a = fragment_frame(frame_a, 100)
        pieces_b = fragment_frame(frame_b, 100)
        r = Reassembler()
        rebuilt = []
        for a, b in zip(pieces_a, pieces_b):
            for piece in (a, b):
                result = r.feed(piece)
                if result is not None:
                    rebuilt.append(result)
        assert sorted(map(len, rebuilt)) == sorted(map(len, [frame_a, frame_b]))
        assert r.pending_windows == 0

    def test_incomplete_window_stays_pending(self):
        layout, frame = big_frame(64)
        pieces = fragment_frame(frame, 100)
        r = Reassembler()
        for piece in pieces[:-1]:
            assert r.feed(piece) is None
        assert r.pending_windows == 1

    def test_non_fragment_rejected(self):
        layout, frame = big_frame(4)
        with pytest.raises(NcpError, match="not a fragment"):
            Reassembler().feed(frame)

    @given(st.integers(90, 400), st.integers(8, 96))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, mtu, n_elems):
        layout = KernelLayout(5, "big", [ChunkLayout("data", n_elems, 32, True)])
        frame = encode_frame(layout, 1, 2, seq=9, chunks=[list(range(n_elems))])
        r = Reassembler()
        rebuilt = None
        pieces = fragment_frame(frame, mtu)
        if pieces == [frame]:
            rebuilt = frame  # fit in one packet; nothing to reassemble
        else:
            for piece in pieces:
                assert len(piece) <= mtu
                result = r.feed(piece)
                if result is not None:
                    rebuilt = result
        assert rebuilt == frame


class TestEndToEndFragmentedWindows:
    def test_host_to_host_through_switch(self):
        """A window too big for one packet crosses the network in
        fragments; the switch forwards them (no kernel execution) and the
        receiving host reassembles + runs the incoming kernel."""
        from repro.nclc import Compiler, WindowConfig
        from repro.runtime import Cluster

        SRC = """
        _net_ _at_("s1") unsigned executed[1] = {0};
        _net_ _out_ void ship(int *d) { executed[0] += 1; }
        _net_ _in_ void land(int *d, _ext_ int *out) {
          for (unsigned i = 0; i < 64; ++i) out[i] = d[i];
        }
        """
        program = Compiler().compile(
            SRC,
            and_text="host a\nhost b\nswitch s1\nlink a s1\nlink s1 b",
            windows={"ship": WindowConfig(mask=(64,))},
        )
        cluster = Cluster.from_program(program)
        # rebind sender with a small MTU
        sender = cluster.hosts["a"]
        sender.mtu = 128
        out = [0] * 64
        cluster.hosts["b"].register_in("land", [out])
        sender.out("ship", [list(range(64))], dst="b")
        cluster.run()
        assert out == list(range(64))
        # the switch never executed the kernel on fragments:
        assert cluster.controller.register_dump("executed")[0] == 0
