"""Virtual-clock time series: bucket semantics, determinism, probes."""

import json

import pytest

from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays
from repro.net.events import Simulator
from repro.obs import (
    Observability,
    TimeSeriesSampler,
    attach_cluster_probes,
    attach_network_probes,
)
from repro.obs.registry import ObservabilityError
from repro.obs.timeseries import rates


class Counter:
    def __init__(self):
        self.value = 0

    def bump(self, by=1):
        self.value += by

    def read(self):
        return self.value


class TestBucketSemantics:
    def test_samples_land_on_boundaries_before_the_event(self):
        """The sample at boundary k reflects state after every event
        strictly before k*interval; an event exactly on the boundary
        lands in the bucket it opens."""
        sim = Simulator()
        sampler = TimeSeriesSampler(1e-6)
        counter = Counter()
        sampler.add_probe("c", counter.read)
        sim.obs = Observability(sampler=sampler)
        sim.schedule_at(0.5e-6, counter.bump)   # bucket 0
        sim.schedule_at(1.0e-6, counter.bump)   # exactly on boundary 1
        sim.schedule_at(2.5e-6, counter.bump)   # bucket 2
        sim.run()
        sampler.finish(sim.now())
        points = dict(sampler.summed("c"))
        assert points[0] == 0   # boundary 0 samples the initial state
        assert points[1] == 1   # the t=1us event had not run yet
        assert points[2] == 2
        assert points[3] == 3   # trailing finish() sample

    def test_quiet_gaps_still_sample_every_boundary(self):
        sim = Simulator()
        sampler = TimeSeriesSampler(1e-6)
        counter = Counter()
        sampler.add_probe("c", counter.read)
        sim.obs = Observability(sampler=sampler)
        sim.schedule_at(5e-6, counter.bump)
        sim.run()
        sampler.finish(sim.now())
        indices = [i for i, _ in sampler.summed("c")]
        assert indices == [0, 1, 2, 3, 4, 5, 6]

    def test_finish_is_idempotent(self):
        sampler = TimeSeriesSampler(1e-6)
        counter = Counter()
        sampler.add_probe("c", counter.read)
        sampler.finish(2.5e-6)
        n = len(sampler.summed("c"))
        sampler.finish(9e-6)
        assert len(sampler.summed("c")) == n
        assert sampler.end_time == 2.5e-6

    def test_interval_must_be_positive(self):
        with pytest.raises(ObservabilityError, match="positive"):
            TimeSeriesSampler(0.0)

    def test_max_samples_guards_runaway_configs(self):
        sampler = TimeSeriesSampler(1e-9, max_samples=100)
        sampler.add_probe("c", lambda: 0)
        with pytest.raises(ObservabilityError, match="exceeded 100"):
            sampler.advance(1.0)  # would need 1e9 buckets


class TestProbes:
    def test_duplicate_series_rejected(self):
        sampler = TimeSeriesSampler(1e-6)
        sampler.add_probe("c", lambda: 0, {"k": "a"})
        sampler.add_probe("c", lambda: 0, {"k": "b"})  # distinct labels ok
        with pytest.raises(ObservabilityError, match="duplicate"):
            sampler.add_probe("c", lambda: 0, {"k": "a"})

    def test_unknown_kind_rejected(self):
        sampler = TimeSeriesSampler(1e-6)
        with pytest.raises(ObservabilityError, match="kind"):
            sampler.add_probe("c", lambda: 0, kind="histogram")

    def test_summed_pointwise_sums_matching_series(self):
        sampler = TimeSeriesSampler(1e-6)
        a, b = Counter(), Counter()
        sampler.add_probe("c", a.read, {"k": "a"})
        sampler.add_probe("c", b.read, {"k": "b"})
        a.bump(2)
        b.bump(3)
        sampler.advance(0.0)
        assert sampler.summed("c") == [(0, 5)]
        assert sampler.summed("c", {"k": "a"}) == [(0, 2)]
        assert sampler.summed("c", {"k": "nope"}) == []

    def test_rates_derive_from_counter_deltas(self):
        points = [(0, 0.0), (1, 10.0), (2, 10.0), (4, 30.0)]
        out = rates(points, 1e-6)
        assert out == [
            (1, pytest.approx(1e7)),
            (2, pytest.approx(0.0)),
            (4, pytest.approx(1e7)),  # delta 20 over a 2-bucket gap
        ]


class TestStandardProbeSets:
    def test_network_and_cluster_probes(self):
        sampler = TimeSeriesSampler(1e-6)
        job = AllReduceJob(2, 256, 8, obs=Observability(sampler=sampler))
        attach_network_probes(sampler, job.cluster.network)
        attach_cluster_probes(sampler, job.cluster)
        arrays = random_arrays(2, 256, seed=1)
        job.run_round(arrays)
        sampler.finish(job.cluster.now())
        names = set(sampler.series_names())
        assert {"link.frames", "link.bytes", "link.drops",
                "link.qdepth_bytes", "net.drops", "sim.events",
                "ncp.windows_sent", "ncp.windows_received",
                "ncp.retransmits"} <= names
        # the frame counters actually moved
        final = sampler.summed("link.frames")[-1][1]
        assert final == sum(
            lk.stats.frames for lk in job.cluster.network.links
        )
        # drop curves exist per cause even when flat
        causes = {s.labels["cause"] for s in sampler.matching("link.drops")}
        assert causes == {"loss", "overflow", "down"}


def sampled_allreduce_dump():
    sampler = TimeSeriesSampler(1e-6)
    job = AllReduceJob(2, 256, 8, obs=Observability(sampler=sampler))
    attach_network_probes(sampler, job.cluster.network)
    attach_cluster_probes(sampler, job.cluster)
    arrays = random_arrays(2, 256, seed=7)
    job.run_round(arrays)
    sampler.finish(job.cluster.now())
    return sampler.dump()


class TestDeterminism:
    def test_dump_is_byte_identical_across_identical_runs(self):
        """The acceptance bar: identical seeded runs produce
        byte-identical ``repro.timeseries/1`` JSON."""
        a = json.dumps(sampled_allreduce_dump(), sort_keys=True)
        b = json.dumps(sampled_allreduce_dump(), sort_keys=True)
        assert a == b

    def test_dump_schema_and_sorted_series(self):
        dump = sampled_allreduce_dump()
        assert dump["schema"] == "repro.timeseries/1"
        assert dump["buckets"] > 0
        assert dump["end_time"] is not None
        keys = [(s["name"], tuple(sorted(s["labels"].items())))
                for s in dump["series"]]
        assert keys == sorted(keys)
        for series in dump["series"]:
            assert series["kind"] in ("counter", "gauge")
            for idx, _value in series["points"]:
                assert isinstance(idx, int)

    def test_write_json_round_trips(self, tmp_path):
        sampler = TimeSeriesSampler(1e-6)
        sampler.add_probe("c", lambda: 1)
        sampler.finish(0.0)
        path = tmp_path / "run.timeseries.json"
        with open(path, "w") as fp:
            sampler.write_json(fp)
        assert json.loads(path.read_text())["schema"] == "repro.timeseries/1"
