"""Datacenter topology generators, ECMP routing, and failure injection.

Structural properties of the fat-tree / leaf-spine generators, the three
realizations (live Network, PhysicalNet for the mapper, FabricSpec for
the deployment checker), ECMP spreading over parallel core paths,
switch-failure semantics (drop cause ``down``, the ``node.up`` gauge, a
health alert on it), and NIC-style delivery coalescing.
"""

import pytest

from repro.andspec.model import parse_and
from repro.andspec.mapping import MappingError, map_overlay
from repro.errors import SimulationError
from repro.ncp.wire import ChunkLayout, KernelLayout, encode_frame
from repro.net import Network, fat_tree, leaf_spine
from repro.net.node import ForwardingSwitchNode
from repro.obs import AlertEngine, Observability, TimeSeriesSampler
from repro.obs.timeseries import attach_network_probes

LAYOUT = KernelLayout(1, "push", [ChunkLayout("x", 4, 32, False)])


def frame_to(dst_node_id: int, seq: int = 0) -> bytes:
    return encode_frame(LAYOUT, 0, dst_node_id, seq, [[1, 2, 3, 4]])


def deliver_all(topo, pairs, **build_kwargs):
    """Build *topo*, send one frame per (src, dst) host-index pair, run,
    and return (net, delivered counts by destination host index)."""
    net = topo.build(**build_kwargs)
    hosts = [net.host(h) for h in topo.hosts]
    got = [0] * len(hosts)

    def make_counter(i):
        def count(_data: bytes) -> None:
            got[i] += 1
        return count

    for i, host in enumerate(hosts):
        host.receiver = make_counter(i)
    for src, dst in pairs:
        hosts[src].transmit(frame_to(hosts[dst].node_id), hosts[dst].node_id)
    net.run()
    return net, got


class TestGenerators:
    def test_fat_tree_k4_counts(self):
        topo = fat_tree(4)
        assert len(topo.hosts) == 16
        assert len(topo.switch_tiers) == 20
        assert len(topo.links) == 48
        assert len(topo.switches("edge")) == 8
        assert len(topo.switches("agg")) == 8
        assert len(topo.switches("core")) == 4

    def test_fat_tree_k8_paper_scale(self):
        topo = fat_tree(8)
        assert len(topo.hosts) == 128
        assert len(topo.switch_tiers) == 80
        assert len(topo.links) == 384
        assert len(topo.switches("core")) == 16

    def test_fat_tree_validates_arity(self):
        with pytest.raises(SimulationError, match="even"):
            fat_tree(3)
        with pytest.raises(SimulationError, match="even"):
            fat_tree(0)
        with pytest.raises(SimulationError, match="oversubscription"):
            fat_tree(4, oversubscription=0.5)

    def test_fat_tree_oversubscription_tapers_uplinks(self):
        topo = fat_tree(4, bandwidth=10e9, oversubscription=4.0)
        by_pair = {(a, b): bw for a, b, bw in topo.links}
        assert by_pair[("h0", "e0_0")] == 10e9
        # k/2 * bandwidth / oversub = 2 * 10G / 4
        assert by_pair[("e0_0", "a0_0")] == pytest.approx(5e9)
        assert by_pair[("a0_0", "c0_0")] == pytest.approx(5e9)

    def test_leaf_spine_counts(self):
        topo = leaf_spine(leaves=4, spines=2, hosts_per_leaf=8)
        assert len(topo.hosts) == 32
        assert len(topo.switches("leaf")) == 4
        assert len(topo.switches("spine")) == 2
        # host links + leaves*spines uplinks
        assert len(topo.links) == 32 + 8
        with pytest.raises(SimulationError):
            leaf_spine(0, 2, 8)

    def test_repr(self):
        assert "fat-tree-k4" in repr(fat_tree(4))


class TestBuild:
    def test_hosts_claim_low_node_ids(self):
        topo = fat_tree(4)
        net = topo.build()
        for i, name in enumerate(topo.hosts):
            assert net.host(name).node_id == i
        for switch in topo.switch_tiers:
            assert net.nodes[switch].node_id >= len(topo.hosts)
            assert isinstance(net.nodes[switch], ForwardingSwitchNode)

    def test_all_to_all_delivery_fat_tree(self):
        topo = fat_tree(4)
        n = len(topo.hosts)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        _net, got = deliver_all(topo, pairs)
        assert got == [n - 1] * n

    def test_all_to_all_delivery_leaf_spine(self):
        topo = leaf_spine(leaves=3, spines=2, hosts_per_leaf=2)
        n = len(topo.hosts)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        _net, got = deliver_all(topo, pairs)
        assert got == [n - 1] * n

    def test_ecmp_spreads_over_core_links(self):
        topo = fat_tree(4)
        n = len(topo.hosts)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        net, _ = deliver_all(topo, pairs)
        core = [
            link for link in net.links
            if link.a.name.startswith("c") or link.b.name.startswith("c")
        ]
        used = [link for link in core if link.stats.frames > 0]
        # the (src, dst) hash must light up every core link, not one
        assert len(core) == 16
        assert len(used) == len(core)

    def test_single_path_routing_concentrates(self):
        topo = fat_tree(4)
        n = len(topo.hosts)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        net, got = deliver_all(topo, pairs, ecmp=False)
        assert got == [n - 1] * n
        core = [
            link for link in net.links
            if link.a.name.startswith("c") or link.b.name.startswith("c")
        ]
        used = [link for link in core if link.stats.frames > 0]
        # shortest-path-only routing leaves parallel core links idle
        assert len(used) < len(core)

    def test_ecmp_routes_deterministic(self):
        tables = []
        for _ in range(2):
            net = fat_tree(4).build()
            tables.append(
                {name: dict(node.routes) for name, node in net.nodes.items()}
            )
        assert tables[0] == tables[1]

    def test_route_miss_drops_at_switch(self):
        topo = leaf_spine(leaves=2, spines=1, hosts_per_leaf=1)
        net = topo.build()
        h0 = net.host("h0")
        h0.receiver = lambda _d: None
        # destination node id that exists nowhere in the fabric
        h0.send(frame_to(999), 0)
        net.run()
        leaf = net.nodes["l0"]
        assert leaf.stats.drops == 1


class TestRealizations:
    def test_to_physical_marks_only_edge_tier_pisa(self):
        topo = fat_tree(4)
        phys = topo.to_physical()
        assert sorted(phys.pisa_switches()) == sorted(topo.switches("edge"))
        assert len(phys.switches()) == 20
        assert len(phys.hosts()) == 16

    def test_map_overlay_places_on_programmable_tier_only(self):
        phys = fat_tree(4).to_physical()
        overlay = parse_and(
            "host h0\nhost h1\nswitch s\nlink h0 s\nlink h1 s"
        )
        mapping = map_overlay(overlay, phys)
        assert mapping.placement["s"].startswith("e")

    def test_map_overlay_fails_without_programmable_switches(self):
        phys = fat_tree(4).to_physical(pisa_tier="nonexistent")
        overlay = parse_and("host h0\nhost h1\nswitch s\nlink h0 s\nlink h1 s")
        with pytest.raises(MappingError):
            map_overlay(overlay, phys)

    def test_to_fabric_validates(self):
        spec = fat_tree(4).to_fabric()
        spec.validate()
        spec = leaf_spine(2, 2, 4).to_fabric(profile="bmv2")
        spec.validate()


def two_host_line():
    """h0 -- s -- h1 with explicit construction (no generator), so the
    failure tests control every timing."""
    net = Network()
    net.add_host("h0")
    net.add_host("h1")
    net.add_forwarding_switch("s")
    net.add_link("h0", "s")
    net.add_link("s", "h1")
    net.compute_routes()
    got = []
    net.host("h1").receiver = got.append
    return net, got


class TestFailSwitch:
    def test_immediate_failure_drops_with_cause_down(self):
        net, got = two_host_line()
        h1 = net.host("h1")
        net.fail_switch("s")
        net.host("h0").transmit(frame_to(h1.node_id), h1.node_id)
        net.run()
        assert got == []
        # the frame died on arrival at the downed switch
        assert net.link_between("h0", "s").stats.drops_down == 1

    def test_in_flight_frames_drop_at_downed_node(self):
        net, got = two_host_line()
        h1 = net.host("h1")
        net.host("h0").transmit(frame_to(h1.node_id), h1.node_id)
        # fail while the frame is serializing toward the switch: it is
        # already in the delivery pipe, and must still die there
        net.fail_switch("s", at=5e-7)
        net.run()
        assert got == []
        assert net.link_between("h0", "s").stats.drops_down == 1
        assert net.link_between("s", "h1").stats.drops_down == 0

    def test_downed_sender_drops_at_transmit(self):
        net, got = two_host_line()
        h1 = net.host("h1")
        # fail_switch works on any node: a downed host cannot transmit
        net.fail_switch("h0")
        net.host("h0").transmit(frame_to(h1.node_id), h1.node_id)
        net.run()
        assert got == []
        assert net.link_between("h0", "s").stats.drops_down == 1
        assert net.link_between("h0", "s").stats.frames == 0

    def test_recovery_resumes_delivery(self):
        net, got = two_host_line()
        h1 = net.host("h1")
        node = net.fail_switch("s")
        net.host("h0").transmit(frame_to(h1.node_id), h1.node_id)
        net.run()
        assert got == []
        node.set_up()
        net.host("h0").transmit(frame_to(h1.node_id, seq=1), h1.node_id)
        net.run()
        assert len(got) == 1

    def test_unknown_node_rejected(self):
        net, _ = two_host_line()
        with pytest.raises(SimulationError, match="no node"):
            net.fail_switch("ghost")

    def test_node_up_gauge_in_snapshot(self):
        obs = Observability()
        net = Network(obs=obs)
        net.add_host("h0")
        net.add_host("h1")
        net.add_forwarding_switch("s")
        net.add_link("h0", "s")
        net.add_link("s", "h1")
        net.compute_routes()
        net.fail_switch("s")
        snap = obs.registry.snapshot()
        up = {
            s["labels"]["node"]: s["value"]
            for s in snap["node.up"]["series"]
        }
        assert up == {"h0": 1, "h1": 1, "s": 0}

    def test_health_alert_fires_on_down_drops(self):
        sampler = TimeSeriesSampler(1e-6)
        engine = AlertEngine(
            ["dead: link.drops{cause=down} rate > 0 over 2us !critical"]
        )
        obs = Observability(sampler=sampler, health=engine)
        net = Network(obs=obs)
        net.add_host("h0")
        net.add_host("h1")
        net.add_forwarding_switch("s")
        net.add_link("h0", "s")
        net.add_link("s", "h1")
        net.compute_routes()
        got = []
        net.host("h1").receiver = got.append
        attach_network_probes(sampler, net)
        h1 = net.host("h1")
        net.fail_switch("s", at=5e-7)
        for i in range(12):
            net.host("h0").transmit(
                frame_to(h1.node_id, seq=i), h1.node_id
            )
        net.run()
        sampler.finish(net.sim.now())
        assert got == []
        assert [a.rule.name for a in engine.alerts] == ["dead"]
        assert engine.alerts[0].rule.escalates
        names = [e.name for e in obs.tracer.events if e.track == "health"]
        assert "alert:firing" in names


class TestDeliveryQuantum:
    def _burst(self, quantum):
        net = Network()
        net.add_host("h0")
        net.add_host("h1")
        net.add_link("h0", "h1", delivery_quantum=quantum)
        net.compute_routes()
        got = []
        net.host("h1").receiver = got.append
        h1_id = net.host("h1").node_id
        for i in range(64):
            net.host("h0").transmit(frame_to(h1_id, seq=i), h1_id)
        net.run()
        return len(got), net.sim.events_processed

    def test_coalescing_cuts_events_not_frames(self):
        exact_got, exact_events = self._burst(None)
        coal_got, coal_events = self._burst(1e-5)
        assert exact_got == coal_got == 64
        # one wake per quantum boundary instead of one per frame
        assert coal_events < exact_events

    def test_invalid_quantum_rejected(self):
        net = Network()
        net.add_host("h0")
        net.add_host("h1")
        with pytest.raises(SimulationError, match="delivery_quantum"):
            net.add_link("h0", "h1", delivery_quantum=0.0)
