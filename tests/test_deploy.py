"""The whole-fabric deployment checker: fabric spec, manifest parsing,
the four check families, the ``repro.deploy/1`` report, and the
``nclc check-deploy`` CLI (exit codes + goldens)."""

import json
from pathlib import Path

import pytest

from repro.analysis.deploy import (
    all_checks,
    check_deployment,
    parse_deployment,
    render_report_json,
    render_report_text,
)
from repro.andspec import FabricSpec, parse_fabric
from repro.diag import Severity
from repro.diag.codes import CodeCollision, all_codes, assert_unique
from repro.errors import AndError, DeployError
from repro.nclc.__main__ import main as nclc_main
from repro.nclc.deploy import main as deploy_main

REPO = Path(__file__).resolve().parent.parent
GOLDEN = Path(__file__).resolve().parent / "golden"
DATA = "tests/data/deploy"
EXAMPLE = "examples/deploy/multi_tenant.deploy"


def ctx_for(manifest: str, base: str):
    text = (REPO / manifest).read_text()
    deployment = parse_deployment(text, manifest, base_dir=str(REPO / base))
    return check_deployment(deployment)


def codes_of(ctx):
    return sorted({d.code for d in ctx.sink.sorted()})


# ---------------------------------------------------------------------------
# FabricSpec
# ---------------------------------------------------------------------------


class TestFabricSpec:
    FABRIC = (
        "switch sw0 profile=tofino-like\n"
        "switch sw1\n"
        "host h0\n"
        "link h0 sw0 mtu=9000\n"
        "link sw0 sw1\n"
    )

    def test_parse_and_defaults(self):
        spec = parse_fabric(self.FABRIC)
        assert spec.node("sw1").profile == "bmv2"  # default
        assert spec.link_between("h0", "sw0").mtu == 9000
        assert spec.link_between("sw0", "sw1").mtu == 1500  # default
        assert spec.switch_profile("sw0").name == "tofino-like"
        assert sorted(spec.neighbors("sw0")) == ["h0", "sw1"]

    def test_render_parse_roundtrip(self):
        spec = parse_fabric(self.FABRIC)
        again = parse_fabric(spec.render())
        assert again.to_dict() == spec.to_dict()

    def test_dict_roundtrip(self):
        spec = parse_fabric(self.FABRIC)
        assert FabricSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()

    def test_to_physical_kinds(self):
        phys = parse_fabric(self.FABRIC).to_physical()
        assert sorted(phys.switches()) == ["sw0", "sw1"]
        assert phys.hosts() == ["h0"]

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("switch sw0\nswitch sw0\n", "duplicate fabric node"),
            ("host h0\nlink h0 h0\n", "self-link"),
            ("host h0\nlink h0 nope\n", "unknown fabric node"),
            ("switch sw0 profile=asic9000\n", "unknown chip profile"),
            ("host h0 profile=bmv2\n", "unknown option"),
            ("frobnicate x\n", "unknown declaration"),
            ("", "empty fabric"),
            ("host h0\nswitch s0\nlink h0 s0 mtu=0\n", "mtu must be positive"),
        ],
    )
    def test_rejects_malformed(self, text, fragment):
        with pytest.raises(AndError, match=fragment):
            parse_fabric(text)


# ---------------------------------------------------------------------------
# manifest parsing
# ---------------------------------------------------------------------------


class TestManifestParsing:
    def test_example_parses(self):
        text = (REPO / EXAMPLE).read_text()
        deployment = parse_deployment(
            text, EXAMPLE, base_dir=str(REPO / "examples/deploy")
        )
        assert [t.name for t in deployment.tenants] == [
            "training", "kvs", "dedup",
        ]
        training = deployment.tenant("training")
        assert training.idbase == 0
        assert training.placement == {"s1": "sw0"}
        assert training.effective_kernel_ids() == {"allreduce": 1}
        kvs = deployment.tenant("kvs")
        assert kvs.effective_kernel_ids() == {"query": 17}  # 1 + idbase 16

    def test_identical_programs_compile_once(self):
        text = (REPO / DATA / "id_collision.deploy").read_text()
        deployment = parse_deployment(
            text, "x.deploy", base_dir=str(REPO / DATA)
        )
        a, b = deployment.tenants
        assert a.program is b.program  # memoized by (path, config)

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("host h0\n", "no tenants declared"),
            ("define ghost A=1\n", "unknown tenant"),
            ("host h0\ntenant t missing.ncl\n", "cannot read program"),
            ("frobnicate x\n", "unknown declaration"),
            ("switch sw0\nswitch sw0\n", "duplicate fabric node"),
        ],
    )
    def test_rejects_malformed(self, text, fragment):
        with pytest.raises(DeployError, match=fragment):
            parse_deployment(text, "bad.deploy", base_dir=str(REPO / DATA))

    def test_duplicate_tenant_rejected(self):
        text = (
            "host h0\n"
            "tenant t ../../../examples/deploy/dedup.ncl\n"
            "tenant t ../../../examples/deploy/dedup.ncl\n"
        )
        with pytest.raises(DeployError, match="duplicate tenant"):
            parse_deployment(text, "bad.deploy", base_dir=str(REPO / DATA))


# ---------------------------------------------------------------------------
# the four check families
# ---------------------------------------------------------------------------


class TestChecks:
    def test_admissible_example_is_clean(self):
        ctx = ctx_for(EXAMPLE, "examples/deploy")
        assert codes_of(ctx) == []
        assert not ctx.sink.has_errors

    def test_over_capacity(self):
        ctx = ctx_for(f"{DATA}/over_capacity.deploy", DATA)
        assert codes_of(ctx) == ["NCL0910", "NCL0911"]
        stages = [d for d in ctx.sink.sorted() if d.code == "NCL0910"]
        assert len(stages) == 1
        # per-tenant attribution rides in the notes, largest user first
        assert any("training" in n for n in stages[0].notes)
        assert any("kvs" in n for n in stages[0].notes)
        assert any("dedup" in n for n in stages[0].notes)
        assert stages[0].notes[0].startswith("tenant 'kvs'")  # 8 stages
        assert len(stages[0].secondary) == 3

    def test_isolation(self):
        ctx = ctx_for(f"{DATA}/id_collision.deploy", DATA)
        assert codes_of(ctx) == ["NCL0920", "NCL0921", "NCL0922"]
        conflicts = [d for d in ctx.sink.sorted() if d.code == "NCL0922"]
        # accum, count and the seen dedup marks, each with
        # interprocedural write attribution
        assert sorted(
            d.message.split("'")[3] for d in conflicts
        ) == ["accum", "count", "seen"]
        assert all(d.secondary for d in conflicts)

    def test_unreachable_placement(self):
        ctx = ctx_for(f"{DATA}/unreachable.deploy", DATA)
        assert codes_of(ctx) == ["NCL0930", "NCL0931", "NCL0932"]

    def test_transport(self):
        ctx = ctx_for(f"{DATA}/mtu.deploy", DATA)
        assert codes_of(ctx) == ["NCL0940", "NCL0941"]
        frag = [d for d in ctx.sink.sorted() if d.code == "NCL0940"]
        assert frag[0].severity is Severity.ERROR
        assert frag[0].status == "proved"  # exact layouts: not a guess
        intw = [d for d in ctx.sink.sorted() if d.code == "NCL0941"]
        assert intw[0].severity is Severity.WARNING
        assert intw[0].status == "possible"  # only the 8-hop policy busts

    def test_int_headroom_proved_when_min_hops_bust(self, tmp_path):
        # 84-byte links: dedup's 78-byte frame fits, but even a single
        # hop of INT (5 tail + 20 record = 25 > 6 headroom) cannot.
        manifest = (
            "switch sw0 profile=bmv2\n"
            "host sender\nhost sink\n"
            "link sender sw0 mtu=84\nlink sink sw0 mtu=84\n"
            f"tenant dedup {REPO}/examples/deploy/dedup.ncl "
            f"and={REPO}/examples/deploy/dedup.and\n"
            "define dedup FILTER_BITS=1024\n"
            "window dedup dedup=1,4\n"
            "map dedup s1=sw0\n"
        )
        deployment = parse_deployment(manifest, "t.deploy")
        ctx = check_deployment(deployment)
        intw = [d for d in ctx.sink.sorted() if d.code == "NCL0941"]
        assert intw and intw[0].status == "proved"

    def test_fragment_bit_escape(self, tmp_path):
        manifest = (
            "switch sw0 profile=bmv2\n"
            "host sender\nhost sink\n"
            "link sender sw0\nlink sink sw0\n"
            f"tenant dedup {REPO}/examples/deploy/dedup.ncl "
            f"and={REPO}/examples/deploy/dedup.and idbase=32767\n"
            "define dedup FILTER_BITS=1024\n"
            "window dedup dedup=1,4\n"
            "map dedup s1=sw0\n"
        )
        ctx = check_deployment(parse_deployment(manifest, "t.deploy"))
        escapes = [d for d in ctx.sink.sorted() if d.code == "NCL0920"]
        assert escapes and "fragment id space" in escapes[0].message


# ---------------------------------------------------------------------------
# report + goldens
# ---------------------------------------------------------------------------


CASES = [
    ("deploy_admissible", EXAMPLE, "examples/deploy"),
    ("deploy_over_capacity", f"{DATA}/over_capacity.deploy", DATA),
    ("deploy_id_collision", f"{DATA}/id_collision.deploy", DATA),
    ("deploy_unreachable", f"{DATA}/unreachable.deploy", DATA),
    ("deploy_mtu", f"{DATA}/mtu.deploy", DATA),
]


class TestGolden:
    """Byte-identical ``repro.deploy/1`` JSON and text reports.

    Regenerate (after an intentional output change) with::

        PYTHONPATH=src python -c "
        from pathlib import Path
        from tests.test_deploy import CASES, ctx_for
        from repro.analysis.deploy import render_report_json, render_report_text
        for name, manifest, base in CASES:
            ctx = ctx_for(manifest, base)
            Path(f'tests/golden/{name}.json').write_text(render_report_json(ctx))
            Path(f'tests/golden/{name}.txt').write_text(render_report_text(ctx))
        "
    """

    @pytest.mark.parametrize("name,manifest,base", CASES)
    def test_json_golden(self, name, manifest, base):
        ctx = ctx_for(manifest, base)
        assert render_report_json(ctx) == (GOLDEN / f"{name}.json").read_text()

    @pytest.mark.parametrize("name,manifest,base", CASES)
    def test_text_golden(self, name, manifest, base):
        ctx = ctx_for(manifest, base)
        assert render_report_text(ctx) == (GOLDEN / f"{name}.txt").read_text()

    def test_json_is_byte_deterministic_across_runs(self):
        first = render_report_json(ctx_for(EXAMPLE, "examples/deploy"))
        second = render_report_json(ctx_for(EXAMPLE, "examples/deploy"))
        assert first == second

    def test_report_shape(self):
        data = json.loads(render_report_json(ctx_for(EXAMPLE, "examples/deploy")))
        assert data["schema"] == "repro.deploy/1"
        assert data["admissible"] is True
        assert data["summary"] == {"errors": 0, "warnings": 0, "notes": 0}
        sw0 = data["admission"]["sw0"]
        assert set(sw0["tenants"]) == {"training/s1", "dedup/s1"}
        used = sw0["used"]
        cap = sw0["capacity"]
        for res, total in used.items():
            assert total == sum(
                row[res] for row in sw0["tenants"].values()
            )
            assert total <= cap[res]
        kvs = next(t for t in data["tenants"] if t["name"] == "kvs")
        assert kvs["kernels"] == {"query": 17}
        assert kvs["hosts"] == {"c0": "client0", "server": "kvserver"}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_admissible_exits_zero(self, capsys):
        assert deploy_main([str(REPO / EXAMPLE)]) == 0
        assert "deployment ADMISSIBLE" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "manifest,code",
        [
            ("over_capacity", "NCL0910"),
            ("id_collision", "NCL0920"),
            ("unreachable", "NCL0930"),
            ("mtu", "NCL0940"),
        ],
    )
    def test_bad_deployments_exit_one(self, manifest, code, capsys):
        assert deploy_main([str(REPO / DATA / f"{manifest}.deploy")]) == 1
        out = capsys.readouterr().out
        assert f"error[{code}]" in out
        assert "deployment REJECTED" in out

    def test_json_flag(self, capsys):
        assert deploy_main([str(REPO / EXAMPLE), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema"] == "repro.deploy/1"

    def test_warning_only_exits_zero_until_werror(self, tmp_path, capsys):
        manifest = tmp_path / "warn.deploy"
        manifest.write_text(
            "switch sw0 profile=bmv2\n"
            "host sender\nhost sink\n"
            "link sender sw0 mtu=128\nlink sink sw0 mtu=128\n"
            f"tenant dedup {REPO}/examples/deploy/dedup.ncl "
            f"and={REPO}/examples/deploy/dedup.and\n"
            "define dedup FILTER_BITS=1024\n"
            "window dedup dedup=1,4\n"
            "map dedup s1=sw0\n"
        )
        assert deploy_main([str(manifest)]) == 0
        assert "warning[NCL0941]" in capsys.readouterr().out
        assert deploy_main([str(manifest), "--werror"]) == 1
        assert "error[NCL0941]" in capsys.readouterr().out

    def test_missing_manifest_exits_two(self, capsys):
        assert deploy_main(["no/such.deploy"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_no_manifest_exits_two(self, capsys):
        assert deploy_main([]) == 2

    def test_malformed_manifest_exits_two(self, tmp_path, capsys):
        manifest = tmp_path / "bad.deploy"
        manifest.write_text("host h0\n")
        assert deploy_main([str(manifest)]) == 2
        assert "no tenants" in capsys.readouterr().err

    def test_compile_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.ncl").write_text(
            "_net_ _out_ void k(int *d) { d[0] = nope; }\n"
        )
        manifest = tmp_path / "bad.deploy"
        manifest.write_text(
            "switch sw0 profile=bmv2\nhost h0\nlink h0 sw0\n"
            "tenant t broken.ncl\nmap t s1=sw0\n"
        )
        assert deploy_main([str(manifest)]) == 2
        assert "error" in capsys.readouterr().err

    def test_dispatch_through_nclc_main(self, capsys):
        assert nclc_main(["check-deploy", str(REPO / EXAMPLE)]) == 0

    def test_list_rules(self, capsys):
        assert deploy_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for check in all_checks():
            assert check.name in out
            for code in check.codes:
                assert code in out

    def test_lint_list_rules_includes_deploy_checks(self, capsys):
        from repro.nclc.lint import main as lint_main

        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "deployment checks" in out
        assert "NCL0910" in out and "NCL0941" in out


# ---------------------------------------------------------------------------
# code registry (satellite: uniqueness gate)
# ---------------------------------------------------------------------------


class TestCodeRegistry:
    def test_no_collisions_across_all_sources(self):
        table = all_codes()  # raises CodeCollision on any clash
        assert "NCL0910" in table and "NCL0941" in table
        assert "NCL0701" in table  # lint rules folded in
        assert "NCL0001" in table  # static frontend codes folded in

    def test_every_code_is_well_formed(self):
        import re

        for code in all_codes():
            assert re.fullmatch(r"NCL\d{4}", code), code

    def test_assert_unique_rejects_extra_collision(self):
        with pytest.raises(CodeCollision, match="NCL0910"):
            assert_unique([("NCL0910", "an imposter rule")])

    def test_deploy_checks_documented(self):
        docs = (REPO / "docs" / "DIAGNOSTICS.md").read_text()
        for check in all_checks():
            for code in check.codes:
                assert code in docs, f"{code} missing from docs/DIAGNOSTICS.md"

    def test_all_registered_codes_documented(self):
        docs = (REPO / "docs" / "DIAGNOSTICS.md").read_text()
        missing = [c for c in all_codes() if c not in docs]
        assert missing == []
