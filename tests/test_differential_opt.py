"""Optimization soundness gate: -O0 vs -O2 differential interpretation.

For every example NCL program (the ``examples/*.ncl`` files plus the
paper's Fig 4/Fig 5 app sources), compile at ``-O0`` and at ``-O2``,
then drive each per-switch NIR module through the interpreter on the
same seeded random window schedule. Forwarding decisions, return values,
window mutations, and the full device-state trajectory must be
identical -- if an optimization pass changes observable semantics, this
is the test that catches it.
"""

import copy
import random
from pathlib import Path

import pytest

from repro.apps.allreduce import ALLREDUCE_MULTIROUND_NCL, star_and
from repro.apps.kvs_cache import KVS_NCL, kvs_and
from repro.ncl.types import PointerType, is_signed, scalar_bits
from repro.nclc import Compiler, WindowConfig
from repro.nir import ir
from repro.nir.interp import DeviceState, run_kernel

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
TRIALS = 16

CASES = {
    "fig4-allreduce": dict(
        source=ALLREDUCE_MULTIROUND_NCL,
        and_text=star_and(2),
        windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
        defines={"DATA_LEN": 32, "WIN_LEN": 4},
        meta_ext={"len": 4},
        seq_range=8,
    ),
    "fig5-kvs": dict(
        source=KVS_NCL,
        and_text=kvs_and(2),
        windows={"query": WindowConfig(mask=(1, 4, 1))},
        defines={"CACHE_SIZE": 8, "VAL_WORDS": 4, "SERVER": 2},
        meta_ext={},
        seq_range=64,
    ),
}
for path in sorted(EXAMPLES_DIR.glob("*.ncl")):
    if path.name == "lint_demo.ncl":
        continue  # the deliberate diagnostic counter-example never compiles
    CASES[path.stem] = dict(
        source=path.read_text(),
        and_text=None,
        windows=None,
        defines=None,
        meta_ext={},
        seq_range=4,
    )


def _compile(case, opt_level):
    return Compiler(opt_level=opt_level).compile(
        case["source"],
        and_text=case["and_text"],
        windows=case["windows"],
        defines=case["defines"],
    )


def _random_scalar(rng, ty):
    if scalar_bits(ty) == 1:
        return rng.randint(0, 1)
    # Small values keep comparisons/branches live (huge random ints
    # would make every `>` compare decide on sign bits alone).
    lo = -8 if is_signed(ty) else 0
    return rng.randint(lo, 15)


def _make_schedule(program, case, rng):
    """One seeded window schedule per switch label: which kernel runs,
    with which window metadata and argument chunks. Chunk lengths come
    from the program's wire layouts, so they match the compiled masks."""
    schedule = {}
    for label in sorted(program.switch_modules):
        module = program.switch_modules[label]
        kernels = sorted(
            fn.name for fn in module.kernels(ir.FunctionKind.OUT_KERNEL)
        )
        assert kernels, f"no out-kernels on switch {label}"
        plan = []
        for _ in range(TRIALS):
            kernel = rng.choice(kernels)
            fn = module.functions[kernel]
            chunk_counts = [
                c.count for c in program.layouts[kernel].chunks
            ]
            args = []
            for param, count in zip(fn.params, chunk_counts):
                if isinstance(param.ty, PointerType):
                    args.append(
                        [_random_scalar(rng, param.ty.pointee) for _ in range(count)]
                    )
                else:
                    args.append(_random_scalar(rng, param.ty))
            meta = {
                "seq": rng.randrange(case["seq_range"]),
                "from": rng.randint(0, 3),
                "last": rng.randint(0, 1),
                **case["meta_ext"],
            }
            plan.append((kernel, meta, args))
        schedule[label] = plan
    return schedule


def _prepare_state(module):
    """Device state with deterministic non-trivial contents: ctrl scalars
    set (so e.g. nworkers gates fire) and map entries installed (so both
    the hit and the miss paths of Map lookups execute)."""
    state = DeviceState.from_module(module)
    for name, value in state.ctrl.items():
        if not isinstance(value, list):
            state.ctrl_write(name, 2)
    for map_state in state.maps.values():
        for slot, key in enumerate((1, 3, 5)):
            if slot < map_state.ty.capacity:
                map_state.insert(key, slot)
    return state


def _run_trajectory(program, schedule):
    """Interpret the schedule, recording every observable: the forwarding
    decision, return value, mutated window args, and state snapshot."""
    label_ids = program.label_ids
    observed = []
    for label in sorted(schedule):
        module = program.switch_modules[label]
        state = _prepare_state(module)
        for kernel, meta, args in schedule[label]:
            call_args = copy.deepcopy(args)
            result = run_kernel(
                module,
                kernel,
                state,
                meta,
                call_args,
                location_id=label_ids[label],
                location_labels=label_ids,
            )
            observed.append(
                (
                    label,
                    kernel,
                    result.fwd.name,
                    result.fwd_label,
                    result.ret,
                    call_args,
                    state.snapshot(),
                )
            )
    return observed


@pytest.mark.parametrize("name", sorted(CASES))
def test_o0_and_o2_agree(name):
    case = CASES[name]
    at_o0 = _compile(case, 0)
    at_o2 = _compile(case, 2)
    assert at_o0.opt_level == 0 and at_o2.opt_level == 2
    assert sorted(at_o0.switch_modules) == sorted(at_o2.switch_modules)

    schedule = _make_schedule(at_o0, case, random.Random(f"diff:{name}"))
    trajectory_o0 = _run_trajectory(at_o0, schedule)
    trajectory_o2 = _run_trajectory(at_o2, schedule)
    assert len(trajectory_o0) == len(trajectory_o2) > 0
    for step0, step2 in zip(trajectory_o0, trajectory_o2):
        assert step0 == step2


@pytest.mark.parametrize("name", sorted(CASES))
def test_o2_actually_optimizes(name):
    """Sanity that the differential test compares different code: the
    -O2 modules must be no larger, and strictly smaller somewhere."""
    case = CASES[name]
    at_o0 = _compile(case, 0)
    at_o2 = _compile(case, 2)

    def total_instrs(program):
        return sum(
            sum(1 for _ in fn.instructions())
            for module in program.switch_modules.values()
            for fn in module.functions.values()
        )

    assert total_instrs(at_o2) < total_instrs(at_o0)
