"""P4 program model, printer, and the constraint-checking backend."""

import pytest

from repro.errors import BackendRejection, PisaError
from repro.p4.backend import check_program
from repro.p4.model import (
    Action,
    Do,
    HeaderType,
    IfNode,
    P4Program,
    PAssign,
    PBin,
    PConst,
    PField,
    PRegRead,
    PRegWrite,
    RegisterArray,
    Table,
)
from repro.pisa.arch import ArchProfile, BMV2, TOFINO_LIKE, profile_by_name


def program_with_chain(n_actions: int, reg_hits_per_action=0):
    p = P4Program("chain")
    p.add_header(HeaderType("h_t", [("a", 8)]), "h")
    p.deparser = ["h"]
    if reg_hits_per_action:
        p.add_register(RegisterArray("r", 32, 16))
    for i in range(n_actions):
        prims = [PAssign("meta.fwd", PConst(0, 8))]
        for _ in range(reg_hits_per_action):
            prims.append(PRegRead("meta.fwd", "r", PConst(0, 32)))
        p.add_action(Action(f"a{i}", prims))
    p.control = [Do(f"a{i}") for i in range(n_actions)]
    return p


class TestModel:
    def test_duplicate_names_rejected(self):
        p = P4Program("x")
        p.add_action(Action("a", []))
        with pytest.raises(PisaError, match="duplicate"):
            p.add_action(Action("a", []))

    def test_table_requires_known_actions(self):
        p = P4Program("x")
        with pytest.raises(PisaError, match="unknown action"):
            p.add_table(Table("t", [], [], "missing"))

    def test_header_must_be_byte_aligned(self):
        with pytest.raises(PisaError, match="byte-aligned"):
            HeaderType("bad", [("x", 3)])

    def test_field_bits_lookup(self):
        p = P4Program("x")
        p.add_header(HeaderType("h_t", [("a", 16)]), "h")
        assert p.field_bits("h.a") == 16
        assert p.field_bits("meta.fwd") == 8
        with pytest.raises(PisaError):
            p.field_bits("h.nope")

    def test_phv_bits_accounting(self):
        p = P4Program("x")
        base = p.phv_bits()
        p.add_header(HeaderType("h_t", [("a", 16)]), "h")
        p.add_metadata("extra", 32)
        assert p.phv_bits() == base + 16 + 32

    def test_metadata_width_conflict(self):
        p = P4Program("x")
        p.add_metadata("f", 8)
        p.add_metadata("f", 8)  # same width fine
        with pytest.raises(PisaError, match="redefined"):
            p.add_metadata("f", 16)


class TestBackend:
    def test_accepts_small_program(self):
        report = check_program(program_with_chain(3), BMV2)
        assert report.stages == 3

    def test_rejects_too_many_stages(self):
        with pytest.raises(BackendRejection, match="stages"):
            check_program(program_with_chain(13), TOFINO_LIKE)

    def test_if_branches_take_max(self):
        p = program_with_chain(2)
        # wrap second action in a branch against an empty else
        p.control = [
            Do("a0"),
            IfNode(PField("meta.fwd"), [Do("a1")], []),
        ]
        report = check_program(p, BMV2)
        assert report.stages == 2

    def test_register_access_discipline(self):
        p = program_with_chain(1, reg_hits_per_action=2)
        with pytest.raises(BackendRejection, match="register"):
            check_program(p, TOFINO_LIKE)
        report = check_program(p, BMV2)
        assert report.max_register_accesses["r"] == 2

    def test_rmw_counts_once(self):
        p = P4Program("rmw")
        p.add_register(RegisterArray("r", 32, 4))
        p.add_action(
            Action(
                "bump",
                [
                    PRegRead("meta.fwd", "r", PConst(0, 32)),
                    PRegWrite("r", PConst(0, 32), PField("meta.fwd")),
                ],
            )
        )
        p.control = [Do("bump")]
        report = check_program(p, TOFINO_LIKE)
        assert report.max_register_accesses["r"] == 1

    def test_rejects_multiplication_on_tofino_like(self):
        p = P4Program("mul")
        p.add_action(
            Action(
                "m",
                [PAssign("meta.fwd", PBin("mul", PConst(3, 8), PConst(5, 8), 8))],
            )
        )
        p.control = [Do("m")]
        with pytest.raises(BackendRejection, match="multiplication"):
            check_program(p, TOFINO_LIKE)
        check_program(p, BMV2)

    def test_rejects_oversized_phv(self):
        tiny = ArchProfile(
            "tiny", 99, phv_bits=16, sram_bytes=1 << 20, max_tables=9,
            max_table_entries=99, max_actions=99,
            max_register_accesses_per_array=9, supports_mul=True,
        )
        p = P4Program("big")
        p.add_header(HeaderType("h_t", [("a", 64)]), "h")
        p.deparser = ["h"]
        with pytest.raises(BackendRejection, match="PHV"):
            check_program(p, tiny)

    def test_rejects_sram_overflow(self):
        p = P4Program("hog")
        p.add_register(RegisterArray("big", 32, 10_000_000))
        with pytest.raises(BackendRejection, match="SRAM"):
            check_program(p, TOFINO_LIKE)

    def test_rejection_reasons_are_actionable(self):
        try:
            check_program(program_with_chain(40, reg_hits_per_action=2), TOFINO_LIKE)
        except BackendRejection as exc:
            assert len(exc.reasons) >= 2
            assert any("stages" in r for r in exc.reasons)
        else:
            pytest.fail("expected rejection")

    def test_profile_lookup(self):
        assert profile_by_name("bmv2") is BMV2
        assert profile_by_name(None) is BMV2
        with pytest.raises(KeyError):
            profile_by_name("magic-chip")


class TestPrinter:
    def test_emits_parsable_structure(self, allreduce_program):
        src = allreduce_program.switch_sources["s1"]
        assert "#include <v1model.p4>" in src
        assert "parser NcpParser" in src
        assert "control Ingress" in src
        assert "register<bit<32>>" in src
        assert "table ipv4_route" in src
        assert "state parse_ncp" in src

    def test_balanced_braces(self, allreduce_program):
        src = allreduce_program.switch_sources["s1"]
        assert src.count("{") == src.count("}")

    def test_kvs_emits_map_table(self, kvs_program):
        src = kvs_program.switch_sources["s1"]
        assert "table map_Idx" in src
        assert "managed by: control-plane" in src

    def test_handwritten_baseline_prints(self):
        from repro.baselines.p4_netcache import handwritten_p4_source

        src = handwritten_p4_source(16, 4)
        assert "CacheLookup" in src and "Read0" in src
        assert src.count("{") == src.count("}")
