"""Semantic analysis: NCL's rules from S4.1/S4.2."""

import pytest

from repro.errors import NclTypeError
from repro.ncl import frontend

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, KVS_DEFINES, KVS_SRC


class TestPaperPrograms:
    def test_allreduce_analyzes(self):
        tu = frontend(ALLREDUCE_SRC, defines=ALLREDUCE_DEFINES)
        assert set(tu.out_kernels) == {"allreduce"}
        assert set(tu.in_kernels) == {"result"}
        assert set(tu.net_globals) == {"accum", "count"}
        assert set(tu.ctrl_vars) == {"nworkers"}

    def test_kvs_analyzes(self):
        tu = frontend(KVS_SRC, defines=KVS_DEFINES)
        assert set(tu.out_kernels) == {"query"}
        assert set(tu.maps) == {"Idx"}
        assert set(tu.net_globals) == {"Cache", "Valid"}

    def test_window_fields_include_extension(self):
        tu = frontend(ALLREDUCE_SRC, defines=ALLREDUCE_DEFINES)
        names = [n for n, _ in tu.window_fields]
        assert names == ["seq", "from", "last", "len"]

    def test_kernel_pairing(self):
        tu = frontend(ALLREDUCE_SRC, defines=ALLREDUCE_DEFINES)
        paired = tu.paired_out_kernel("result")
        assert paired is not None and paired.name == "allreduce"


def check_fails(source: str, match: str, defines=None):
    with pytest.raises(NclTypeError, match=match):
        frontend(source, defines=defines)


class TestDeclarationRules:
    def test_ctrl_requires_location(self):
        check_fails("_net_ _ctrl_ unsigned n;", "requires _at_")

    def test_ctrl_requires_net(self):
        # _ctrl_ without _net_ is rejected (different phrasing per path).
        with pytest.raises(Exception):
            frontend('_ctrl_ _at_("s1") unsigned n;')

    def test_map_requires_location(self):
        check_fails("_net_ ncl::Map<uint64_t, uint8_t, 4> M;", "requires _at_")

    def test_redefinition_rejected(self):
        check_fails("int x; int x;", "redeclaration|redefinition")

    def test_kernel_must_return_void(self):
        check_fails("_net_ _out_ int k(int *d) { return 1; }", "must return void")

    def test_kernel_needs_parameter(self):
        check_fails("_net_ _out_ void k() { }", "at least one")

    def test_ext_only_on_in_kernels(self):
        check_fails(
            "_net_ _out_ void k(_ext_ int *d) { }", "_ext_.*incoming"
        )

    def test_ext_params_must_trail(self):
        check_fails(
            "_net_ _in_ void k(_ext_ int *h, int *d) { }",
            "must precede",
        )

    def test_in_kernel_rejects_at(self):
        check_fails(
            '_net_ _in_ _at_("s1") void k(int *d) { }', "meaningless"
        )

    def test_in_kernel_must_pair(self):
        check_fails(
            "_net_ _out_ void a(int *d) { }\n"
            "_net_ _in_ void b(uint64_t *d) { }",
            "does not match any outgoing",
        )


class TestAccessRules:
    def test_switch_memory_not_in_host_code(self):
        check_fails(
            '_net_ _at_("s1") int a[4];\nint main() { a[0] = 1; return 0; }',
            "only accessible in",
        )

    def test_host_global_not_in_kernel(self):
        check_fails(
            "int h;\n_net_ _out_ void k(int *d) { d[0] = h; }",
            "not accessible from switch",
        )

    def test_ctrl_read_only_in_kernel(self):
        check_fails(
            '_net_ _at_("s1") _ctrl_ unsigned n;\n'
            "_net_ _out_ void k(int *d) { n = 5; }",
            "read-only",
        )

    def test_map_entry_not_assignable(self):
        check_fails(
            '_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> M;\n'
            "_net_ _out_ void k(uint64_t key) { *M[key] = 1; }",
            "read-only",
        )

    def test_ctrl_wr_allows_ctrl_reference(self):
        tu = frontend(
            '_net_ _at_("s1") _ctrl_ unsigned n;\n'
            "_net_ _out_ void k(int *d) { d[0] = n; }\n"
            "int main() { ncl::ctrl_wr(&n, 16); return 0; }"
        )
        assert "n" in tu.ctrl_vars

    def test_window_only_in_kernels(self):
        check_fails("int main() { return window.seq; }", "only available in kernel")

    def test_window_unknown_field(self):
        check_fails(
            "_net_ _out_ void k(int *d) { d[0] = window.bogus; }",
            "no field",
        )

    def test_window_fields_read_only(self):
        check_fails(
            "struct window { unsigned len; };\n"
            "_net_ _out_ void k(int *d) { window.len = 1; }",
            "read-only",
        )

    def test_location_only_in_out_kernels(self):
        check_fails(
            "_net_ _in_ void k(int *d) { unsigned x = location.id; }\n"
            "_net_ _out_ void o(int *d) { }",
            "only available in outgoing",
        )


class TestIntrinsicRules:
    def test_forwarding_only_in_out_kernels(self):
        check_fails("int main() { _drop(); return 0; }", "only valid inside outgoing")
        check_fails(
            "_net_ _out_ void o(int *d) { }\n"
            "_net_ _in_ void k(int *d) { _bcast(); }",
            "only valid inside outgoing",
        )

    def test_pass_label_must_be_string(self):
        check_fails(
            "_net_ _out_ void k(int *d) { _pass(3); }", "string literal"
        )

    def test_drop_takes_no_args(self):
        check_fails("_net_ _out_ void k(int *d) { _drop(1); }", "no arguments")

    def test_memcpy_arity(self):
        check_fails(
            "_net_ int a[4];\n_net_ _out_ void k(int *d) { memcpy(d, a); }",
            "3 arguments",
        )

    def test_memcpy_pointer_operands(self):
        check_fails(
            "_net_ _out_ void k(int *d) { memcpy(d, 5, 4); }", "must be pointer"
        )

    def test_kernel_not_directly_callable(self):
        check_fails(
            "_net_ _out_ void k(int *d) { }\n"
            "int main() { k(0); return 0; }",
            "cannot be called directly",
        )

    def test_runtime_api_not_in_kernels(self):
        check_fails(
            "_net_ _out_ void k(int *d) { ncl::out(k, 1); }",
            "host-side runtime",
        )

    def test_helper_call_typechecks(self):
        tu = frontend(
            "int clamp(int v) { return v > 100 ? 100 : v; }\n"
            "_net_ _out_ void k(int *d) { d[0] = clamp(d[0]); }"
        )
        assert "clamp" in tu.functions

    def test_helper_wrong_arity(self):
        check_fails(
            "int f(int a, int b) { return a; }\n"
            "_net_ _out_ void k(int *d) { d[0] = f(1); }",
            "expects 2 arguments",
        )


class TestExpressionTyping:
    def test_pointer_deref_type(self):
        tu = frontend("_net_ _out_ void k(uint64_t *d) { uint64_t x = *d; }")
        assert tu is not None

    def test_local_arrays_rejected_in_kernels(self):
        check_fails(
            "_net_ _out_ void k(int *d) { int tmp[4]; }",
            "local arrays",
        )

    def test_break_outside_loop(self):
        check_fails("_net_ _out_ void k(int *d) { break; }", "outside a loop")

    def test_condition_must_be_scalar(self):
        check_fails(
            "_net_ int a[4];\n_net_ _out_ void k(int *d) { if (a) { } }",
            "scalar",
        )

    def test_map_lookup_yields_pointer(self):
        tu = frontend(
            '_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> M;\n'
            "_net_ _out_ void k(uint64_t key) { if (auto *i = M[key]) { uint8_t v = *i; } }"
        )
        assert "M" in tu.maps

    def test_map_key_must_be_integer(self):
        check_fails(
            '_net_ _at_("s1") ncl::Map<uint64_t, uint8_t, 4> M;\n'
            "_net_ _out_ void k(uint64_t *key) { if (auto *i = M[key]) { } }",
            "Map key",
        )
