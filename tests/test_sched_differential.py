"""Differential determinism: fig4/fig5 workloads, heap vs wheel.

The timing-wheel scheduler must be a drop-in replacement for the
reference heap on *real workloads*, not just synthetic event programs:
the Fig 4 AllReduce and Fig 5 KVS apps are run once under each
scheduler and every observable output is compared -- numeric results,
simulated completion times, the full trace event stream, the lineage
JSON built from it, and the hosts' final window state.
"""

import json

from repro.apps.allreduce import AllReduceJob
from repro.apps.kvs_cache import KvsCluster, value_words
from repro.apps.workloads import random_arrays
from repro.net.events import SCHEDULERS
from repro.obs import Observability
from repro.obs.lineage import LineageIndex


def trace_tuples(obs) -> list:
    """The retained trace as comparable tuples (fully virtual-time, so
    byte-identical runs produce identical lists)."""
    return [
        (e.ts, e.dur, e.name, e.cat, e.track, json.dumps(e.args, sort_keys=True))
        for e in obs.tracer.events
    ]


def lineage_json(obs) -> str:
    index = LineageIndex.from_events(obs.tracer.events)
    return json.dumps(index.to_json(), sort_keys=True)


def run_fig4(scheduler: str, monkeypatch) -> dict:
    monkeypatch.setenv("REPRO_SCHED", scheduler)
    obs = Observability()
    job = AllReduceJob(4, 128, 8, obs=obs)
    arrays = random_arrays(4, 128, seed=17)
    results, elapsed = job.run_round(arrays)
    hosts = job.cluster.hosts
    return {
        "results": results,
        "elapsed": elapsed,
        "events": job.cluster.network.sim.events_processed,
        "windows": {
            label: (h.windows_sent, h.windows_received, dict(h.inbox))
            for label, h in sorted(hosts.items())
        },
        "trace": trace_tuples(obs),
        "lineage": lineage_json(obs),
    }


def run_fig5(scheduler: str, monkeypatch) -> dict:
    monkeypatch.setenv("REPRO_SCHED", scheduler)
    obs = Observability()
    kvs = KvsCluster(
        n_clients=2, cache_size=8, val_words=4, n_keys=64, obs=obs
    )
    kvs.install_hot_keys([1, 2, 3])
    kvs.get(0, 1)        # hit
    kvs.get(1, 40)       # miss -> server
    kvs.put(0, 2, value_words(9, 4))
    kvs.get(1, 2)        # hit, updated value
    kvs.get(0, 50)       # miss
    kvs.run()
    return {
        "records": [
            (r.op, r.key, r.issued, r.completed, r.served_by_cache, r.value)
            for r in kvs.records
        ],
        "server_ops": kvs.server_ops,
        "events": kvs.cluster.network.sim.events_processed,
        "windows": {
            label: (h.windows_sent, h.windows_received)
            for label, h in sorted(kvs.cluster.hosts.items())
        },
        "trace": trace_tuples(obs),
        "lineage": lineage_json(obs),
    }


class TestFig4Differential:
    def test_allreduce_identical_across_schedulers(self, monkeypatch):
        runs = {s: run_fig4(s, monkeypatch) for s in SCHEDULERS}
        heap, wheel = runs["heap"], runs["wheel"]
        assert heap["results"] == wheel["results"]
        assert heap["elapsed"] == wheel["elapsed"]
        assert heap["events"] == wheel["events"]
        assert heap["windows"] == wheel["windows"]
        assert heap["trace"] == wheel["trace"]
        assert heap["lineage"] == wheel["lineage"]
        # and the workload actually exercised the fabric
        assert heap["events"] > 100
        assert any(e[2] == "window:recv" for e in heap["trace"])


class TestFig5Differential:
    def test_kvs_identical_across_schedulers(self, monkeypatch):
        runs = {s: run_fig5(s, monkeypatch) for s in SCHEDULERS}
        heap, wheel = runs["heap"], runs["wheel"]
        assert heap["records"] == wheel["records"]
        assert heap["server_ops"] == wheel["server_ops"]
        assert heap["events"] == wheel["events"]
        assert heap["windows"] == wheel["windows"]
        assert heap["trace"] == wheel["trace"]
        assert heap["lineage"] == wheel["lineage"]
        # sanity: the workload mixed cache hits and server misses
        by_cache = [r[4] for r in heap["records"] if r[0] == "GET"]
        assert True in by_cache and False in by_cache
