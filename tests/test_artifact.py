"""The versioned repro.nclc/1 artifact: save/load round-trips and
running precompiled programs (no frontend re-invocation)."""

import json

import pytest

from repro.apps.allreduce import AllReduceJob
from repro.apps.kvs_cache import KvsCluster
from repro.apps.workloads import random_arrays, zipf_keys
from repro.errors import ArtifactError
from repro.nclc import Compiler, WindowConfig
from repro.nclc.driver import CompiledProgram

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, STAR_AND


def compile_allreduce():
    return Compiler().compile(
        ALLREDUCE_SRC,
        and_text=STAR_AND,
        windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
        defines=ALLREDUCE_DEFINES,
    )


class TestRoundTrip:
    def test_schema_header(self):
        payload = json.loads(compile_allreduce().to_json())
        assert payload["schema"] == "repro.nclc/1"
        assert payload["nclc_version"].startswith("nclc-")
        assert payload["opt_level"] == 2
        assert payload["profile"] == "bmv2"

    def test_load_redump_is_byte_identical(self):
        text = compile_allreduce().to_json()
        assert CompiledProgram.from_json(text).to_json() == text

    def test_save_load_file(self, tmp_path):
        program = compile_allreduce()
        path = tmp_path / "allreduce.nclc.json"
        program.save(path)
        loaded = CompiledProgram.load(path)
        assert loaded.to_json() == program.to_json()

    def test_loaded_program_preserves_everything_the_runtime_reads(self):
        program = compile_allreduce()
        loaded = CompiledProgram.from_json(program.to_json())
        assert loaded.kernel_ids == program.kernel_ids
        assert loaded.label_ids == program.label_ids
        assert sorted(loaded.unit.out_kernels) == sorted(program.unit.out_kernels)
        assert sorted(loaded.unit.in_kernels) == sorted(program.unit.in_kernels)
        assert loaded.and_spec.render() == program.and_spec.render()
        assert loaded.switch_sources == program.switch_sources
        for name, layout in program.layouts.items():
            got = loaded.layouts[name]
            assert got.kernel_id == layout.kernel_id
            assert [(c.name, c.count, c.bits) for c in got.chunks] == [
                (c.name, c.count, c.bits) for c in layout.chunks
            ]
        for label, report in program.reports.items():
            assert loaded.reports[label].as_dict() == report.as_dict()

    def test_in_kernel_pairing_survives(self):
        loaded = CompiledProgram.from_json(compile_allreduce().to_json())
        paired = loaded.unit.paired_out_kernel("result")
        assert paired is not None and paired.name == "allreduce"
        assert loaded.paired_in_kernel("allreduce") == "result"


class TestLoadErrors:
    def test_rejects_wrong_schema(self):
        with pytest.raises(ArtifactError, match="schema"):
            CompiledProgram.from_json(json.dumps({"schema": "repro.nclc/99"}))

    def test_rejects_non_json(self):
        with pytest.raises(ArtifactError):
            CompiledProgram.from_json("not json{")

    def test_rejects_truncated_payload(self):
        payload = json.loads(compile_allreduce().to_json())
        del payload["ref_module"]
        with pytest.raises(ArtifactError):
            CompiledProgram.from_json(json.dumps(payload))


class TestPrecompiledRun:
    """The acceptance bar: save -> load -> run == in-process compile."""

    def test_fig4_allreduce_identical_results(self, tmp_path):
        n_workers, data_len, window = 2, 64, 8
        arrays = random_arrays(n_workers, data_len, seed=7)

        direct = AllReduceJob(n_workers, data_len, window)
        res_direct, t_direct = direct.run_round(arrays)

        path = tmp_path / "fig4.nclc.json"
        AllReduceJob.compile_program(n_workers, data_len, window).save(path)
        precompiled = AllReduceJob(
            n_workers, data_len, window, program=CompiledProgram.load(path)
        )
        res_loaded, t_loaded = precompiled.run_round(arrays)

        assert res_loaded == res_direct
        assert t_loaded == t_direct
        assert res_loaded[0] == AllReduceJob.expected(arrays)

    def test_fig5_kvs_identical_results(self, tmp_path):
        n_keys, cache_size, val_words = 64, 8, 4
        keys = zipf_keys(80, n_keys, 0.9, seed=13)
        hot = sorted(set(keys))[:cache_size]

        def run(program=None):
            kvs = KvsCluster(
                n_clients=1,
                cache_size=cache_size,
                val_words=val_words,
                n_keys=n_keys,
                program=program,
            )
            kvs.install_hot_keys(hot)
            records = kvs.run_workload(0, keys, put_every=10)
            return kvs, records

        direct, rec_direct = run()

        path = tmp_path / "fig5.nclc.json"
        KvsCluster.compile_program(
            n_clients=1, cache_size=cache_size, val_words=val_words
        ).save(path)
        loaded, rec_loaded = run(program=CompiledProgram.load(path))

        assert [
            (r.op, r.key, r.latency, r.served_by_cache, r.value) for r in rec_loaded
        ] == [(r.op, r.key, r.latency, r.served_by_cache, r.value) for r in rec_direct]
        assert loaded.hit_ratio() == direct.hit_ratio()
        assert loaded.server_ops == direct.server_ops
