"""SSA construction (mem2reg) and the IR verifier."""

import pytest

from repro.errors import IrError
from repro.nir import ir
from repro.nir.mem2reg import promote_allocas
from repro.nir.verify import verify_function, verify_module

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, lowered_module


def promoted(source, defines=None, fn="k"):
    mod = lowered_module(source, defines)
    func = mod.functions[fn]
    promote_allocas(func)
    verify_function(func)
    return func


class TestPromotion:
    def test_no_allocas_remain(self):
        fn = promoted(
            "_net_ _out_ void k(int *d) { int x = d[0]; d[1] = x + x; }"
        )
        assert not [i for i in fn.instructions() if isinstance(i, ir.Alloca)]
        assert not [i for i in fn.instructions() if isinstance(i, (ir.Load, ir.Store))]

    def test_straightline_no_phi(self):
        fn = promoted("_net_ _out_ void k(int *d) { int x = 1; x = x + 2; d[0] = x; }")
        assert not [i for i in fn.instructions() if isinstance(i, ir.Phi)]

    def test_if_join_creates_phi(self):
        fn = promoted(
            "_net_ _out_ void k(int *d) {"
            " int x = 0;"
            " if (d[0]) x = 1; else x = 2;"
            " d[1] = x; }"
        )
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        values = sorted(v.value for v, _ in phis[0].incoming if isinstance(v, ir.Const))
        assert values == [1, 2]

    def test_loop_induction_phi(self):
        fn = promoted(
            "_net_ _out_ void k(int *d) {"
            " for (unsigned i = 0; i < 4; ++i) d[0] += 1; }"
        )
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) >= 1

    def test_one_sided_if_uses_initial_value(self):
        fn = promoted(
            "_net_ _out_ void k(int *d) {"
            " int x = 5;"
            " if (d[0]) x = 9;"
            " d[1] = x; }"
        )
        phis = [i for i in fn.instructions() if isinstance(i, ir.Phi)]
        assert len(phis) == 1
        values = sorted(v.value for v, _ in phis[0].incoming if isinstance(v, ir.Const))
        assert values == [5, 9]

    def test_allreduce_promotes_cleanly(self):
        mod = lowered_module(ALLREDUCE_SRC, ALLREDUCE_DEFINES)
        for fn in mod.functions.values():
            promote_allocas(fn)
        verify_module(mod)

    def test_idempotent(self):
        fn = promoted("_net_ _out_ void k(int *d) { int x = d[0]; d[0] = x; }")
        assert promote_allocas(fn) == 0


class TestVerifier:
    def test_missing_terminator_detected(self):
        from repro.ncl.types import VOID

        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        fn.new_block("entry")
        with pytest.raises(IrError, match="missing terminator"):
            verify_function(fn)

    def test_use_before_def_detected(self):
        from repro.ncl.types import I32, VOID

        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        b = fn.new_block("entry")
        add = ir.BinOp("add", ir.Const(I32, 1), ir.Const(I32, 2), I32)
        dead = ir.BinOp("add", add, ir.Const(I32, 1), I32)
        # append use before def:
        b.append(dead)
        b.append(add)
        b.append(ir.Ret())
        with pytest.raises(IrError, match="before definition"):
            verify_function(fn)

    def test_cross_block_dominance(self):
        from repro.ncl.types import BOOL, I32, VOID

        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        left = fn.new_block("left")
        right = fn.new_block("right")
        join = fn.new_block("join")
        cond = entry.append(ir.Cast("bool", ir.Const(I32, 1), BOOL))
        entry.append(ir.CondBr(cond, left, right))
        x = left.append(ir.BinOp("add", ir.Const(I32, 1), ir.Const(I32, 2), I32))
        left.append(ir.Br(join))
        right.append(ir.Br(join))
        join.append(ir.BinOp("add", x, ir.Const(I32, 1), I32))  # x doesn't dominate
        join.append(ir.Ret())
        with pytest.raises(IrError, match="non-dominating"):
            verify_function(fn)

    def test_phi_incoming_mismatch(self):
        from repro.ncl.types import I32, VOID

        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        join = fn.new_block("join")
        entry.append(ir.Br(join))
        phi = ir.Phi(I32)
        phi.block = join
        join.instrs.insert(0, phi)  # zero incoming vs one predecessor
        join.append(ir.Ret())
        with pytest.raises(IrError, match="phi"):
            verify_function(fn)

    def test_terminator_mid_block(self):
        from repro.ncl.types import VOID

        fn = ir.Function("f", ir.FunctionKind.HELPER, [], VOID)
        entry = fn.new_block("entry")
        other = fn.new_block("other")
        entry.instrs.append(ir.Br(other))
        entry.instrs.append(ir.Ret())
        for i in entry.instrs:
            i.block = entry
        other.append(ir.Ret())
        with pytest.raises(IrError, match="middle of a block"):
            verify_function(fn)
