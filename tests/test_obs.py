"""The observability layer: registry semantics, trace exporters,
end-to-end packet-path introspection, drop-cause accounting, and the
compiler's per-pass trace."""

from __future__ import annotations

import io
import itertools
import json
import time

import pytest

from repro.errors import RuntimeApiError, SimulationError
from repro.nclc import Compiler, WindowConfig
from repro.net.events import Simulator
from repro.net.network import Network
from repro.obs import (
    NULL_OBS,
    CompileTrace,
    MetricsRegistry,
    Observability,
    ObservabilityError,
    Tracer,
    collect_network_metrics,
)

from tests.conftest import ALLREDUCE_DEFINES, ALLREDUCE_SRC, STAR_AND


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_counter_and_gauge_basics(self):
        reg = MetricsRegistry()
        c = reg.counter("c")
        c.inc()
        c.inc(4)
        g = reg.gauge("g")
        g.set(7)
        g.add(-2)
        snap = reg.snapshot()
        assert snap["c"]["series"][0]["value"] == 5
        assert snap["g"]["series"][0]["value"] == 5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="only go up"):
            reg.counter("c").inc(-1)

    def test_labels_must_match_declaration(self):
        reg = MetricsRegistry()
        fam = reg.counter("link.bytes", labels=("link",))
        fam.labels(link="a<->b").inc(10)
        with pytest.raises(ObservabilityError, match="takes labels"):
            fam.labels(node="a")
        with pytest.raises(ObservabilityError, match="takes labels"):
            fam.labels(link="a<->b", cause="loss")
        with pytest.raises(ObservabilityError, match="takes labels"):
            fam.labels()

    def test_label_free_convenience_requires_label_free_family(self):
        reg = MetricsRegistry()
        fam = reg.counter("drops", labels=("cause",))
        with pytest.raises(ObservabilityError, match="use .labels"):
            fam.inc()

    def test_redeclaration_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("n", labels=("x",))
        b = reg.counter("n", "other description", labels=("x",))
        assert a is b

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(ObservabilityError, match="already declared"):
            reg.gauge("n")

    def test_label_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("n", labels=("a",))
        with pytest.raises(ObservabilityError, match="already declared"):
            reg.counter("n", labels=("a", "b"))

    def test_series_distinct_per_label_value(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("table",))
        fam.labels(table="t1").inc(3)
        fam.labels(table="t2").inc(5)
        series = reg.snapshot()["hits"]["series"]
        assert [(s["labels"]["table"], s["value"]) for s in series] == [
            ("t1", 3),
            ("t2", 5),
        ]

    def test_collector_runs_at_snapshot(self):
        reg = MetricsRegistry()
        calls = []

        def collector(r):
            calls.append(1)
            r.gauge("collected").set(len(calls))

        reg.register_collector(collector)
        assert reg.snapshot()["collected"]["series"][0]["value"] == 1
        assert reg.snapshot()["collected"]["series"][0]["value"] == 2

    def test_snapshot_sorted_and_json_stable(self):
        def build():
            reg = MetricsRegistry()
            reg.gauge("z.last").set(1)
            reg.counter("a.first", labels=("k",)).labels(k="v").inc()
            reg.histogram("m.mid").observe(2.5)
            return json.dumps(reg.snapshot(), sort_keys=True)

        one, two = build(), build()
        assert one == two
        assert list(json.loads(one)) == ["a.first", "m.mid", "z.last"]


class TestCardinalityCaps:
    def test_over_cap_keys_collapse_into_overflow_series(self):
        from repro.obs import OVERFLOW_LABEL

        reg = MetricsRegistry()
        fam = reg.counter("link.bytes", labels=("link",), max_series=2)
        fam.labels(link="a").inc(1)
        fam.labels(link="b").inc(2)
        fam.labels(link="c").inc(4)  # over the cap
        fam.labels(link="d").inc(8)  # also routed
        assert fam.series_count() == 3  # a, b, __overflow__
        snap = reg.snapshot()["link.bytes"]
        values = {s["labels"]["link"]: s["value"] for s in snap["series"]}
        assert values == {"a": 1, "b": 2, OVERFLOW_LABEL: 12}
        assert snap["overflow_routed"] == 2  # distinct collapsed keys

    def test_existing_series_keep_updating_past_the_cap(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("t",), max_series=1)
        fam.labels(t="hot").inc()
        fam.labels(t="cold").inc()  # routed
        fam.labels(t="hot").inc()  # pre-existing: updates in place
        snap = reg.snapshot()["hits"]
        values = {s["labels"]["t"]: s["value"] for s in snap["series"]}
        assert values["hot"] == 2

    def test_overflow_routed_absent_when_cap_never_bites(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("t",), max_series=10)
        fam.labels(t="a").inc()
        assert "overflow_routed" not in reg.snapshot()["hits"]

    def test_registry_wide_default_and_per_family_override(self):
        reg = MetricsRegistry(max_series_per_family=1)
        capped = reg.counter("capped", labels=("k",))
        roomy = reg.counter("roomy", labels=("k",), max_series=10)
        for key in ("a", "b", "c"):
            capped.labels(k=key).inc()
            roomy.labels(k=key).inc()
        assert capped.series_count() == 2  # one real + overflow
        assert roomy.series_count() == 3
        assert reg.total_series() == 5

    def test_label_free_families_never_overflow(self):
        reg = MetricsRegistry(max_series_per_family=1)
        fam = reg.counter("plain")
        fam.inc(5)
        assert reg.snapshot()["plain"]["series"][0]["value"] == 5
        assert "overflow_routed" not in reg.snapshot()["plain"]


class TestHistogram:
    def test_percentiles_linear_interpolation(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in range(1, 101):
            h.observe(v)
        series = h.labels()
        assert series.percentile(0) == 1
        assert series.percentile(100) == 100
        assert series.percentile(50) == pytest.approx(50.5)
        assert series.percentile(90) == pytest.approx(90.1)
        assert series.percentile(99) == pytest.approx(99.01)

    def test_percentile_edge_cases(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        series = h.labels()
        with pytest.raises(ObservabilityError, match="empty"):
            series.percentile(50)
        h.observe(42)
        assert series.percentile(99) == 42.0
        with pytest.raises(ObservabilityError, match="outside"):
            series.percentile(101)

    def test_percentile_extremes_short_circuit(self):
        """p=0 and p=100 must hit the exact min/max with no interpolation
        arithmetic, for any sample count; empty raises for every p."""
        reg = MetricsRegistry()
        h = reg.histogram("h")
        series = h.labels()
        for p in (0, 50, 100):
            with pytest.raises(ObservabilityError, match="empty"):
                series.percentile(p)
        for v in (7.5, -3.0, 12.25, 0.0):
            h.observe(v)
        assert series.percentile(0) == -3.0
        assert series.percentile(100) == 12.25
        with pytest.raises(ObservabilityError, match="outside"):
            series.percentile(-0.5)

    def test_bucket_counts_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(10, 100))
        for v in (1, 5, 10, 50, 5000):
            h.observe(v)
        buckets = h.labels().bucket_counts()
        assert buckets == {"10": 3, "100": 4, "+Inf": 5}

    def test_summary_in_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        value = reg.snapshot()["h"]["series"][0]["value"]
        assert value["count"] == 1
        assert value["sum"] == 0.5
        assert value["p50"] == 0.5


# ---------------------------------------------------------------------------
# tracer + exporters
# ---------------------------------------------------------------------------


def small_trace() -> Tracer:
    t = Tracer()
    t.span("serialize", 1e-6, 2e-6, track="link a<->b", cat="link",
           args={"bytes": 64})
    t.instant("drop", 2e-6, track="link a<->b", cat="link",
              args={"cause": "loss"})
    t.span("deliver", 5e-6, 1e-6, track="host b", cat="host")
    return t


class TestTracer:
    def test_queries(self):
        t = small_trace()
        assert len(t) == 3
        assert [e.name for e in t.on_track("link a<->b")] == ["serialize", "drop"]
        assert len(t.named("deliver")) == 1
        assert t.tracks() == ["link a<->b", "host b"]

    def test_jsonl_one_valid_object_per_line(self):
        buf = io.StringIO()
        small_trace().write_jsonl(buf)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 3
        objs = [json.loads(line) for line in lines]
        assert objs[0]["name"] == "serialize"
        assert objs[0]["dur"] == 2e-6
        assert "dur" not in objs[1]
        assert objs[1]["args"] == {"cause": "loss"}

    def test_timeline_human_readable(self):
        text = small_trace().timeline()
        assert "serialize" in text
        assert "cause=loss" in text
        assert text.index("serialize") < text.index("deliver")  # time order
        assert len(small_trace().timeline(limit=1).splitlines()) == 1

    def test_chrome_round_trip(self):
        buf = io.StringIO()
        small_trace().write_chrome(buf)
        doc = json.loads(buf.getvalue())
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == {"link a<->b", "host b"}
        spans = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in spans} == {"serialize", "deliver"}
        assert spans[0]["ts"] == 1.0 and spans[0]["dur"] == 2.0  # microseconds
        assert instants[0]["s"] == "t"
        # deterministic tids: first-appearance order
        tid_of = {e["args"]["name"]: e["tid"] for e in meta
                  if e["name"] == "thread_name"}
        assert tid_of["link a<->b"] == 1
        assert tid_of["host b"] == 2


# ---------------------------------------------------------------------------
# the disabled fast path
# ---------------------------------------------------------------------------


class TestDisabledPath:
    def test_default_simulator_obs_is_null(self):
        sim = Simulator()
        assert sim.obs is NULL_OBS
        assert not sim.obs.enabled
        assert sim.obs.snapshot() == {}

    def test_untraced_network_stays_on_null_obs(self):
        net = Network()
        assert net.sim.obs is NULL_OBS
        a, b = net.add_host("a"), net.add_host("b")
        net.add_link("a", "b")
        net.compute_routes()
        b.receiver = lambda data: None
        a.transmit(b"x" * 100, b.node_id)
        net.run()
        # stats still accumulate; no tracer exists to accumulate events
        assert net.links[0].stats.frames == 1
        assert NULL_OBS.tracer is None

    def test_disabled_check_is_near_free(self):
        """The instrumentation-site pattern (attr load + branch) must be
        in the tens-of-nanoseconds range; assert a very generous bound so
        the test never flakes on slow CI."""
        sim = Simulator()
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            obs = sim.obs
            if obs.enabled:
                raise AssertionError("NULL_OBS must be disabled")
        per_call = (time.perf_counter() - t0) / n
        assert per_call < 5e-6  # 5 us; real cost is ~50 ns

    def test_enabled_flag_routes_instrumentation(self):
        assert Observability().enabled is True
        assert NULL_OBS.enabled is False

    def test_int_off_guard_is_near_free(self):
        """With INT off, the per-frame cost at each hook site is one
        ``carries_int`` call: a length check plus three fixed-offset byte
        tests. Assert the same generous per-call bound as the disabled
        obs check, then bound the aggregate tax on a real round: two
        guard sites per frame across a full AllReduce round must stay
        under 1% of the round's wall-clock (measured ~0.1%)."""
        from repro.apps.allreduce import AllReduceJob
        from repro.apps.workloads import random_arrays
        from repro.ncp.wire import ChunkLayout, KernelLayout, encode_frame
        from repro.obs.int import carries_int

        layout = KernelLayout(1, "k", [ChunkLayout("d", 8, 32, False)])
        frame = encode_frame(layout, 0, 1, 0, [list(range(8))])
        n = 50_000
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(n):
                carries_int(frame)
            best = min(best, (time.perf_counter() - t0) / n)
        assert best < 5e-6  # 5 us bound; real cost is ~200 ns

        job = AllReduceJob(4, 512, 8)
        arrays = random_arrays(4, 512, seed=4)
        t0 = time.perf_counter()
        results, _ = job.run_round(arrays)
        round_wall = time.perf_counter() - t0
        assert results[0] == AllReduceJob.expected(arrays)
        frames = sum(lk.stats.frames for lk in job.cluster.network.links)
        assert best * 2 * frames < 0.01 * round_wall


# ---------------------------------------------------------------------------
# link drop causes + node_by_id (net-layer satellites)
# ---------------------------------------------------------------------------


def traced_two_hosts(**link_kwargs):
    obs = Observability()
    net = Network(obs=obs)
    a = net.add_host("a")
    b = net.add_host("b")
    net.add_link("a", "b", seed=1, **link_kwargs)
    net.compute_routes()
    b.receiver = lambda data: None
    return net, a, b, obs


class TestDropCauses:
    def test_loss_drop_counted_and_traced(self):
        net, a, b, obs = traced_two_hosts(loss=1.0)
        a.transmit(b"x" * 10, b.node_id)
        net.run()
        stats = net.links[0].stats
        assert stats.drops_loss == 1
        assert stats.drops_overflow == 0
        assert stats.drops == 1  # backward-compatible sum
        drops = obs.tracer.named("drop")
        assert len(drops) == 1
        assert drops[0].args["cause"] == "loss"

    def test_overflow_drop_counted_and_traced(self):
        # 8 Mbit/s = 1 byte/us; a 1000 B frame occupies the queue for
        # 1 ms, so a burst overflows a 1500 B egress buffer.
        net, a, b, obs = traced_two_hosts(
            bandwidth=8e6, queue_limit_bytes=1500
        )
        for _ in range(4):
            a.transmit(b"y" * 1000, b.node_id)
        net.run()
        stats = net.links[0].stats
        assert stats.drops_overflow > 0
        assert stats.drops_loss == 0
        assert stats.frames + stats.drops_overflow == 4
        drop = obs.tracer.named("drop")[0]
        assert drop.args["cause"] == "overflow"
        assert drop.args["backlog_bytes"] > 0

    def test_no_limit_means_no_overflow(self):
        net, a, b, _ = traced_two_hosts(bandwidth=8e6)
        for _ in range(4):
            a.transmit(b"y" * 1000, b.node_id)
        net.run()
        assert net.links[0].stats.drops == 0
        assert net.links[0].stats.frames == 4

    def test_drop_causes_in_registry_snapshot(self):
        net, a, b, obs = traced_two_hosts(loss=1.0)
        a.transmit(b"x" * 10, b.node_id)
        net.run()
        snap = obs.snapshot()
        series = {
            (s["labels"]["link"], s["labels"]["cause"]): s["value"]
            for s in snap["link.drops"]["series"]
        }
        assert series[("a<->b", "loss")] == 1
        assert series[("a<->b", "overflow")] == 0


class TestNodeById:
    def test_lookup_and_unknown(self):
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b", node_id=17)
        assert net.node_by_id(a.node_id) is a
        assert net.node_by_id(17) is b
        with pytest.raises(SimulationError, match="no node with id"):
            net.node_by_id(99)

    def test_duplicate_id_rejected(self):
        net = Network()
        net.add_host("a", node_id=3)
        with pytest.raises(SimulationError, match="duplicate node id"):
            net.add_host("b", node_id=3)


# ---------------------------------------------------------------------------
# end-to-end: traced AllReduce (packet-path introspection + determinism)
# ---------------------------------------------------------------------------


def run_traced_allreduce():
    from repro.apps.allreduce import AllReduceJob

    obs = Observability()
    job = AllReduceJob(2, 16, 4, obs=obs)
    arrays = [[i for i in range(16)], [2 * i for i in range(16)]]
    results, elapsed = job.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    return job, obs


@pytest.fixture(scope="module")
def traced_allreduce():
    return run_traced_allreduce()


class TestTracedAllReduce:
    def test_tracks_cover_every_layer(self, traced_allreduce):
        _, obs = traced_allreduce
        tracks = obs.tracer.tracks()
        assert "host w0" in tracks
        assert "host w1" in tracks
        assert "switch s1" in tracks
        assert any(t.startswith("link ") for t in tracks)

    def test_switch_spans_tile_pipeline_delay(self, traced_allreduce):
        from repro.net.pisanode import PisaSwitchNode

        _, obs = traced_allreduce
        sw = obs.tracer.on_track("switch s1")
        spans = [e for e in sw if e.dur is not None]
        verdicts = [e for e in sw if e.name == "verdict"]
        assert any(e.name == "parse:parser" for e in spans)
        assert any(e.name.startswith("action:") for e in spans)
        assert verdicts and all(
            e.args["verdict"] in ("drop", "bcast", "pass", "reflect")
            for e in verdicts
        )
        # per packet, the sub-spans tile PIPELINE_DELAY exactly
        per_packet = sum(e.dur for e in spans) / len(verdicts)
        assert per_packet == pytest.approx(PisaSwitchNode.PIPELINE_DELAY)

    def test_events_carry_ncp_window_identity(self, traced_allreduce):
        _, obs = traced_allreduce
        serializes = obs.tracer.named("serialize")
        tagged = [e for e in serializes if "kernel" in e.args]
        assert tagged, "NCP frames should be annotated on the wire"
        # the link layer has no kernel layouts, so it tags the raw id
        assert {e.args["kernel"] for e in tagged} == {1}  # allreduce
        assert {e.args["seq"] for e in tagged} == {0, 1, 2, 3}
        assert all("from" in e.args for e in tagged)

    def test_window_lifecycle_counters(self, traced_allreduce):
        _, obs = traced_allreduce
        snap = obs.snapshot()
        windows = {
            (s["labels"]["host"], s["labels"]["kernel"], s["labels"]["event"]):
                s["value"]
            for s in snap["ncp.windows"]["series"]
        }
        # 16 elems / window of 4 = 4 windows per worker, opened and flushed
        assert windows[("w0", "allreduce", "open")] == 4
        assert windows[("w0", "allreduce", "flush")] == 4
        # each worker receives every broadcast window back (counted under
        # the outgoing kernel whose id the frame carries)
        assert windows[("w1", "allreduce", "recv")] == 4

    def test_switch_pipeline_metrics(self, traced_allreduce):
        _, obs = traced_allreduce
        snap = obs.snapshot()
        pkts = snap["switch.packets"]["series"][0]
        assert pkts["labels"]["switch"] == "s1"
        assert pkts["value"] == 8  # 2 workers * 4 windows
        phv = snap["switch.phv_fields"]["series"][0]["value"]
        assert phv["count"] == 8
        assert phv["min"] > 0

    def test_trace_and_snapshot_deterministic(self):
        """Two identical runs export byte-identical artifacts."""
        outputs = []
        for _ in range(2):
            _, obs = run_traced_allreduce()
            chrome = io.StringIO()
            obs.tracer.write_chrome(chrome)
            jsonl = io.StringIO()
            obs.tracer.write_jsonl(jsonl)
            snap = json.dumps(obs.snapshot(), sort_keys=True)
            outputs.append((chrome.getvalue(), jsonl.getvalue(), snap))
        assert outputs[0] == outputs[1]

    def test_lossy_run_shows_loss_drops_in_snapshot(self):
        """Regression: a lossy deployment is distinguishable from a
        congested one -- its drops carry cause=loss."""
        from repro.apps.allreduce import AllReduceJob

        obs = Observability()
        job = AllReduceJob(2, 16, 4, loss=1.0, obs=obs)
        with pytest.raises(RuntimeApiError, match="did not complete"):
            job.run_round([[1] * 16, [2] * 16])
        snap = obs.snapshot()
        loss_drops = sum(
            s["value"]
            for s in snap["link.drops"]["series"]
            if s["labels"]["cause"] == "loss"
        )
        overflow_drops = sum(
            s["value"]
            for s in snap["link.drops"]["series"]
            if s["labels"]["cause"] == "overflow"
        )
        assert loss_drops > 0
        assert overflow_drops == 0


class TestTableSpans:
    def test_pass_verdict_hits_route_table(self):
        """A plain forwarded frame exercises ipv4_route: the per-stage
        trace shows the table hit and the registry counts it."""
        from repro.runtime import Cluster

        src = (
            "_net_ unsigned seen[1] = {0};\n"
            "_net_ _out_ void probe(unsigned *d) { seen[0] += d[0]; }\n"
        )
        program = Compiler().compile(
            src, windows={"probe": WindowConfig(mask=(1,))}
        )
        obs = Observability()
        cluster = Cluster.from_program(program, obs=obs)
        cluster.host("h0").out("probe", [[1]], dst="h1")
        cluster.run()
        tables = [
            e for e in obs.tracer.on_track("switch s1")
            if e.name.startswith("table:")
        ]
        assert any(e.name == "table:ipv4_route" for e in tables)
        assert any(e.args.get("detail", "").startswith("hit:") for e in tables)
        snap = obs.snapshot()
        hits = {
            s["labels"]["table"]: s["value"]
            for s in snap["switch.table_hits"]["series"]
        }
        assert hits.get("ipv4_route", 0) >= 1


# ---------------------------------------------------------------------------
# compiler instrumentation
# ---------------------------------------------------------------------------


def fake_clock():
    counter = itertools.count()
    return lambda: next(counter) * 0.001  # 1 ms per tick


class TestCompileTrace:
    def compile_traced(self):
        trace = CompileTrace(clock=fake_clock())
        Compiler().compile(
            ALLREDUCE_SRC,
            and_text=STAR_AND,
            windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            defines=ALLREDUCE_DEFINES,
            trace=trace,
        )
        return trace

    def test_stages_recorded_in_order(self):
        trace = self.compile_traced()
        names = [r["stage"] for r in trace.stages]
        assert names[:5] == [
            "frontend", "irgen", "conformance", "host-opt", "versioning"
        ]
        assert "switch-opt" in names and "codegen+backend" in names
        # fake clock: every stage's wall time is an exact tick multiple
        assert all(r["wall_s"] > 0 for r in trace.stages)
        assert trace.stage_times()["frontend"] == pytest.approx(0.001)

    def test_passes_record_ir_deltas(self):
        trace = self.compile_traced()
        assert trace.passes, "per-pass records expected"
        for rec in trace.passes:
            assert rec["ir_before"] >= 0 and rec["ir_after"] >= 0
            assert rec["wall_s"] == pytest.approx(0.001)
        unrolls = [r for r in trace.passes
                   if r["pass"] == "unroll" and r["stage"] == "s1"]
        assert unrolls and any(
            r["ir_after"] > r["ir_before"] for r in unrolls
        ), "full unroll must grow the switch IR"
        host = [r for r in trace.passes if r["stage"] == "host"]
        assert {r["pass"] for r in host} >= {"inline", "mem2reg", "dce"}

    def test_deterministic_with_fake_clock(self):
        one = json.dumps(self.compile_traced().as_dict(), sort_keys=True)
        two = json.dumps(self.compile_traced().as_dict(), sort_keys=True)
        assert one == two

    def test_reports(self):
        trace = self.compile_traced()
        table = trace.format_table()
        assert "== compile stages ==" in table
        assert "unroll" in table
        buf = io.StringIO()
        trace.write_chrome(buf)
        doc = json.loads(buf.getvalue())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "frontend" for e in spans)
        assert any(e["name"].startswith("unroll:") for e in spans)

    def test_compiled_program_carries_trace(self):
        trace = CompileTrace(clock=fake_clock())
        program = Compiler().compile(
            ALLREDUCE_SRC,
            and_text=STAR_AND,
            windows={"allreduce": WindowConfig(mask=(4,), ext={"len": 4})},
            defines=ALLREDUCE_DEFINES,
            trace=trace,
        )
        assert program.compile_trace is trace
        # coarse per-stage wall times are always collected, trace or not
        assert set(program.stage_times) >= {"frontend", "switch-opt"}


class TestNclcCli:
    def test_timing_and_trace_out(self, tmp_path, capsys):
        from repro.nclc.__main__ import main

        src = tmp_path / "allreduce.ncl"
        src.write_text(ALLREDUCE_SRC)
        and_file = tmp_path / "star.and"
        and_file.write_text(STAR_AND)
        trace_file = tmp_path / "compile.trace.json"
        rc = main([
            str(src), "--and", str(and_file), "-o", str(tmp_path / "build"),
            "-D", "DATA_LEN=64", "-D", "WIN_LEN=4",
            "--window", "allreduce=4", "--ext", "len=4",
            "--timing", "--trace-out", str(trace_file),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== compile stages ==" in out
        assert "ACCEPTED" in out
        doc = json.loads(trace_file.read_text())
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])
        report = json.loads(
            (tmp_path / "build" / "s1.report.json").read_text()
        )
        assert "stages" in report["timing"]
        assert any(p["pass"] == "unroll" for p in report["timing"]["passes"])


# ---------------------------------------------------------------------------
# post-hoc snapshots (the benchmark path)
# ---------------------------------------------------------------------------


class TestPostHocSnapshot:
    def test_untraced_network_snapshot(self):
        """collect_network_metrics works on a finished, untraced network
        -- how benchmarks attach per-layer breakdowns without paying for
        tracing in the timed region."""
        net = Network()
        a = net.add_host("a")
        b = net.add_host("b")
        net.add_link("a", "b")
        net.compute_routes()
        b.receiver = lambda data: None
        a.transmit(b"x" * 100, b.node_id)
        net.run()
        reg = MetricsRegistry()
        collect_network_metrics(net, reg)
        snap = reg.snapshot()
        assert snap["link.bytes"]["series"][0]["value"] == 100
        rx = {
            s["labels"]["node"]: s["value"]
            for s in snap["node.rx_frames"]["series"]
        }
        assert rx == {"a": 0, "b": 1}
        assert snap["sim.events_processed"]["series"][0]["value"] > 0
