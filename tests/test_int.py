"""In-band network telemetry: trailer wire format, per-hop stamping,
truncation semantics, the causal lineage index (including retransmits
and fragments), and the ``python -m repro.obs.query`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.ncp.wire import ChunkLayout, FLAG_INT, KernelLayout, encode_frame
from repro.ncp.window import Window
from repro.nclc import Compiler, WindowConfig
from repro.obs import IntConfig, Observability
from repro.obs.int import (
    HOP_BYTES,
    IntError,
    TAIL_BYTES,
    attach_tail,
    carries_int,
    peek_stack,
    stamp_hop,
    strip_stack,
)
from repro.obs.lineage import LineageError, LineageIndex
from repro.runtime import Cluster

_FLAGS_OFF = 14 + 20 + 8 + 3


def make_frame(seq: int = 0, values=(1, 2, 3, 4)) -> bytes:
    layout = KernelLayout(1, "k", [ChunkLayout("d", len(values), 32, False)])
    return encode_frame(layout, src_node=0, dst_node=1, seq=seq,
                        chunks=[list(values)])


# ---------------------------------------------------------------------------
# trailer wire format
# ---------------------------------------------------------------------------


class TestWireFormat:
    def test_attach_sets_flag_and_empty_tail(self):
        frame = make_frame()
        assert not carries_int(frame)
        armed = attach_tail(frame)
        assert carries_int(armed)
        assert len(armed) == len(frame) + TAIL_BYTES
        assert armed[_FLAGS_OFF] & FLAG_INT
        stack = peek_stack(armed)
        assert len(stack) == 0
        assert stack.attempt == 0
        assert not stack.truncated

    def test_attach_twice_rejected(self):
        armed = attach_tail(make_frame())
        with pytest.raises(IntError, match="already carries"):
            attach_tail(armed)

    def test_strip_restores_original_bytes(self):
        frame = make_frame()
        bare, stack = strip_stack(attach_tail(frame))
        assert bare == frame  # FLAG_INT cleared, trailer gone
        assert stack is not None
        # a frame without a trailer passes through unchanged
        same, none = strip_stack(frame)
        assert same == frame and none is None

    def test_peek_on_plain_frame_is_none(self):
        assert peek_stack(make_frame()) is None
        assert not carries_int(b"\x00" * 64)  # non-NCP bytes

    def test_hop_record_round_trips(self):
        armed = attach_tail(make_frame(), attempt=3)
        stamped, ok = stamp_hop(
            armed, IntConfig(max_hops=4), hop_id=9,
            ingress_ts=1.5e-6, egress_ts=2.5e-6,
            qdepth_bytes=1234, tables_matched=2,
        )
        assert ok
        assert len(stamped) == len(armed) + HOP_BYTES
        stack = peek_stack(stamped)
        assert stack.attempt == 3
        (hop,) = stack.hops
        assert hop["hop"] == 9
        assert hop["ingress_ns"] == 1500
        assert hop["egress_ns"] == 2500
        assert hop["qdepth"] == 1234
        assert hop["tables"] == 2
        assert hop["flags"] == 0

    def test_dropped_flag_and_stacking_order(self):
        frame = attach_tail(make_frame())
        cfg = IntConfig(max_hops=4)
        frame, _ = stamp_hop(frame, cfg, 1, 0.0, 1e-6, 0, 0)
        frame, _ = stamp_hop(frame, cfg, 2, 2e-6, 3e-6, 5, 1, dropped=True)
        stack = peek_stack(frame)
        assert [h["hop"] for h in stack.hops] == [1, 2]
        assert stack.hops[0]["flags"] == 0
        assert stack.hops[1]["flags"] == 0x01


# ---------------------------------------------------------------------------
# truncation semantics
# ---------------------------------------------------------------------------


class TestTruncation:
    def test_hop_cap(self):
        cfg = IntConfig(max_hops=2)
        frame = attach_tail(make_frame())
        for hop_id in (1, 2):
            frame, ok = stamp_hop(frame, cfg, hop_id, 0.0, 1e-6, 0, 0)
            assert ok
        over, ok = stamp_hop(frame, cfg, 3, 2e-6, 3e-6, 0, 0)
        assert not ok
        assert len(over) == len(frame)  # nothing appended
        stack = peek_stack(over)
        assert len(stack) == 2
        assert stack.truncated
        assert [h["hop"] for h in stack.hops] == [1, 2]

    def test_byte_budget_bites_mid_stack(self):
        # Room for exactly one record: the second switch appends nothing
        # and flags the gap instead.
        cfg = IntConfig(max_hops=8, byte_budget=HOP_BYTES + 5)
        frame = attach_tail(make_frame())
        frame, ok = stamp_hop(frame, cfg, 1, 0.0, 1e-6, 0, 0)
        assert ok
        frame, ok = stamp_hop(frame, cfg, 2, 2e-6, 3e-6, 0, 0)
        assert not ok
        stack = peek_stack(frame)
        assert [h["hop"] for h in stack.hops] == [1]
        assert stack.truncated
        # still strippable: the bare frame survives intact
        bare, _ = strip_stack(frame)
        assert bare == make_frame()

    def test_config_validation(self):
        with pytest.raises(IntError, match="max_hops"):
            IntConfig(max_hops=0)
        with pytest.raises(IntError, match="max_hops"):
            IntConfig(max_hops=256)
        with pytest.raises(IntError, match="byte_budget"):
            IntConfig(byte_budget=-1)

    def test_hop_cap_in_network(self):
        """A two-switch path with max_hops=1: only the first switch
        stamps; the collector sees a truncated one-record stack."""
        from repro.apps.telemetry import TelemetryCluster

        obs = Observability(int_config=IntConfig(max_hops=1))
        cluster = TelemetryCluster(n_senders=1, slots=8, hh_threshold=99,
                                   obs=obs)
        cluster.send_flows(0, [3])
        stacks = [e for e in obs.tracer.events if e.name == "int:stack"
                  and e.args["outcome"] == "delivered"]
        assert stacks
        for event in stacks:
            assert len(event.args["hops"]) == 1
            assert event.args["hops"][0]["node"] == "s1"
            assert event.args["truncated"] == 1


# ---------------------------------------------------------------------------
# end-to-end stamping on the AllReduce path
# ---------------------------------------------------------------------------


def run_int_allreduce(n_workers: int = 2, data_len: int = 16, window: int = 4):
    from repro.apps.allreduce import AllReduceJob

    obs = Observability(int_config=IntConfig(max_hops=8))
    job = AllReduceJob(n_workers, data_len, window, obs=obs)
    arrays = [[w + 1] * data_len for w in range(n_workers)]
    results, _ = job.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    return job, obs


@pytest.fixture(scope="module")
def int_allreduce():
    return run_int_allreduce()


class TestIntAllReduce:
    def test_delivered_stacks_at_every_worker(self, int_allreduce):
        _, obs = int_allreduce
        delivered = [e for e in obs.tracer.events if e.name == "int:stack"
                     and e.args["outcome"] == "delivered"]
        # 4 broadcast windows x 2 workers
        assert len(delivered) == 8
        for event in delivered:
            (hop,) = event.args["hops"]
            assert hop["node"] == "s1"
            assert hop["egress_ns"] > hop["ingress_ns"]
            assert "qdepth" in hop

    def test_absorbed_windows_show_switch_drop(self, int_allreduce):
        _, obs = int_allreduce
        absorbed = [e for e in obs.tracer.events if e.name == "int:stack"
                    and e.args["outcome"] == "drop:switch"]
        # one of the two per-seq uplink windows is aggregated away
        assert len(absorbed) == 4
        for event in absorbed:
            assert event.track == "switch s1"
            assert event.args["hops"][-1]["flags"] & 0x01  # DROPPED

    def test_int_metrics_in_snapshot(self, int_allreduce):
        _, obs = int_allreduce
        snap = obs.snapshot()
        stacks = sum(s["value"] for s in snap["int.stacks"]["series"])
        records = sum(s["value"] for s in snap["int.records"]["series"])
        assert stacks == 8
        assert records == 8  # single-switch path: one record per stack
        latency = snap["int.hop_latency_ns"]["series"][0]["value"]
        assert latency["count"] == 8
        assert latency["min"] > 0

    def test_int_off_run_has_no_trailers(self):
        """Observability without an IntConfig must not stamp anything:
        the trace carries no int:stack events and no INT flags."""
        from repro.apps.allreduce import AllReduceJob

        obs = Observability()
        job = AllReduceJob(2, 16, 4, obs=obs)
        job.run_round([[1] * 16, [2] * 16])
        assert obs.int_config is None
        assert not [e for e in obs.tracer.events if e.name == "int:stack"]
        assert "int.stacks" not in obs.snapshot()

    def test_lineage_json_byte_identical_across_runs(self):
        """Acceptance: two identical runs -> byte-identical lineage."""
        blobs = []
        for _ in range(2):
            _, obs = run_int_allreduce()
            index = LineageIndex.from_events(obs.tracer.events)
            blobs.append(json.dumps(index.to_json(), sort_keys=True))
        assert blobs[0] == blobs[1]

    def test_explain_prints_full_story(self, int_allreduce):
        """Acceptance: explain shows emit -> hops -> delivery with
        per-hop queue depth and timestamps."""
        _, obs = int_allreduce
        index = LineageIndex.from_events(obs.tracer.events)
        text = index.explain("allreduce", 0)
        assert "emit t=" in text
        assert "hop s1" in text
        assert "qdepth=" in text
        assert "ingress=" in text and "egress=" in text
        assert "delivered at host" in text
        assert "aggregated in-network" in text  # the absorbed branch


# ---------------------------------------------------------------------------
# lineage: retransmits and fragments
# ---------------------------------------------------------------------------


PROBE_SRC = (
    "_net_ unsigned seen[1] = {0};\n"
    "_net_ _out_ void probe(unsigned *d) { seen[0] += d[0]; }\n"
)


def probe_cluster(mask=(1,), mtu=None):
    obs = Observability(int_config=IntConfig(max_hops=8))
    program = Compiler().compile(
        PROBE_SRC, windows={"probe": WindowConfig(mask=mask)}
    )
    cluster = Cluster.from_program(program, obs=obs)
    if mtu is not None:
        for host in cluster.hosts.values():
            host.mtu = mtu
    return cluster, obs


class TestRetransmitLineage:
    def test_attempts_are_distinct_branches_with_own_hops(self):
        cluster, obs = probe_cluster()
        h0 = cluster.host("h0")
        h0.out("probe", [[7]], dst="h1")
        cluster.run()
        window = Window(0, [[7]], ext={}, last=True, from_node=h0.node_id)
        assert h0.retransmit_window("probe", window, "h1") == 1
        cluster.run()
        assert h0.retransmit_window("probe", window, "h1") == 2
        cluster.run()
        assert h0.windows_retransmitted == 2

        index = LineageIndex.from_events(obs.tracer.events)
        lineage = index.window("probe", 0)
        branch = lineage.branches[h0.node_id]
        assert sorted(branch.attempts) == [0, 1, 2]
        sent = []
        for number in (0, 1, 2):
            attempt = branch.attempts[number]
            assert attempt.kind == ("send" if number == 0 else "retransmit")
            assert attempt.outcome == "delivered"
            # each attempt carries its own per-hop records
            assert attempt.stacks and all(
                s["hops"] for s in attempt.stacks
            )
            sent.append(attempt.sent_ts)
        assert sent == sorted(sent) and len(set(sent)) == 3

    def test_retransmit_trace_events_and_counter(self):
        cluster, obs = probe_cluster()
        h0 = cluster.host("h0")
        h0.out("probe", [[3]], dst="h1")
        cluster.run()
        window = Window(0, [[3]], ext={}, last=True, from_node=h0.node_id)
        h0.retransmit_window("probe", window, "h1")
        cluster.run()
        retx = [e for e in obs.tracer.events if e.name == "window:retransmit"]
        assert len(retx) == 1
        assert retx[0].args["attempt"] == 1
        snap = obs.snapshot()
        events = {
            (s["labels"]["event"]): s["value"]
            for s in snap["ncp.windows"]["series"]
            if s["labels"]["host"] == "h0"
        }
        assert events["retransmit"] == 1


class TestFragmentInt:
    def test_each_fragment_collects_its_own_stack(self):
        # 16 x 32-bit elements = 64 B payload; mtu 80 forces fragments.
        cluster, obs = probe_cluster(mask=(16,), mtu=80)
        h0 = cluster.host("h0")
        h0.out("probe", [list(range(16))], dst="h1")
        cluster.run()
        delivered = [e for e in obs.tracer.events if e.name == "int:stack"
                     and e.args["outcome"] == "delivered"]
        assert len(delivered) >= 2
        frags = sorted(e.args["frag"] for e in delivered)
        assert frags == list(range(len(frags)))  # 0, 1, ...
        for event in delivered:
            assert event.args["kernel"] == 1  # FRAG bit masked off
            assert event.args["hops"]
        # the window itself still reassembles and arrives once
        recv = [e for e in obs.tracer.events if e.name == "window:recv"]
        assert len(recv) == 1
        inbox = cluster.host("h1").inbox["probe"]
        assert inbox[0].chunks == [list(range(16))]


class TestFragmentRetransmit:
    """Retransmission under fragmentation: the attempt number stamped in
    the INT tail must be the same on *every* fragment of an attempt --
    the host fragments first and arms each piece (see
    ``NclHost._send_window``), so a mixed-attempt window would mean the
    tail was attached before fragmentation."""

    def _run_two_attempts(self):
        # 16 x 32-bit elements = 64 B payload; mtu 80 forces fragments.
        cluster, obs = probe_cluster(mask=(16,), mtu=80)
        h0 = cluster.host("h0")
        h0.out("probe", [list(range(16))], dst="h1")
        cluster.run()
        window = Window(0, [list(range(16))], ext={}, last=True,
                        from_node=h0.node_id)
        assert h0.retransmit_window("probe", window, "h1") == 1
        cluster.run()
        return cluster, obs, h0

    def test_every_fragment_of_an_attempt_carries_its_attempt(self):
        cluster, obs, _h0 = self._run_two_attempts()
        delivered = [e for e in obs.tracer.events if e.name == "int:stack"
                     and e.args["outcome"] == "delivered"]
        by_attempt = {}
        for event in delivered:
            by_attempt.setdefault(
                event.args["attempt"], []
            ).append(event.args["frag"])
        assert sorted(by_attempt) == [0, 1]
        for frags in by_attempt.values():
            # genuinely fragmented, and a full fragment train per attempt
            assert len(frags) >= 2
            assert sorted(frags) == list(range(len(frags)))
        # both attempts fragment the same window the same way
        first, second = by_attempt[0], by_attempt[1]
        assert len(first) == len(second)
        # both attempts reassemble into a delivered window
        recv = [e for e in obs.tracer.events if e.name == "window:recv"]
        assert len(recv) == 2

    def test_lineage_one_branch_per_attempt_under_fragmentation(self):
        cluster, obs, h0 = self._run_two_attempts()
        index = LineageIndex.from_events(obs.tracer.events)
        lineage = index.window("probe", 0)
        branch = lineage.branches[h0.node_id]
        assert sorted(branch.attempts) == [0, 1]
        for number in (0, 1):
            attempt = branch.attempts[number]
            assert attempt.kind == ("send" if number == 0 else "retransmit")
            assert attempt.outcome == "delivered"
            # one per-hop stack per fragment, all on this attempt
            assert len(attempt.stacks) >= 2


class TestRetxTable:
    """The retransmission-attempt table must not grow without bound: a
    delivered window of the same (kernel, seq) evicts its entry, and the
    ``ncp.retx_tracked`` gauge exposes the live size."""

    def test_delivery_evicts_attempt_entry(self):
        cluster, obs = probe_cluster()
        h0 = cluster.host("h0")
        h1 = cluster.host("h1")
        h0.out("probe", [[7]], dst="h1")
        cluster.run()
        window = Window(0, [[7]], ext={}, last=True, from_node=h0.node_id)
        assert h0.retransmit_window("probe", window, "h1") == 1
        cluster.run()
        assert dict(h0._retx_attempts) == {("probe", 0): 1}
        # a probe window of the same seq arriving back at h0 completes
        # the exchange and evicts the entry
        h1.out_window("probe", 0, [[9]], "h0")
        cluster.run()
        assert dict(h0._retx_attempts) == {}
        # attempt numbering restarts for the next exchange of this seq
        assert h0.retransmit_window("probe", window, "h1") == 1

    def test_gauge_tracks_live_entries(self):
        cluster, obs = probe_cluster()
        h0 = cluster.host("h0")
        h1 = cluster.host("h1")
        h0.out("probe", [[1]], dst="h1")
        cluster.run()
        for seq in (0, 1, 2):
            window = Window(seq, [[1]], ext={}, last=True,
                            from_node=h0.node_id)
            h0.retransmit_window("probe", window, "h1")
        cluster.run()

        def gauge_value():
            snap = obs.snapshot()
            return {
                s["labels"]["host"]: s["value"]
                for s in snap["ncp.retx_tracked"]["series"]
            }["h0"]

        assert gauge_value() == 3
        h1.out_window("probe", 1, [[4]], "h0")
        cluster.run()
        assert gauge_value() == 2
        assert sorted(h0._retx_attempts) == [("probe", 0), ("probe", 2)]


# ---------------------------------------------------------------------------
# the query CLI over saved artifacts
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def saved_run(tmp_path_factory):
    outdir = tmp_path_factory.mktemp("run")
    _, obs = run_int_allreduce()
    trace = outdir / "run.trace.jsonl"
    with open(trace, "w") as fp:
        obs.tracer.write_jsonl(fp)
    metrics = outdir / "run.metrics.json"
    with open(metrics, "w") as fp:
        json.dump(obs.snapshot(), fp, sort_keys=True)
    return trace, metrics


class TestQueryCli:
    def run_cli(self, capsys, *argv):
        from repro.obs.query import main

        rc = main(list(argv))
        return rc, capsys.readouterr()

    def test_lineage_then_explain(self, saved_run, tmp_path, capsys):
        trace, _ = saved_run
        lineage = tmp_path / "run.lineage.json"
        rc, out = self.run_cli(
            capsys, "lineage", "--trace", str(trace), "-o", str(lineage)
        )
        assert rc == 0
        assert json.loads(lineage.read_text())["schema"] == "repro.lineage/1"
        rc, out = self.run_cli(
            capsys, "explain", "--lineage", str(lineage),
            "--window", "allreduce:0",
        )
        assert rc == 0
        assert "hop s1" in out.out
        assert "delivered at host" in out.out
        assert "qdepth=" in out.out

    def test_explain_accepts_numeric_kernel(self, saved_run, capsys):
        trace, _ = saved_run
        rc, out = self.run_cli(
            capsys, "explain", "--trace", str(trace), "--window", "1:1"
        )
        assert rc == 0
        assert "window allreduce:1" in out.out

    def test_slowest(self, saved_run, capsys):
        trace, _ = saved_run
        rc, out = self.run_cli(
            capsys, "slowest", "--trace", str(trace), "--top", "2"
        )
        assert rc == 0
        lines = [ln for ln in out.out.splitlines() if ln.startswith("allreduce")]
        assert len(lines) == 2
        latencies = [float(ln.split()[1].rstrip("us")) for ln in lines]
        assert latencies == sorted(latencies, reverse=True)

    def test_drops(self, saved_run, capsys):
        trace, _ = saved_run
        rc, out = self.run_cli(capsys, "drops", "--trace", str(trace))
        assert rc == 0
        assert "drop:switch" in out.out  # the aggregated uplink windows

    def test_drops_top_limits_output(self, saved_run, capsys):
        trace, _ = saved_run
        rc, full = self.run_cli(capsys, "drops", "--trace", str(trace))
        assert rc == 0
        rc, top = self.run_cli(
            capsys, "drops", "--trace", str(trace), "--top", "1"
        )
        assert rc == 0
        assert len(top.out.strip().splitlines()) == 1
        # --top is a prefix of the full (deterministically ordered) list
        assert full.out.startswith(top.out)

    def test_slowest_ordering_is_stable(self, saved_run, capsys):
        """Equal-latency windows list in (kernel, seq) order, so repeated
        invocations and --top prefixes agree byte-for-byte."""
        trace, _ = saved_run
        rc, a = self.run_cli(
            capsys, "slowest", "--trace", str(trace), "--top", "100"
        )
        rc, b = self.run_cli(
            capsys, "slowest", "--trace", str(trace), "--top", "100"
        )
        assert a.out == b.out
        rc, top = self.run_cli(
            capsys, "slowest", "--trace", str(trace), "--top", "3"
        )
        body = [ln for ln in a.out.splitlines() if ln.startswith("allreduce")]
        top_body = [ln for ln in top.out.splitlines()
                    if ln.startswith("allreduce")]
        assert top_body == body[:3]

    def test_stragglers_ordering_is_stable(self, saved_run, capsys):
        trace, _ = saved_run
        rc, a = self.run_cli(
            capsys, "stragglers", "--trace", str(trace), "--percentile", "0"
        )
        rc, b = self.run_cli(
            capsys, "stragglers", "--trace", str(trace), "--percentile", "0"
        )
        assert rc == 0
        assert a.out == b.out
        # latencies are non-increasing down the listing
        lats = [int(ln.split("latency=")[1].split("ns")[0])
                for ln in a.out.splitlines() if "latency=" in ln]
        assert lats == sorted(lats, reverse=True)

    def test_stragglers_with_metrics_threshold(self, saved_run, capsys):
        trace, metrics = saved_run
        rc, out = self.run_cli(
            capsys, "stragglers", "--trace", str(trace),
            "--metrics", str(metrics), "--percentile", "50",
        )
        assert rc == 0
        assert "threshold" in out.out
        assert "registry histogram buckets" in out.out

    def test_stragglers_without_metrics(self, saved_run, capsys):
        trace, _ = saved_run
        rc, out = self.run_cli(
            capsys, "stragglers", "--trace", str(trace), "--percentile", "0"
        )
        assert rc == 0
        assert "lineage hop records" in out.out

    def test_unknown_window_fails_cleanly(self, saved_run, capsys):
        trace, _ = saved_run
        rc, out = self.run_cli(
            capsys, "explain", "--trace", str(trace), "--window", "nope:99"
        )
        assert rc == 2
        assert "no lineage" in out.err

    def test_bad_window_spec(self, saved_run, capsys):
        trace, _ = saved_run
        rc, out = self.run_cli(
            capsys, "explain", "--trace", str(trace), "--window", "zork"
        )
        assert rc == 2
        assert "KERNEL:SEQ" in out.err


class TestLineageRoundTrip:
    def test_from_json_round_trips(self):
        _, obs = run_int_allreduce()
        index = LineageIndex.from_events(obs.tracer.events)
        blob = json.dumps(index.to_json(), sort_keys=True)
        again = LineageIndex.from_json(json.loads(blob))
        assert json.dumps(again.to_json(), sort_keys=True) == blob
        # queries work identically on the round-tripped index
        assert again.explain("allreduce", 0) == index.explain("allreduce", 0)

    def test_schema_mismatch_rejected(self):
        with pytest.raises(LineageError, match="schema"):
            LineageIndex.from_json({"schema": "something/else"})
