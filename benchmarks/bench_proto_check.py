"""Transport-safety verifier scaling: every shipped program, one pass.

``tests/test_proto.py`` exercises the checks; this bench exercises
their *cost*: one full ``check-proto`` pass -- compile, effect
summaries, exhaustive window model, report rendering -- over every
shipped example program (the four standalone ones plus the three
multi-tenant deploy programs with their production defines and window
geometries). The sweep is clean by construction -- the bench measures
how long proving that takes, and ``check_budget.py`` gates the wall
time with a ceiling budget (``proto_check.wall_s``) plus the
deterministic diagnostic count (``proto_check.diagnostics``, exactly
zero).
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.proto import ProtoContext, render_report_json, run_checks
from repro.nclc.driver import Compiler, WindowConfig

from benchmarks._util import print_table, record_once

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"
DEPLOY = EXAMPLES / "deploy"

#: (source path, defines, {kernel: WindowConfig}, and-spec path) -- the
#: deploy programs use the same configurations multi_tenant.deploy maps
#: onto the fabric.
_PROGRAMS = [
    (EXAMPLES / "parity.ncl", None, None, None),
    (EXAMPLES / "stats.ncl", None, None, None),
    (EXAMPLES / "fig4_allreduce.ncl", None, None, None),
    (EXAMPLES / "fig5_kvs.ncl", None, None, None),
    (
        DEPLOY / "allreduce.ncl",
        {"DATA_LEN": 64, "WIN_LEN": 8},
        {"allreduce": WindowConfig(mask=(8,), ext={"len": 8})},
        DEPLOY / "allreduce.and",
    ),
    (
        DEPLOY / "kvs.ncl",
        {"CACHE_SIZE": 64, "VAL_WORDS": 4, "SERVER": 1},
        {"query": WindowConfig(mask=(1, 4, 1), ext={})},
        DEPLOY / "kvs.and",
    ),
    (
        DEPLOY / "dedup.ncl",
        {"FILTER_BITS": 1024},
        {"dedup": WindowConfig(mask=(1, 4), ext={})},
        DEPLOY / "dedup.and",
    ),
]


def run_proto_check():
    """One full ``check-proto`` pass over every shipped program.

    Returns ``(contexts, timings)`` where *timings* is a dict of wall
    seconds per stage across the whole sweep.
    """
    compiled = []
    t0 = time.perf_counter()
    for path, defines, windows, and_path in _PROGRAMS:
        and_text = and_path.read_text() if and_path is not None else None
        compiled.append(Compiler(opt_level=2).compile(
            path.read_text(),
            and_text=and_text,
            windows=windows,
            defines=defines,
            filename=str(path),
        ))
    t1 = time.perf_counter()
    contexts = []
    for program in compiled:
        ctx = ProtoContext(program)
        run_checks(ctx)
        contexts.append(ctx)
    t2 = time.perf_counter()
    for ctx in contexts:
        render_report_json(ctx)
    t3 = time.perf_counter()
    timings = {
        "compile": t1 - t0,
        "effects+model": t2 - t1,
        "report": t3 - t2,
        "total": t3 - t0,
    }
    return contexts, timings


def measure_proto_check() -> dict:
    """The ``check_budget.py`` hook: wall time (ceiling-gated) plus the
    deterministic diagnostic count for the clean shipped programs."""
    contexts, timings = run_proto_check()
    return {
        "proto_check.wall_s": round(timings["total"], 4),
        "proto_check.diagnostics": sum(len(ctx.sink) for ctx in contexts),
    }


def test_proto_check_shipped_programs(benchmark):
    contexts, timings = record_once(benchmark, run_proto_check)
    rows = [[stage, f"{seconds * 1e3:.2f}"]
            for stage, seconds in timings.items()]
    print_table(
        f"check-proto sweep ({len(_PROGRAMS)} shipped programs)",
        ["stage", "ms"], rows,
    )
    for (path, _d, _w, _a), ctx in zip(_PROGRAMS, contexts):
        assert not ctx.sink.has_errors, path
        assert len(ctx.sink) == 0, (path, [d.message for d in ctx.sink])
        for result in ctx.model_results().values():
            assert result.counterexample is None, path


def test_proto_recheck_is_cheap(benchmark):
    """Compiling dominates; re-running the checks on already-compiled
    programs is the steady-state verification path the fixture times."""
    compiled = []
    for path, defines, windows, and_path in _PROGRAMS:
        and_text = and_path.read_text() if and_path is not None else None
        compiled.append(Compiler(opt_level=2).compile(
            path.read_text(),
            and_text=and_text,
            windows=windows,
            defines=defines,
            filename=str(path),
        ))

    def recheck():
        out = []
        for program in compiled:
            ctx = ProtoContext(program)
            run_checks(ctx)
            out.append(ctx)
        return out

    contexts = benchmark(recheck)
    assert all(not ctx.sink.has_errors for ctx in contexts)
