"""Fig 1b -- the hand-written P4 NetCache GET path.

Regenerates the paper's motivating example as a running artifact: the
Fig 1b program (hand-built against the P4 model) processes GET windows
on the PISA simulator, head-to-head with the NCL-compiled cache from
Fig 5 on the identical workload. The paper's point is that the two
*behave* the same while the programming effort differs wildly -- the
companion table quantifies the artifact sizes.
"""


from repro.apps.kvs_cache import KVS_NCL
from repro.baselines.p4_netcache import build_netcache_program, handwritten_p4_source
from repro.nclc import Compiler, WindowConfig
from repro.ncp.wire import ChunkLayout, KernelLayout, encode_frame, node_ip
from repro.pisa.switch_dev import PisaSwitch

from benchmarks._util import loc, print_table

CACHE_SIZE = 64
VAL_WORDS = 8
SERVER_ID = 1


def kv_layout(kernel_id=1):
    return KernelLayout(
        kernel_id,
        "kv",
        [
            ChunkLayout("key", 1, 64, False),
            ChunkLayout("val", VAL_WORDS, 32, False),
            ChunkLayout("update", 1, 8, False),
        ],
    )


def populated_hand_switch():
    sw = PisaSwitch(build_netcache_program(CACHE_SIZE, VAL_WORDS, SERVER_ID))
    layout = kv_layout()
    for node in (0, 1):
        sw.table_insert("ipv4_route", [node_ip(node)], "ipv4_forward", [node])
    for key in range(CACHE_SIZE // 2):  # half the keys cached
        sw.table_insert("CacheLookup", [key], "CacheHit", [key])
        update = encode_frame(
            layout, SERVER_ID, 0, seq=0,
            chunks=[[key], [key] * VAL_WORDS, [1]], from_node=SERVER_ID,
        )
        sw.process(update)
    return sw, layout


def populated_ncl_switch():
    program = Compiler().compile(
        KVS_NCL,
        and_text="host c0\nhost server\nswitch s1\nlink c0 s1\nlink server s1",
        windows={"query": WindowConfig(mask=(1, VAL_WORDS, 1))},
        defines={"CACHE_SIZE": CACHE_SIZE, "VAL_WORDS": VAL_WORDS, "SERVER": SERVER_ID},
    )
    sw = PisaSwitch(program.switch_programs["s1"])
    layout = program.layouts["query"]
    for node in (0, 1, 2):
        sw.table_insert("ipv4_route", [node_ip(node)], "ipv4_forward", [0])
    for key in range(CACHE_SIZE // 2):
        sw.table_insert("map_Idx", [key], "map_Idx_hit", [key])
        update = encode_frame(
            layout, SERVER_ID, 0, seq=0,
            chunks=[[key], [key] * VAL_WORDS, [1]], from_node=SERVER_ID,
        )
        sw.process(update)
    return sw, layout


def get_frames(layout, n=64):
    return [
        encode_frame(
            layout, 0, SERVER_ID, seq=i,
            chunks=[[i % CACHE_SIZE], [0] * VAL_WORDS, [0]],
        )
        for i in range(n)
    ]


def drive(sw, frames):
    hits = 0
    for frame in frames:
        if sw.process(frame).verdict == "reflect":
            hits += 1
    return hits


def test_fig1_handwritten_netcache_get(benchmark):
    sw, layout = populated_hand_switch()
    frames = get_frames(layout)
    hits = benchmark(drive, sw, frames)
    assert hits == len(frames) // 2  # half the keys were cached

    ncl_sw, ncl_layout = populated_ncl_switch()
    ncl_hits = drive(ncl_sw, get_frames(ncl_layout))
    assert ncl_hits == hits  # identical behaviour, wildly different source

    hand_src = handwritten_p4_source(CACHE_SIZE, VAL_WORDS)
    print_table(
        "Fig 1b: hand-written P4 vs NCL (same cache, same workload)",
        ["artifact", "LoC", "tables", "actions", "GET hit rate"],
        [
            ["hand P4 (Fig 1b)", loc(hand_src),
             len(build_netcache_program(CACHE_SIZE, VAL_WORDS).tables),
             len(build_netcache_program(CACHE_SIZE, VAL_WORDS).actions),
             f"{hits}/{len(frames)}"],
            ["NCL (Fig 5)", loc(KVS_NCL), "written for you", "written for you",
             f"{ncl_hits}/{len(frames)}"],
        ],
    )


def test_fig1_ncl_compiled_equivalent(benchmark):
    sw, layout = populated_ncl_switch()
    frames = get_frames(layout)
    hits = benchmark(drive, sw, frames)
    assert hits == len(frames) // 2
