#!/usr/bin/env python3
"""Cross-run comparison over bench artifacts: pairwise diff + trends.

Two modes, both built on ``repro.obs.diff`` (``repro.diff/1``):

* **pairwise** -- ``python benchmarks/compare_runs.py A B``: diff two
  runs' artifacts (each a JSON file or an artifact directory, e.g. two
  ``$REPRO_TRACE`` output dirs or two ``check_budget.py --history``
  entries) and print per-metric deltas, new/vanished series, and the
  handlers whose wall time regressed most. ``--json`` emits the raw
  report; ``--fail-on-delta`` exits 1 on any non-wall-clock change --
  the "this refactor changed nothing observable" gate.

* **trend** -- ``python benchmarks/compare_runs.py --trend DIR``: walk
  the run ledger a repeated ``check_budget.py --history DIR`` accrues
  (``run-0000.json``, ``run-0001.json``, ...) and print each metric's
  trajectory first -> last, flagging the largest drifts. ``--gate PCT``
  exits 1 when any deterministic metric moved more than PCT% between
  the two most recent runs -- the regression tripwire the budget gate
  calls on to see perf as a trajectory rather than a snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO / "src"))


def cmd_pairwise(args) -> int:
    from repro.obs.diff import diff_runs, render_report, write_report

    report = diff_runs(args.runs[0], args.runs[1], top=args.top)
    if args.output:
        with open(args.output, "w") as fp:
            write_report(report, fp)
        print(f"wrote {args.output}")
    if args.json:
        write_report(report, sys.stdout)
    else:
        print(render_report(report, limit=args.limit))
    if args.fail_on_delta and not report["zero_delta"]:
        return 1
    return 0


def _load_history(trend_dir: Path):
    runs = sorted(trend_dir.glob("run-*.json"))
    if len(runs) < 2:
        raise SystemExit(
            f"error: need at least 2 runs in {trend_dir} "
            f"(found {len(runs)}); accumulate them with "
            "check_budget.py --history"
        )
    docs = []
    for path in runs:
        with open(path) as fp:
            docs.append((path.name, json.load(fp)))
    return docs


def cmd_trend(args) -> int:
    from repro.obs.diff import is_wall_metric

    docs = _load_history(Path(args.trend))
    names = sorted({
        name for _, doc in docs for name in doc.get("measured", {})
    })
    print(f"trend over {len(docs)} runs ({docs[0][0]} .. {docs[-1][0]}):\n")
    width = max(len(n) for n in names)
    print(f"{'metric':<{width}}  {'first':>14}  {'last':>14}  "
          f"{'drift':>9}  note")
    for name in names:
        series = [
            doc.get("measured", {}).get(name)
            for _, doc in docs
        ]
        present = [v for v in series if v is not None]
        first, last = present[0], present[-1]
        note = ""
        if series[0] is None:
            note = "appeared"
        elif series[-1] is None:
            note = "vanished"
        if is_wall_metric(name):
            note = (note + " wall-clock").strip()
        if first:
            drift = f"{100.0 * (last - first) / abs(first):+.1f}%"
        else:
            drift = "n/a" if last == first else "inf"
        print(f"{name:<{width}}  {first:>14}  {last:>14}  {drift:>9}  {note}")

    # The gate compares the two *newest* runs, so one old outlier can't
    # permanently trip it.
    if args.gate > 0:
        prev_m = docs[-2][1].get("measured", {})
        last_m = docs[-1][1].get("measured", {})
        tripped = []
        for name in sorted(set(prev_m) & set(last_m)):
            if is_wall_metric(name):
                continue
            a, b = prev_m[name], last_m[name]
            if a and abs(100.0 * (b - a) / abs(a)) > args.gate:
                tripped.append((name, a, b))
        if tripped:
            print(f"\ntrend gate FAILED (> {args.gate:g}% between "
                  f"{docs[-2][0]} and {docs[-1][0]}):", file=sys.stderr)
            for name, a, b in tripped:
                pct = 100.0 * (b - a) / abs(a)
                print(f"  - {name}: {a} -> {b} ({pct:+.1f}%)",
                      file=sys.stderr)
            return 1
        print(f"\ntrend gate passed (no deterministic metric moved "
              f"> {args.gate:g}% in the newest run)")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "runs", nargs="*", metavar="RUN",
        help="two runs to diff pairwise (artifact JSON or directory)",
    )
    parser.add_argument(
        "--trend", metavar="DIR",
        help="trend mode over a check_budget.py --history ledger",
    )
    parser.add_argument("--top", type=int, default=10,
                        help="top regressed handlers to rank")
    parser.add_argument("--limit", type=int, default=20,
                        help="changed keys to print per section")
    parser.add_argument("--json", action="store_true",
                        help="emit the repro.diff/1 JSON instead of text")
    parser.add_argument("-o", "--output",
                        help="write the JSON report to this path")
    parser.add_argument("--fail-on-delta", action="store_true",
                        help="pairwise: exit 1 unless zero-delta")
    parser.add_argument("--gate", type=float, default=0.0, metavar="PCT",
                        help="trend: fail when a deterministic metric "
                        "moved more than PCT%% between the newest runs")
    args = parser.parse_args(argv)
    if args.trend:
        if args.runs:
            parser.error("--trend takes no positional runs")
        return cmd_trend(args)
    if len(args.runs) != 2:
        parser.error("pairwise mode needs exactly two runs (or use --trend)")
    try:
        return cmd_pairwise(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
