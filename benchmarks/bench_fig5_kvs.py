"""Fig 5 -- the in-network KVS cache vs a host-only deployment.

NetCache's evaluation shape, regenerated on our substrate: sweep the
workload skew and report hit ratio, server load, and GET latency for the
cached and uncached systems. Expected shape:

* hit latency ~= client<->ToR RTT; miss latency adds the server RTT and
  service time (several x higher);
* server load drops with skew once the hot set is cached;
* with no skew (uniform keys over a large keyspace) the cache barely
  helps -- the crossover the paper's motivation relies on.
"""


from repro.apps.kvs_cache import KvsCluster
from repro.apps.workloads import zipf_keys
from repro.baselines.host_kvs import HostOnlyKvs

from benchmarks._util import maybe_artifact, print_table, record_once

N_KEYS = 256
CACHE = 24
OPS = 200


def cached_run(skew: float):
    from collections import Counter

    keys = zipf_keys(OPS, N_KEYS, skew, seed=13)
    # With REPRO_ARTIFACT set, the cluster runs a program round-tripped
    # through the repro.nclc/1 artifact instead of the in-process one.
    program = maybe_artifact(
        KvsCluster.compile_program(n_clients=1, cache_size=CACHE, val_words=4),
        "fig5_kvs",
    )
    kvs = KvsCluster(
        n_clients=1, cache_size=CACHE, val_words=4, n_keys=N_KEYS, program=program
    )
    hot = [k for k, _ in Counter(keys).most_common(CACHE)]
    kvs.install_hot_keys(hot)
    kvs.run_workload(0, keys)
    return kvs, keys


def test_fig5_skew_sweep(benchmark):
    rows = []
    shapes = {}

    def sweep():
        for skew in (0.0, 0.6, 0.9, 1.2):
            kvs, keys = cached_run(skew)
            base = HostOnlyKvs(n_clients=1, val_words=4, n_keys=N_KEYS)
            base.run_workload(0, keys)
            hit_lat = kvs.mean_latency("GET", cache_only=True)
            miss_lat = kvs.mean_latency("GET", cache_only=False)
            rows.append(
                [
                    skew,
                    f"{kvs.hit_ratio():.1%}",
                    kvs.server_ops,
                    base.server_ops,
                    f"{hit_lat * 1e6:.1f}" if hit_lat else "-",
                    f"{miss_lat * 1e6:.1f}" if miss_lat else "-",
                    f"{base.mean_latency() * 1e6:.1f}",
                ]
            )
            shapes[skew] = kvs.hit_ratio()

    record_once(benchmark, sweep)
    print_table(
        f"Fig 5: KVS cache vs no cache ({OPS} GETs, {N_KEYS} keys, cache={CACHE})",
        [
            "zipf skew",
            "hit ratio",
            "server ops (cached)",
            "server ops (none)",
            "hit us",
            "miss us",
            "no-cache us",
        ],
        rows,
    )
    # Shape: hit ratio grows with skew; server load strictly below baseline.
    assert shapes[1.2] > shapes[0.0]


def test_fig5_latency_split(benchmark):
    """Hit latency must sit near the client<->switch RTT, far below the
    server path -- the NetCache headline."""

    def run():
        kvs = KvsCluster(n_clients=1, cache_size=8, val_words=4, n_keys=64)
        kvs.install_hot_keys([0, 1, 2, 3])
        for key in (0, 1, 2, 3, 40, 41, 42, 43):
            kvs.get(0, key)
            kvs.run()
        return kvs

    kvs = record_once(benchmark, run)
    hit = kvs.mean_latency("GET", cache_only=True)
    miss = kvs.mean_latency("GET", cache_only=False)
    print(f"\nhit latency  : {hit * 1e6:.1f} us")
    print(f"miss latency : {miss * 1e6:.1f} us  ({miss / hit:.1f}x)")
    assert miss > 3 * hit


def test_fig5_get_path_throughput(benchmark):
    """Microbenchmark: sustained GET processing through the full stack
    (client runtime -> wire -> PISA pipeline -> reflect -> client)."""
    kvs = KvsCluster(n_clients=1, cache_size=8, val_words=4, n_keys=64)
    kvs.install_hot_keys(list(range(8)))

    counter = [0]

    def burst():
        base = counter[0]
        for i in range(32):
            kvs.get(0, (base + i) % 8)
        kvs.run()
        counter[0] += 32

    benchmark(burst)
    assert kvs.hit_ratio() == 1.0
