"""Fig 4 -- in-network AllReduce vs host-only baselines.

The headline experiment: synchronous AllReduce on a star topology,
in-network aggregation vs a parameter server vs ring all-reduce, sweeping
the worker count and the array size. Expected *shape* (from SwitchML/ATP
and bandwidth arithmetic; the paper has no numbers of its own):

* INC sends each gradient over each worker link exactly twice (up +
  broadcast) -- completion time roughly flat in n for fixed per-worker
  data;
* the parameter server funnels 2*n*size bytes through one link --
  completion degrades linearly in n;
* ring is bandwidth-optimal but needs 2(n-1) serialized steps -- it
  loses to INC on latency, and the INC/ring gap widens with n.
"""


from repro.apps.allreduce import AllReduceJob
from repro.apps.workloads import random_arrays
from repro.baselines.host_allreduce import ParameterServerAllReduce, RingAllReduce

from benchmarks._util import (
    lineage_summary,
    maybe_artifact,
    maybe_obs,
    print_table,
    record_once,
    registry_snapshot,
    throughput_summary,
    write_trace,
)

WINDOW = 8


def one_round(n_workers: int, data_len: int, obs=None):
    arrays = random_arrays(n_workers, data_len, seed=n_workers)
    expected = AllReduceJob.expected(arrays)

    # With REPRO_ARTIFACT set, the job runs a program round-tripped
    # through the repro.nclc/1 artifact instead of the in-process one.
    program = maybe_artifact(
        AllReduceJob.compile_program(n_workers, data_len, WINDOW),
        f"fig4_allreduce_w{n_workers}",
    )
    inc = AllReduceJob(n_workers, data_len, WINDOW, obs=obs, program=program)
    if obs is not None and obs.sampler is not None:
        from repro.obs import attach_cluster_probes, attach_network_probes

        attach_network_probes(obs.sampler, inc.cluster.network)
        attach_cluster_probes(obs.sampler, inc.cluster)
    inc_res, inc_t = inc.run_round(arrays)
    assert inc_res[0] == expected

    ps = ParameterServerAllReduce(n_workers, data_len, WINDOW)
    ps_res, ps_t = ps.run(arrays)
    assert ps_res[0] == expected

    ring_len = data_len
    if ring_len % (n_workers * WINDOW):
        ring_len = (data_len // (n_workers * WINDOW) + 1) * n_workers * WINDOW
    ring = RingAllReduce(n_workers, ring_len, WINDOW)
    ring_res, ring_t = ring.run(random_arrays(n_workers, ring_len, seed=n_workers))

    return inc, inc_t, ps_t, ring_t


def test_fig4_worker_scaling(benchmark):
    rows = []
    metrics = {}
    lineage = {}

    def sweep():
        for n in (2, 4, 8):
            obs = maybe_obs()
            inc, inc_t, ps_t, ring_t = one_round(n, 512, obs=obs)
            # Per-layer breakdown into the results JSON; full packet
            # trace + lineage to $REPRO_TRACE when tracing is on.
            metrics[f"workers={n}"] = registry_snapshot(inc.cluster.network, obs)
            summary = lineage_summary(obs)
            if summary is not None:
                lineage[f"workers={n}"] = summary
            if obs is not None and obs.sampler is not None:
                obs.sampler.finish(inc.cluster.now())
            write_trace(obs, f"fig4_allreduce_w{n}")
            rows.append(
                [
                    n,
                    f"{inc_t * 1e6:.1f}",
                    f"{ps_t * 1e6:.1f}",
                    f"{ring_t * 1e6:.1f}",
                    f"{ps_t / inc_t:.2f}x",
                    f"{ring_t / inc_t:.2f}x",
                ]
            )

    record_once(benchmark, sweep)
    benchmark.extra_info["metrics"] = metrics
    if lineage:
        benchmark.extra_info["lineage"] = lineage
    print_table(
        "Fig 4: AllReduce completion time vs workers (512 int32)",
        ["workers", "INC us", "PS us", "ring us", "INC vs PS", "INC vs ring"],
        rows,
    )
    # Shape assertions: INC wins everywhere; the PS gap grows with n.
    gaps = [float(r[4][:-1]) for r in rows]
    assert all(g > 1.0 for g in gaps)
    assert gaps[-1] > gaps[0]


def test_fig4_data_scaling(benchmark):
    rows = []

    def sweep():
        for data_len in (128, 512, 2048):
            _, inc_t, ps_t, ring_t = one_round(4, data_len)
            rows.append(
                [
                    data_len,
                    f"{inc_t * 1e6:.1f}",
                    f"{ps_t * 1e6:.1f}",
                    f"{ring_t * 1e6:.1f}",
                ]
            )

    record_once(benchmark, sweep)
    print_table(
        "Fig 4: AllReduce completion time vs gradient size (4 workers)",
        ["int32 elems", "INC us", "PS us", "ring us"],
        rows,
    )


def test_fig4_link_bytes_accounting(benchmark):
    """INC's bandwidth win, measured at the links rather than the clock."""
    rows = []

    def sweep():
        for n in (2, 4, 8):
            data_len = 512
            arrays = random_arrays(n, data_len, seed=1)
            inc = AllReduceJob(n, data_len, WINDOW)
            inc.run_round(arrays)
            inc_bytes = inc.cluster.network.total_bytes_on_links()

            ps = ParameterServerAllReduce(n, data_len, WINDOW)
            ps.run(arrays)
            ps_bytes = ps.net.total_bytes_on_links()
            ps_bottleneck = max(lk.stats.bytes for lk in ps.net.links)
            inc_bottleneck = max(lk.stats.bytes for lk in inc.cluster.network.links)
            rows.append(
                [n, inc_bytes, ps_bytes, inc_bottleneck, ps_bottleneck]
            )

    record_once(benchmark, sweep)
    print_table(
        "Fig 4: bytes on the wire (512 int32)",
        ["workers", "INC total", "PS total", "INC max/link", "PS max/link"],
        rows,
    )
    # The PS bottleneck link grows ~linearly with n; INC's per-link load
    # stays flat.
    assert rows[-1][4] > rows[0][4] * 2
    assert rows[-1][3] <= rows[0][3] * 2


def test_fig4_single_round_latency(benchmark):
    """pytest-benchmark micro view: one INC round, wall-clock (simulator
    execution cost, not simulated time)."""
    job = AllReduceJob(4, 256, WINDOW)
    arrays = random_arrays(4, 256, seed=3)

    def run():
        results, _ = job.run_round(arrays)
        return results

    results = benchmark(run)
    # The timing loop above runs untraced (disabled fast path); the
    # registry snapshot is collected post-hoc from the component stats.
    benchmark.extra_info["metrics"] = registry_snapshot(job.cluster.network)
    assert results[0] == AllReduceJob.expected(arrays)

    # One profiled round for the throughput meters: events/sec and
    # packets/sec land in the results JSON (and the budget gate keeps
    # loose floors on them via check_budget.py).
    from repro.obs import Observability, Profiler

    profiler = Profiler()
    job_prof = AllReduceJob(4, 256, WINDOW, obs=Observability(profiler=profiler))
    prof_results, _ = job_prof.run_round(arrays)
    assert prof_results[0] == AllReduceJob.expected(arrays)
    benchmark.extra_info["throughput"] = throughput_summary(profiler)

    # One sampled + streamed round for the observer-overhead meters:
    # nothing retained in memory, the trace sampled at 10% and streamed
    # to sharded JSONL. The resulting self-accounting (events recorded /
    # sampled out / bytes written / peak resident) is deterministic and
    # budget-gated (fig4_allreduce_obs.* in budgets.json).
    import tempfile
    from pathlib import Path

    from repro.obs import JsonlSink, Tracer, TraceSampler

    from benchmarks._util import obs_summary

    with tempfile.TemporaryDirectory() as tmp:
        tracer = Tracer(
            sampler=TraceSampler(rate=0.1, max_pending=256), retain=False
        )
        tracer.add_stream(
            JsonlSink(str(Path(tmp) / "fig4.trace.jsonl"), shard_events=2000)
        )
        obs = Observability(tracer=tracer)
        job_obs = AllReduceJob(4, 256, WINDOW, obs=obs)
        obs_results, _ = job_obs.run_round(arrays)
        assert obs_results[0] == AllReduceJob.expected(arrays)
        tracer.close()
        benchmark.extra_info["obs"] = obs_summary(obs)
