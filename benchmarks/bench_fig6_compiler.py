"""Fig 6 -- the nclc compilation trajectory.

Regenerates the figure as measurements: per-stage timing through the
dual pipeline (frontend, IR gen, conformance, versioning, device-side
optimization, codegen + backend), the optimization work each pass did,
code expansion (NCL source -> generated P4), and the backend's
accept/reject behaviour across chip profiles.
"""


from repro.apps.allreduce import ALLREDUCE_NCL, star_and
from repro.apps.kvs_cache import KVS_NCL, kvs_and
from repro.errors import BackendRejection, ConformanceError
from repro.nclc import Compiler, WindowConfig

from benchmarks._util import loc, print_table, record_once


def compile_allreduce(profile=None, window=4, split_arrays="auto"):
    return Compiler(profile=profile, split_arrays=split_arrays).compile(
        ALLREDUCE_NCL,
        and_text=star_and(2),
        windows={"allreduce": WindowConfig(mask=(window,), ext={"len": window})},
        defines={"DATA_LEN": 64 * window // 4, "WIN_LEN": window},
    )


def compile_kvs(profile=None):
    return Compiler(profile=profile).compile(
        KVS_NCL,
        and_text=kvs_and(2),
        windows={"query": WindowConfig(mask=(1, 8, 1))},
        defines={"CACHE_SIZE": 128, "VAL_WORDS": 8, "SERVER": 2},
    )


def test_fig6_stage_times(benchmark):
    program = benchmark(compile_allreduce)
    rows = [
        [stage, f"{seconds * 1e3:.2f}"]
        for stage, seconds in program.stage_times.items()
    ]
    print_table("Fig 6: nclc stage times (AllReduce)", ["stage", "ms"], rows)
    assert set(program.stage_times) >= {
        "frontend",
        "irgen",
        "conformance",
        "versioning",
        "switch-opt",
        "codegen+backend",
    }


def test_fig6_pass_statistics(benchmark):
    program = record_once(benchmark, compile_kvs)
    # host pipeline runs first (SSA etc.); the per-switch pipeline then
    # specializes/unrolls the already-SSA kernels.
    merged = dict(program.stats["host"].counters)
    for name, count in program.stats["s1"].counters.items():
        merged[name] = merged.get(name, 0) + count
    rows = sorted(merged.items())
    print_table("Fig 6: optimization pass work (KVS kernel)", ["pass", "changes"], rows)
    assert merged.get("mem2reg", 0) > 0
    assert merged.get("gvn", 0) > 0  # the three Idx[key] lookups collapse


def test_fig6_code_expansion(benchmark):
    rows = []

    def sweep():
        for name, program, source in (
            ("allreduce", compile_allreduce(), ALLREDUCE_NCL),
            ("kvs", compile_kvs(), KVS_NCL),
        ):
            p4 = program.switch_sources["s1"]
            report = program.reports["s1"]
            rows.append(
                [
                    name,
                    loc(source),
                    loc(p4),
                    f"{loc(p4) / loc(source):.1f}x",
                    report.stages,
                    report.phv_bits,
                ]
            )

    record_once(benchmark, sweep)
    print_table(
        "Fig 6: NCL source vs generated P4",
        ["program", "NCL LoC", "P4 LoC", "expansion", "stages", "PHV bits"],
        rows,
    )
    assert all(float(r[3][:-1]) > 3 for r in rows)


def test_fig6_backend_accept_reject(benchmark):
    """The trajectory's final arrow: the same program is accepted by the
    software profile and rejected (with feedback) by the hardware one."""
    rows = []

    def sweep():
        for window, profile, split in (
            (4, "bmv2", "auto"),
            (4, "tofino-like", False),   # no arch transform: rejected
            (4, "tofino-like", "auto"),  # register splitting: accepted
        ):
            try:
                program = compile_allreduce(
                    profile=profile, window=window, split_arrays=split
                )
                verdict = "accept"
                splits = program.split_info.get("s1", [])
                detail = f"{program.reports['s1'].stages} stages" + (
                    f", split {[s.name for s in splits]}" if splits else ""
                )
            except BackendRejection as exc:
                verdict = "reject"
                detail = exc.reasons[0][:60]
            rows.append([f"win={window} split={split}", profile, verdict, detail])

    record_once(benchmark, sweep)
    print_table(
        "Fig 6: backend accept/reject by profile",
        ["config", "profile", "verdict", "detail"],
        rows,
    )
    assert rows[0][2] == "accept"
    assert rows[1][2] == "reject"
    assert rows[2][2] == "accept"


def test_fig6_conformance_rejections(benchmark):
    """Stage 1 in action: programs the data plane cannot express are
    rejected before any code is generated."""
    cases = [
        (
            "data-dependent loop",
            "_net_ _out_ void k(unsigned *d) {"
            " for (unsigned i = 0; i < d[0]; ++i) d[1] += 1; }",
        ),
        (
            "recursion",
            "int f(int x) { return f(x - 1); }\n"
            "_net_ _out_ void k(int *d) { d[0] = f(d[0]); }",
        ),
        (
            "dynamic division",
            "_net_ _out_ void k(int *d) { d[0] = d[0] / d[1]; }",
        ),
    ]
    rows = []

    def sweep():
        for name, source in cases:
            try:
                Compiler().compile(source, windows={"k": WindowConfig(mask=(4,))})
                rows.append([name, "ACCEPTED (bug!)"])
            except ConformanceError as exc:
                rows.append([name, str(exc)[:70]])

    record_once(benchmark, sweep)
    print_table("Fig 6: conformance-stage rejections", ["program", "diagnostic"], rows)
    assert all("bug" not in r[1] for r in rows)
