"""S2 motivation, quantified -- "Complex programming semantics" and
"Tedious network plumbing".

Counts what a programmer must write and maintain for the same
application, three ways:

* the NCL kernel (compute only -- no parser, no tables, no plumbing);
* the generated P4 (what the compiler writes *for* them);
* the hand-written P4 baseline (what they write today, Fig 1b style).

Also counts the networking *constructs* (parser states, tables, actions,
metadata fields) the NCL programmer never sees.
"""


from repro.apps.allreduce import ALLREDUCE_NCL, star_and
from repro.apps.kvs_cache import KVS_NCL, kvs_and
from repro.baselines.p4_netcache import build_netcache_program, handwritten_p4_source
from repro.nclc import Compiler, WindowConfig

from benchmarks._util import loc, print_table, record_once


def test_motivation_loc_and_constructs(benchmark):
    rows = []

    def sweep():
        kvs = Compiler().compile(
            KVS_NCL,
            and_text=kvs_and(1),
            windows={"query": WindowConfig(mask=(1, 8, 1))},
            defines={"CACHE_SIZE": 256, "VAL_WORDS": 8, "SERVER": 1},
        )
        gen = kvs.switch_programs["s1"]
        hand = build_netcache_program(256, 8)
        rows.append(
            ["NCL (Fig 5)", loc(KVS_NCL), 0, 0, 0, "compiler"]
        )
        rows.append(
            [
                "generated P4",
                loc(kvs.switch_sources["s1"]),
                len(gen.parser),
                len(gen.tables),
                len(gen.actions),
                "compiler",
            ]
        )
        rows.append(
            [
                "hand P4 (Fig 1b)",
                loc(handwritten_p4_source(256, 8)),
                len(hand.parser),
                len(hand.tables),
                len(hand.actions),
                "programmer",
            ]
        )

    record_once(benchmark, sweep)
    print_table(
        "S2: programmer-visible artifact for the KVS cache",
        ["artifact", "LoC", "parser states", "tables", "actions", "maintained by"],
        rows,
    )
    ncl_loc = rows[0][1]
    hand_loc = rows[2][1]
    assert hand_loc > 10 * ncl_loc


def test_motivation_allreduce_loc(benchmark):
    def compile_it():
        return Compiler().compile(
            ALLREDUCE_NCL,
            and_text=star_and(4),
            windows={"allreduce": WindowConfig(mask=(8,), ext={"len": 8})},
            defines={"DATA_LEN": 512, "WIN_LEN": 8},
        )

    program = record_once(benchmark, compile_it)
    gen_loc = loc(program.switch_sources["s1"])
    src_loc = loc(ALLREDUCE_NCL)
    print(
        f"\nAllReduce: {src_loc} NCL lines -> {gen_loc} generated P4 lines "
        f"({gen_loc / src_loc:.1f}x written by the compiler)"
    )
    assert gen_loc > 3 * src_loc
