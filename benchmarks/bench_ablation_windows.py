"""S6 ablations -- the design choices DESIGN.md calls out.

1. **Window length vs switch resources**: the prototype pins one window
   per packet; growing the window amortizes headers but eats PHV bits
   and register accesses -- until the hardware-flavoured backend rejects
   the program. This is the paper's "windows that fit a packet" scoping
   decision, measured.
2. **Unroll factor vs pipeline cost**: the same kernel compiled at
   several window specializations, reporting stages/PHV/actions.
3. **ToR broadcast degree**: `_bcast()` fan-out work on the switch as
   the overlay degree grows.
"""


from repro.apps.allreduce import ALLREDUCE_MULTIROUND_NCL, AllReduceJob, star_and
from repro.apps.workloads import random_arrays
from repro.errors import BackendRejection
from repro.nclc import Compiler, WindowConfig

from benchmarks._util import print_table, record_once


def compile_window(window: int, profile: str = "bmv2", split_arrays="auto"):
    return Compiler(profile=profile, split_arrays=split_arrays).compile(
        ALLREDUCE_MULTIROUND_NCL,
        and_text=star_and(2),
        windows={"allreduce": WindowConfig(mask=(window,), ext={"len": window})},
        defines={"DATA_LEN": 32 * window, "WIN_LEN": window},
    )


def test_ablation_window_length_vs_resources(benchmark):
    rows = []

    def sweep():
        for window in (1, 2, 4, 8, 16):
            program = compile_window(window)
            report = program.reports["s1"]
            try:
                compile_window(window, "tofino-like", split_arrays=False)
                raw = "accept"
            except BackendRejection:
                raw = "reject"
            try:
                split_prog = compile_window(window, "tofino-like", split_arrays="auto")
                fixed = "accept" + (
                    f" (split x{split_prog.split_info['s1'][0].stride})"
                    if split_prog.split_info.get("s1")
                    else ""
                )
            except BackendRejection as exc:
                fixed = f"reject ({len(exc.reasons)})"
            rows.append(
                [window, report.stages, report.phv_bits,
                 report.max_register_accesses.get("reg_accum", 0), raw, fixed]
            )

    record_once(benchmark, sweep)
    print_table(
        "S6 ablation: window length vs switch resources (AllReduce)",
        ["window", "stages", "PHV bits", "accum acc/pkt",
         "tofino (no split)", "tofino (auto split)"],
        rows,
    )
    # PHV/register pressure grow with the window; without the arch
    # transform, hardware rejects every window > 1; splitting restores
    # acceptance until the PHV itself runs out (window 16 carries 16
    # 32-bit elements + metadata past the 4 Kb budget) -- each wall is a
    # real one the paper's S6 anticipates.
    assert rows[-1][2] > rows[0][2]
    assert all(r[4] == "reject" for r in rows if r[0] > 1)
    assert all(str(r[5]).startswith("accept") for r in rows if r[0] <= 8)


def test_ablation_window_length_vs_completion(benchmark):
    rows = []

    def sweep():
        for window in (1, 4, 16):
            job = AllReduceJob(4, 256, window)
            arrays = random_arrays(4, 256, seed=0)
            _, elapsed = job.run_round(arrays)
            wire = job.cluster.network.total_bytes_on_links()
            rows.append([window, 256 // window, f"{elapsed * 1e6:.1f}", wire])

    record_once(benchmark, sweep)
    print_table(
        "S6 ablation: window length vs completion (4 workers, 256 int32)",
        ["window", "windows sent", "time us", "wire bytes"],
        rows,
    )
    # Bigger windows -> fewer packets -> fewer bytes and less time.
    assert rows[0][3] > rows[-1][3]


def test_ablation_multipacket_windows(benchmark):
    """S6 future work, measured: windows above the MTU cross the network
    in fragments. Fragmentation recovers header amortization for big
    windows -- but the switch cannot execute kernels on fragments, so
    in-network compute is forfeited for them (the trade-off the paper's
    prototype scoping acknowledges)."""
    from repro.nclc import Compiler, WindowConfig
    from repro.runtime import Cluster

    SRC = """
    _net_ _at_("s1") unsigned executed[1] = {0};
    _net_ _out_ void ship(int *d) { executed[0] += 1; }
    _net_ _in_ void land(int *d, _ext_ int *out, _ext_ unsigned *n) {
      n[0] += 1;
    }
    """
    AND = "host a\nhost b\nswitch s1\nlink a s1\nlink s1 b"
    rows = []

    def sweep():
        for window_elems, mtu in ((16, None), (64, None), (64, 256), (256, 256)):
            program = Compiler().compile(
                SRC,
                and_text=AND,
                windows={"ship": WindowConfig(mask=(window_elems,))},
            )
            cluster = Cluster.from_program(program)
            sender = cluster.hosts["a"]
            sender.mtu = mtu
            out, n = [0] * 4, [0]
            cluster.hosts["b"].register_in("land", [out, n])
            total_elems = 1024
            sender.out("ship", [list(range(total_elems))], dst="b")
            cluster.run()
            executed = cluster.controller.register_dump("executed")[0]
            frames = cluster.network.links[0].stats.frames
            wire = cluster.network.total_bytes_on_links()
            rows.append(
                [
                    window_elems,
                    mtu or "-",
                    frames,
                    wire,
                    n[0],
                    executed,
                ]
            )

    record_once(benchmark, sweep)
    print_table(
        "S6 ablation: one window per packet vs multi-packet windows (1024 int32)",
        ["window elems", "MTU", "frames (uplink)", "wire bytes",
         "windows recvd", "kernel runs"],
        rows,
    )
    # Fragmented big windows deliver, but the switch executed nothing.
    fragmented = [r for r in rows if r[1] != "-" and r[0] * 4 > r[1]]
    assert all(r[5] == 0 for r in fragmented)
    whole = [r for r in rows if r[1] == "-"]
    assert all(r[5] == r[4] for r in whole)


def test_ablation_broadcast_degree(benchmark):
    rows = []

    def sweep():
        for n in (2, 4, 8, 16):
            job = AllReduceJob(n, 64, 8)
            arrays = random_arrays(n, 64, seed=n)
            _, elapsed = job.run_round(arrays)
            sw = job.cluster.switches["s1"]
            rows.append(
                [n, sw.stats.tx_frames, sw.stats.rx_frames, f"{elapsed * 1e6:.1f}"]
            )

    record_once(benchmark, sweep)
    print_table(
        "S6 ablation: _bcast() fan-out at the ToR",
        ["workers", "switch tx frames", "switch rx frames", "time us"],
        rows,
    )
    # rx grows with n (one stream per worker); tx = windows * n fan-out.
    assert rows[-1][2] > rows[0][2]
