"""Fig 2 -- C3 windowed communication.

Regenerates the figure's scenario as a measured experiment: two arrays
split into windows under a mask (Fig 2 uses {2,2}), carried over NCP
through an on-path kernel, reassembled at the receiver. Sweeps the mask
geometry and reports the framing efficiency (header bytes vs payload
bytes per window), plus codec throughput for pytest-benchmark.
"""


from repro.nclc import Compiler, WindowConfig
from repro.ncp.window import Windower
from repro.ncp.wire import ChunkLayout, KernelLayout, decode_frame, encode_frame
from repro.runtime import Cluster

from benchmarks._util import print_table, record_once

PAIRWISE_NCL = r"""
// Fig 2's on-path computation: combine two arrays element-wise on the
// switch while they travel from Host-A to Host-B.
_net_ _at_("s1") unsigned touched[1] = {0};

_net_ _out_ void combine(int *h0, int *h1) {
  touched[0] += 1;
  for (unsigned i = 0; i < WLEN; ++i)
    h0[i] = h0[i] + h1[i];
}

_net_ _in_ void recv(int *h0, int *h1, _ext_ int *out, _ext_ unsigned *n) {
  for (unsigned i = 0; i < WLEN; ++i)
    out[window.seq * WLEN + i] = h0[i];
  n[0] += 1;
}
"""

AND = """
host hostA
host hostB
switch s1
link hostA s1
link s1 hostB
"""


def run_transfer(window_len: int, array_len: int = 64):
    program = Compiler().compile(
        PAIRWISE_NCL,
        and_text=AND,
        windows={"combine": WindowConfig(mask=(window_len, window_len))},
        defines={"WLEN": window_len},
    )
    cluster = Cluster.from_program(program)
    h0 = list(range(array_len))
    h1 = [10_000 + i for i in range(array_len)]
    out = [0] * array_len
    count = [0]
    cluster.host("hostB").register_in("recv", [out, count])
    sent = cluster.host("hostA").out("combine", [h0, h1], dst="hostB")
    cluster.run()
    assert out == [a + b for a, b in zip(h0, h1)]
    assert count[0] == sent
    bytes_on_wire = cluster.network.total_bytes_on_links()
    return sent, bytes_on_wire, cluster.now()


def test_fig2_window_transfer_mask_sweep(benchmark):
    rows = []
    payload_per_elem = 8  # two int32 arrays

    def sweep():
        for wlen in (1, 2, 4, 8, 16):
            windows, wire_bytes, elapsed = run_transfer(wlen)
            payload = 64 * payload_per_elem
            rows.append(
                [
                    f"{{{wlen},{wlen}}}",
                    windows,
                    wire_bytes,
                    f"{payload / wire_bytes:.2f}",
                    f"{elapsed * 1e6:.1f}",
                ]
            )

    record_once(benchmark, sweep)
    print_table(
        "Fig 2: mask geometry vs framing efficiency (64+64 int32 transfer)",
        ["mask", "windows", "wire bytes", "goodput frac", "time (us)"],
        rows,
    )
    # Shape: larger windows amortize headers -> fewer wire bytes.
    assert int(rows[0][2]) > int(rows[-1][2])


def test_fig2_windower_roundtrip_throughput(benchmark):
    windower = Windower((2, 2))
    arrays = [list(range(4096)), list(range(4096))]

    def split_and_reassemble():
        windows = list(windower.split(arrays))
        return windower.reassemble(windows, [4096, 4096])

    rebuilt = benchmark(split_and_reassemble)
    assert rebuilt == arrays


def test_fig2_ncp_codec_throughput(benchmark):
    layout = KernelLayout(
        3, "xfer", [ChunkLayout("a", 8, 32, True), ChunkLayout("b", 8, 32, True)]
    )
    chunks = [list(range(8)), list(range(8, 16))]

    def codec():
        frame = encode_frame(layout, 0, 1, seq=4, chunks=chunks)
        return decode_frame(frame, {3: layout})

    decoded = benchmark(codec)
    assert decoded.chunks == chunks
