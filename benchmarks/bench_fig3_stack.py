"""Fig 3a/3b -- the NCL software stack and switch behaviour.

Fig 3b shows the per-packet decision a deployed switch makes: NCP
recognized -> execute the kernel; otherwise -> plain forwarding. This
bench measures both paths on the same compiled program and sweeps the
NCP share of a mixed traffic stream, demonstrating that the INC program
coexists with ordinary traffic (a core property of the template merge).
"""

import pytest

from repro.nclc import Compiler, WindowConfig
from repro.ncp.wire import (
    ETH_FIELDS,
    ETHERTYPE_IPV4,
    IP_PROTO_UDP,
    IPV4_FIELDS,
    UDP_FIELDS,
    encode_frame,
    node_ip,
)
from repro.pisa.switch_dev import PisaSwitch
from repro.util.bits import pack_fields

from benchmarks._util import print_table, record_once

COUNTER_NCL = r"""
_net_ _at_("s1") unsigned windows_seen[1] = {0};

_net_ _out_ void tally(unsigned *d) {
  windows_seen[0] += 1;
  d[0] = windows_seen[0];
}
"""


@pytest.fixture(scope="module")
def deployed_switch():
    program = Compiler().compile(
        COUNTER_NCL,
        windows={"tally": WindowConfig(mask=(1,))},
    )
    sw = PisaSwitch(program.switch_programs["s1"])
    for node in (0, 1, 2):
        sw.table_insert("ipv4_route", [node_ip(node)], "ipv4_forward", [node % 2])
    return program, sw


def plain_udp_frame(dst=2, dport=9999):
    eth = pack_fields(ETH_FIELDS, {"dst": 1, "src": 2, "ethertype": ETHERTYPE_IPV4})
    ipv4 = pack_fields(
        IPV4_FIELDS,
        {
            "version_ihl": 0x45,
            "total_len": 28,
            "ttl": 64,
            "proto": IP_PROTO_UDP,
            "src": node_ip(0),
            "dst": node_ip(dst),
        },
    )
    udp = pack_fields(UDP_FIELDS, {"sport": 1000, "dport": dport, "length": 8})
    return eth + ipv4 + udp


def test_fig3_ncp_path(benchmark, deployed_switch):
    program, sw = deployed_switch
    layout = program.layouts["tally"]
    frames = [
        encode_frame(layout, 0, 2, seq=i, chunks=[[0]]) for i in range(32)
    ]

    def run():
        for frame in frames:
            sw.process(frame)

    benchmark(run)
    assert sw.registers.read("reg_windows_seen", 0) > 0


def test_fig3_plain_forwarding_path(benchmark, deployed_switch):
    _, sw = deployed_switch
    frames = [plain_udp_frame() for _ in range(32)]
    before = sw.registers.read("reg_windows_seen", 0)

    def run():
        for frame in frames:
            assert sw.process(frame).verdict == "pass"

    benchmark(run)
    # plain traffic must NOT execute the kernel
    assert sw.registers.read("reg_windows_seen", 0) == before


def test_fig3_mixed_traffic_sweep(benchmark, deployed_switch):
    program, sw = deployed_switch
    layout = program.layouts["tally"]
    rows = []

    def sweep():
        import time

        for ncp_share in (0.0, 0.25, 0.5, 0.75, 1.0):
            n = 200
            n_ncp = int(n * ncp_share)
            frames = [
                encode_frame(layout, 0, 2, seq=i, chunks=[[0]])
                for i in range(n_ncp)
            ] + [plain_udp_frame() for _ in range(n - n_ncp)]
            before = sw.registers.read("reg_windows_seen", 0)
            t0 = time.perf_counter()
            for frame in frames:
                sw.process(frame)
            elapsed = time.perf_counter() - t0
            executed = sw.registers.read("reg_windows_seen", 0) - before
            assert executed == n_ncp  # exactly the NCP share ran the kernel
            rows.append(
                [f"{ncp_share:.0%}", n, executed, f"{n / elapsed:,.0f}"]
            )

    record_once(benchmark, sweep)
    print_table(
        "Fig 3b: NCP recognition on mixed traffic",
        ["NCP share", "frames", "kernel runs", "frames/s (sim CPU)"],
        rows,
    )
