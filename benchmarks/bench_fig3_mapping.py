"""Fig 3c -- mapping the AND overlay onto a physical network.

The paper assumes a placement mechanism (S3.2, citing Switches-for-HIRE)
that maps functional components to physical devices and populates
routing. This bench exercises ours: overlays of growing size mapped onto
leaf-spine-ish physical topologies, reporting feasibility and mapper
latency; plus a deployed-and-verified end-to-end check through a mapped
(non-1:1) topology.
"""

import time


from repro.andspec import PhysicalNet, map_overlay, parse_and
from repro.nclc import Compiler, WindowConfig
from repro.net.network import Network
from repro.runtime.cluster import Cluster

from benchmarks._util import print_table, record_once


def leaf_spine(n_leaves: int, n_hosts_per_leaf: int) -> PhysicalNet:
    phys = PhysicalNet()
    phys.add_switch("spine")
    for leaf in range(n_leaves):
        phys.add_switch(f"leaf{leaf}")
        phys.add_link(f"leaf{leaf}", "spine")
        for h in range(n_hosts_per_leaf):
            name = f"h{leaf}_{h}"
            phys.add_host(name)
            phys.add_link(name, f"leaf{leaf}")
    return phys


def star_overlay(n_hosts: int) -> str:
    lines = [f"host w{i}" for i in range(n_hosts)] + ["switch s1"]
    lines += [f"link w{i} s1" for i in range(n_hosts)]
    return "\n".join(lines)


def test_fig3c_mapping_sweep(benchmark):
    rows = []

    def sweep():
        for n_hosts, n_leaves in [(2, 2), (4, 2), (4, 4), (8, 4)]:
            overlay = parse_and(star_overlay(n_hosts))
            phys = leaf_spine(n_leaves, max(2, n_hosts // n_leaves + 1))
            t0 = time.perf_counter()
            mapping = map_overlay(overlay, phys)
            elapsed = (time.perf_counter() - t0) * 1e3
            rows.append(
                [
                    f"{n_hosts}h+1s",
                    f"{n_leaves} leaves",
                    mapping.placement["s1"],
                    f"{elapsed:.2f}",
                ]
            )

    record_once(benchmark, sweep)
    print_table(
        "Fig 3c: overlay -> physical placement",
        ["overlay", "physical", "switch placed at", "mapper ms"],
        rows,
    )


SIMPLE_NCL = r"""
_net_ _at_("s1") unsigned total[1] = {0};
_net_ _out_ void addup(unsigned *d) { total[0] += d[0]; d[0] = total[0]; }
_net_ _in_ void got(unsigned *d, _ext_ unsigned *out) { out[0] = d[0]; }
"""


def test_fig3c_mapped_deployment_end_to_end(benchmark):
    """Deploy the overlay onto a larger physical network (the Fig 3c
    picture: logical h1-s1-h2 riding on a multi-switch fabric) and verify
    in-network execution still happens at the mapped switch."""

    def run():
        program = Compiler().compile(
            SIMPLE_NCL,
            and_text="host src\nhost dst\nswitch s1\nlink src s1\nlink s1 dst",
            windows={"addup": WindowConfig(mask=(1,))},
        )
        net = Network()
        net.add_host("src")
        net.add_host("dst")
        net.add_host("bystander")
        from repro.pisa.switch_dev import PisaSwitch

        # physical fabric: two candidate PISA switches in a chain
        for name in ("p0", "p1"):
            net.add_pisa_switch(name, PisaSwitch(program.switch_programs["s1"], name))
        net.add_link("src", "p0")
        net.add_link("p0", "p1")
        net.add_link("p1", "dst")
        net.add_link("bystander", "p1")
        cluster = Cluster.deploy_mapped(program, net)
        out = [0]
        cluster.host("dst").register_in("got", [out])
        cluster.host("src").out("addup", [[41]], dst="dst")
        cluster.run()
        assert out[0] == 41
        mapped_to = cluster.mapping.placement["s1"]
        assert mapped_to in ("p0", "p1")
        return mapped_to

    placed = record_once(benchmark, run)
    print(f"\noverlay switch s1 placed on physical {placed}; window executed there.")
