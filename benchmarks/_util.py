"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` regenerates one of the paper's figures as an
executable artifact: it prints the series/rows the figure would plot
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
feeds the timing-sensitive kernel of the experiment to pytest-benchmark.
EXPERIMENTS.md records one captured run of every table.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    widths = [len(h) for h in headers]
    materialized = [[str(c) for c in row] for row in rows]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in materialized:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def record_once(benchmark, fn):
    """Run a whole-experiment sweep exactly once under pytest-benchmark.

    Figure-regeneration sweeps are experiments, not microbenchmarks:
    repeating them would mutate stateful clusters and waste minutes. One
    recorded round keeps them visible in ``--benchmark-only`` runs.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def loc(source: str) -> int:
    """Non-empty, non-comment lines of code."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith(("//", "#")):
            count += 1
    return count
