"""Shared helpers for the benchmark harness.

Each ``bench_fig*.py`` regenerates one of the paper's figures as an
executable artifact: it prints the series/rows the figure would plot
(run with ``pytest benchmarks/ --benchmark-only -s`` to see them) and
feeds the timing-sensitive kernel of the experiment to pytest-benchmark.
EXPERIMENTS.md records one captured run of every table.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Optional, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    widths = [len(h) for h in headers]
    materialized = [[str(c) for c in row] for row in rows]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in materialized:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def record_once(benchmark, fn):
    """Run a whole-experiment sweep exactly once under pytest-benchmark.

    Figure-regeneration sweeps are experiments, not microbenchmarks:
    repeating them would mutate stateful clusters and waste minutes. One
    recorded round keeps them visible in ``--benchmark-only`` runs.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def maybe_obs():
    """An enabled :class:`repro.obs.Observability` when any observability
    env toggle is set, else ``None`` -- the disabled fast path, so
    benchmark numbers with everything off are the real numbers.

    * ``REPRO_TRACE=<dir>`` -- trace the run; artifacts land in <dir>;
    * ``REPRO_INT`` -- in-band telemetry stamping; a numeric value sets
      the per-packet hop cap (default 8);
    * ``REPRO_PROFILE`` -- attach a wall-time :class:`~repro.obs.Profiler`;
    * ``REPRO_SAMPLE=<us>`` -- attach a virtual-clock
      :class:`~repro.obs.TimeSeriesSampler` at that bucket width;
    * ``REPRO_TRACE_SAMPLE=<rate>`` -- deterministic trace sampling at
      that window keep-rate (anomalous windows always kept in full);
    * ``REPRO_TRACE_SHARD=<n>`` -- write the trace JSONL as rolling
      shards of *n* events each (plus a manifest) instead of one file."""
    trace = os.environ.get("REPRO_TRACE")
    profile = os.environ.get("REPRO_PROFILE")
    sample = os.environ.get("REPRO_SAMPLE")
    if not (trace or profile or sample):
        return None
    from repro.obs import Observability

    int_cfg = None
    int_env = os.environ.get("REPRO_INT")
    if int_env:
        from repro.obs import IntConfig

        int_cfg = IntConfig(max_hops=int(int_env) if int_env.isdigit() else 8)
    profiler = sampler = tracer = None
    if profile:
        from repro.obs import Profiler

        profiler = Profiler()
    if sample:
        from repro.obs import TimeSeriesSampler

        sampler = TimeSeriesSampler(float(sample) * 1e-6)
    trace_rate = os.environ.get("REPRO_TRACE_SAMPLE")
    if trace_rate:
        from repro.obs import Tracer, TraceSampler

        tracer = Tracer(sampler=TraceSampler(rate=float(trace_rate)))
    return Observability(
        tracer=tracer, int_config=int_cfg, profiler=profiler, sampler=sampler
    )


def maybe_artifact(program, name: str):
    """Round-trip *program* through its ``repro.nclc/1`` artifact when
    ``REPRO_ARTIFACT`` is set, so the benchmark drives a precompiled
    program exactly the way a deployment loading artifacts would.

    ``REPRO_ARTIFACT=1`` round-trips in memory; any other value names a
    directory where ``<name>.nclc.json`` is saved and loaded back. Unset
    (the default) returns *program* untouched -- zero overhead."""
    mode = os.environ.get("REPRO_ARTIFACT")
    if not mode:
        return program
    from repro.nclc.driver import CompiledProgram

    if mode == "1":
        return CompiledProgram.from_json(program.to_json())
    outdir = Path(mode)
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{name}.nclc.json"
    program.save(path)
    return CompiledProgram.load(path)


def registry_snapshot(network, obs=None) -> dict:
    """A metrics-registry snapshot of *network*, whether or not the run
    was traced: the registry's collectors read the always-on component
    stats, so per-layer breakdowns ride in every results JSON."""
    if obs is not None:
        return obs.snapshot()
    from repro.obs import MetricsRegistry, collect_network_metrics

    registry = MetricsRegistry()
    collect_network_metrics(network, registry)
    return registry.snapshot()


def write_trace(obs, name: str) -> Optional[Path]:
    """Write the run's artifacts into $REPRO_TRACE: the Chrome trace
    JSON (for a viewer), the raw trace JSONL, and the lineage JSON --
    the latter two are what ``python -m repro.obs.query`` reads. When
    the run carried a profiler / sampler / alert engine, their
    ``repro.profile/1`` / ``repro.timeseries/1`` / ``repro.alerts/1``
    documents (and a collapsed-stack flamegraph input) ride along."""
    if obs is None:
        return None
    from repro.obs.lineage import LineageIndex

    # Finalize sampling first: windows still pending in the trace
    # sampler are resolved (kept if anomalous, dropped otherwise), so
    # the exported artifacts see the sampler's final verdicts.
    obs.tracer.close()
    outdir = Path(os.environ.get("REPRO_TRACE", "."))
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{name}.trace.json"
    with open(path, "w") as fp:
        obs.tracer.write_chrome(fp)
    shard = os.environ.get("REPRO_TRACE_SHARD")
    if shard:
        from repro.obs import JsonlSink

        sink = JsonlSink(
            str(outdir / f"{name}.trace.jsonl"), shard_events=int(shard)
        )
        for event in obs.tracer.events:
            sink.write(event)
        sink.close()
    else:
        with open(outdir / f"{name}.trace.jsonl", "w") as fp:
            obs.tracer.write_jsonl(fp)
    index = LineageIndex.from_events(obs.tracer.events)
    with open(outdir / f"{name}.lineage.json", "w") as fp:
        index.write_json(fp)
    extras = []
    if obs.profiler is not None:
        with open(outdir / f"{name}.profile.json", "w") as fp:
            obs.profiler.write_json(fp)
        with open(outdir / f"{name}.collapsed.txt", "w") as fp:
            obs.profiler.write_collapsed(fp)
        extras.append("+profile.json")
    if obs.sampler is not None:
        with open(outdir / f"{name}.timeseries.json", "w") as fp:
            obs.sampler.write_json(fp)
        extras.append("+timeseries.json")
    if obs.health is not None:
        with open(outdir / f"{name}.alerts.json", "w") as fp:
            obs.health.write_json(fp)
        extras.append("+alerts.json")
    extra = (" " + " ".join(extras)) if extras else ""
    print(f"[obs] wrote {path} (+.jsonl, +lineage.json{extra}; "
          f"{len(obs.tracer.events)} events, {len(index.windows)} windows)")
    return path


def throughput_summary(profiler) -> Optional[dict]:
    """The profiler's throughput meters for a results JSON. Wall-clock
    derived, so informational rather than budget-deterministic; the
    budget gate keeps only loose *floor* budgets on these."""
    if profiler is None:
        return None
    return {
        "events_per_sec": round(profiler.events_per_sec(), 1),
        "packets_per_sec": round(profiler.packets_per_sec(), 1),
        "attributed_fraction": round(profiler.attributed_fraction(), 4),
    }


def lineage_summary(obs) -> Optional[dict]:
    """Compact lineage counts for a results JSON: how many windows a
    traced run produced and how their attempts ended."""
    if obs is None:
        return None
    from repro.obs.lineage import LineageIndex

    index = LineageIndex.from_events(obs.tracer.events)
    delivered = dropped = retransmits = 0
    for window in index.windows.values():
        for branch in window.branches.values():
            for attempt in branch.attempts.values():
                if attempt.kind == "retransmit":
                    retransmits += 1
                outcome = attempt.outcome
                if outcome == "delivered":
                    delivered += 1
                elif outcome.startswith("drop:"):
                    dropped += 1
    return {
        "windows": len(index.windows),
        "attempts_delivered": delivered,
        "attempts_dropped": dropped,
        "retransmits": retransmits,
    }


def obs_summary(obs) -> Optional[dict]:
    """The tracer's self-accounting for a results JSON: what observing
    the run cost (events recorded vs sampled out, bytes streamed, peak
    events resident in memory). Deterministic -- the budget gate keeps
    ceilings on the memory/byte numbers."""
    if obs is None or obs.tracer is None:
        return None
    stats = obs.tracer.stats()
    return {
        "events_recorded": stats["events_recorded"],
        "events_sampled_out": stats["events_sampled_out"],
        "bytes_written": stats["bytes_written"],
        "peak_resident_events": stats["peak_resident_events"],
    }


def loc(source: str) -> int:
    """Non-empty, non-comment lines of code."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith(("//", "#")):
            count += 1
    return count
