#!/usr/bin/env python3
"""Datacenter-scale simulator benchmark: scheduler churn + k=8 fat-tree.

Two phases, both on the production ``repro.net`` code paths:

**Scheduler churn** -- the timing-wheel vs reference-heapq comparison.
A large resident population of self-rescheduling timers (timeout-style
delays spread over [10us, 5ms]) is driven to a fixed dispatch budget
under ``scheduler="heap"`` and ``scheduler="wheel"``; events/sec and
the wheel/heap speedup are reported.  The resident population is the
regime calendar queues are built for: the heap's O(log n) sift walks a
2M-record array while the wheel touches one bucket.

**Fat-tree packet push** -- 128 hosts on a k=8 fat-tree (80 switches,
384 links, ECMP routes) running closed-rate permutation traffic until
every host has injected its quota (>=1M packets total in the full run,
>=100k in ``--smoke``).  Reports virtual-time totals plus wall-clock
packets/sec and events/sec under the wheel scheduler.

Results are deterministic in virtual time (packet and event counts) and
wall-clock in throughput; ``check_budget.py`` gates the smoke metrics
(floors on throughput and the speedup, tolerances on the deterministic
counts).  Run standalone for the full numbers::

    python benchmarks/bench_sim_scale.py            # full (~1M packets)
    python benchmarks/bench_sim_scale.py --smoke    # CI-sized
    python benchmarks/bench_sim_scale.py --profile out.json  # flamegraph doc
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
from pathlib import Path
from time import perf_counter

REPO = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO / "src"))

# -- phase 1: scheduler churn -------------------------------------------------

#: timeout-style delays: 1024 deterministic values spread over [10us, 5ms]
_DELAYS = [
    1e-5 + ((i * 2654435761) % 4096) / 4096.0 * 5e-3 for i in range(1024)
]


def sched_churn(scheduler: str, resident: int, dispatches: int) -> float:
    """Events/sec for *scheduler* holding *resident* timers while
    *dispatches* of them re-arm (then draining the population)."""
    from repro.net.events import Simulator

    sim = Simulator(scheduler=scheduler)
    delays = _DELAYS
    state = {"left": dispatches, "i": 0}

    def fire() -> None:
        left = state["left"]
        if left > 0:
            state["left"] = left - 1
            i = state["i"]
            state["i"] = (i + 1) & 1023
            sim.schedule(delays[i], fire, label="churn")

    for i in range(resident):
        sim.schedule(delays[i & 1023], fire, label="churn")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = perf_counter()
        sim.run(max_events=100_000_000)
        wall = perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    return sim.events_processed / wall


# -- phase 2: fat-tree packet push --------------------------------------------


def fattree_push(
    packets_per_host: int,
    scheduler: str = "wheel",
    k: int = 8,
    delivery_quantum=None,
) -> dict:
    """Closed-rate permutation traffic on a k-ary fat-tree: every host
    paces one small NCP frame per interval at a rotating peer until its
    quota is injected.  Returns counts plus wall-clock throughput."""
    from repro.ncp.wire import ChunkLayout, KernelLayout, encode_frame
    from repro.net.events import Simulator
    from repro.net.network import Network
    from repro.net.topo import fat_tree

    topo = fat_tree(k)
    net = topo.build(
        net=Network(sim=Simulator(scheduler=scheduler)),
        delivery_quantum=delivery_quantum,
    )
    hosts = [net.host(h) for h in topo.hosts]
    n = len(hosts)
    layout = KernelLayout(1, "push", [ChunkLayout("x", 4, 32, False)])
    # One frame per destination, pre-encoded once -- the bench times the
    # simulator, not the codec.  The header dst is what the forwarding
    # tier routes on, so it must match the intended peer.
    frames = [
        encode_frame(layout, 0, host.node_id, 0, [[1, 2, 3, 4]])
        for host in hosts
    ]
    delivered = [0]

    def count(_data: bytes) -> None:
        delivered[0] += 1

    for host in hosts:
        host.receiver = count

    interval = 2e-6  # per-host injection rate: 500k pkt/s
    sim = net.sim

    def make_sender(i: int):
        host = hosts[i]
        state = {"left": packets_per_host, "peer": 0}

        def send() -> None:
            left = state["left"]
            if left <= 0:
                return
            state["left"] = left - 1
            peer = state["peer"]
            # rotating permutation partner, never self
            dst = (i + 1 + (peer * 7) % (n - 1)) % n
            if dst == i:
                dst = (dst + 1) % n
            state["peer"] = peer + 1
            host.transmit(frames[dst], hosts[dst].node_id)
            sim.schedule(interval, send, label="bench;inject")

        return send

    for i in range(n):
        # stagger start times so injectors do not all fire in lockstep
        sim.schedule(i * (interval / n), make_sender(i), label="bench;inject")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = perf_counter()
        sim.run(max_events=1_000_000_000)
        wall = perf_counter() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    injected = packets_per_host * n
    return {
        "hosts": n,
        "packets": injected,
        "delivered": delivered[0],
        "events": sim.events_processed,
        "virtual_s": sim.now(),
        "wall_s": wall,
        "packets_per_sec": injected / wall,
        "events_per_sec": sim.events_processed / wall,
        "link_frames": sum(link.stats.frames for link in net.links),
    }


# -- the budget-facing measurement -------------------------------------------

#: (resident timers, dispatch budget) per mode for the churn phase
CHURN_FULL = (2_000_000, 400_000)
CHURN_SMOKE = (400_000, 150_000)

#: per-host packet quota (x128 hosts): 1.024M packets full, 102.4k smoke
PACKETS_FULL = 8_000
PACKETS_SMOKE = 800


def measure_sim_scale(smoke: bool = True) -> dict:
    """The ``sim_scale.*`` metrics ``check_budget.py`` gates."""
    resident, dispatches = CHURN_SMOKE if smoke else CHURN_FULL
    heap_eps = sched_churn("heap", resident, dispatches)
    wheel_eps = sched_churn("wheel", resident, dispatches)
    push = fattree_push(PACKETS_SMOKE if smoke else PACKETS_FULL)
    assert push["delivered"] == push["packets"], (
        f"lost packets: {push['delivered']}/{push['packets']}"
    )
    return {
        "sim_scale.sched_events_per_sec_heap": round(heap_eps),
        "sim_scale.sched_events_per_sec_wheel": round(wheel_eps),
        "sim_scale.sched_speedup_x": round(wheel_eps / heap_eps, 2),
        "sim_scale.fattree_packets": push["packets"],
        "sim_scale.fattree_events": push["events"],
        "sim_scale.fattree_packets_per_sec": round(push["packets_per_sec"]),
        "sim_scale.fattree_events_per_sec": round(push["events_per_sec"]),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run (>=100k packets) instead of the full >=1M",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    parser.add_argument(
        "--quantum", type=float, metavar="SECONDS",
        help="also run the fat-tree push with NIC-style delivery "
        "coalescing at this quantum and report the event reduction",
    )
    parser.add_argument(
        "--profile", metavar="OUT.json",
        help="write a repro.profile/1 report of a profiled fat-tree "
        "push (feed to `repro-obs flame` / `repro-obs query diff`)",
    )
    args = parser.parse_args(argv)

    out = measure_sim_scale(smoke=args.smoke)
    if not args.json:
        resident, dispatches = CHURN_SMOKE if args.smoke else CHURN_FULL
        print(f"scheduler churn ({resident} resident, {dispatches} re-arms):")
        print(f"  heap : {out['sim_scale.sched_events_per_sec_heap']:>12,} ev/s")
        print(f"  wheel: {out['sim_scale.sched_events_per_sec_wheel']:>12,} ev/s")
        print(f"  speedup: {out['sim_scale.sched_speedup_x']}x")
        print(
            f"fat-tree k=8 push ({out['sim_scale.fattree_packets']:,} packets,"
            f" 128 hosts):"
        )
        print(f"  events : {out['sim_scale.fattree_events']:,}")
        print(f"  pkt/s  : {out['sim_scale.fattree_packets_per_sec']:>12,}")
        print(f"  ev/s   : {out['sim_scale.fattree_events_per_sec']:>12,}")
    else:
        print(json.dumps(out, indent=2, sort_keys=True))

    if args.quantum:
        quota = PACKETS_SMOKE if args.smoke else PACKETS_FULL
        exact = fattree_push(quota)
        batched = fattree_push(quota, delivery_quantum=args.quantum)
        print(
            f"delivery_quantum={args.quantum:g}: events "
            f"{exact['events']:,} -> {batched['events']:,} "
            f"({100 * (1 - batched['events'] / exact['events']):.1f}% fewer), "
            f"pkt/s {exact['packets_per_sec']:,.0f} -> "
            f"{batched['packets_per_sec']:,.0f}"
        )

    if args.profile:
        from repro.obs import Observability, Profiler
        from repro.ncp.wire import ChunkLayout, KernelLayout, encode_frame
        from repro.net.network import Network
        from repro.net.topo import fat_tree

        profiler = Profiler()
        topo = fat_tree(8)
        net = topo.build(obs=Observability(profiler=profiler))
        hosts = [net.host(h) for h in topo.hosts]
        for host in hosts:
            host.receiver = lambda _data: None
        layout = KernelLayout(1, "push", [ChunkLayout("x", 4, 32, False)])
        frames = [
            encode_frame(layout, 0, h.node_id, 0, [[1, 2, 3, 4]])
            for h in hosts
        ]
        for i, host in enumerate(hosts):
            for j in range(50):
                dst = (i + 1 + j) % len(hosts)
                host.transmit(frames[dst], hosts[dst].node_id)
        net.run()
        with open(args.profile, "w") as fp:
            json.dump(profiler.report(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        print(f"wrote profile report to {args.profile}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
