#!/usr/bin/env python3
"""Scale smoke test: a 100k+ packet run under bounded-memory tracing.

The point of the streaming/sampling layer is that the observer no
longer has to hold the run: this script pushes >=100k frames through a
lossy two-host deployment with full tracing on, the trace sampled at a
low deterministic rate and streamed to sharded JSONL, and then proves
the four properties the design owes us:

1. **bounded memory** -- peak resident trace events stay under a fixed
   ceiling (vs ~1 event per packet-hop unbounded);
2. **honest self-accounting** -- recorded == emitted + sampled out, and
   bytes_written matches what actually landed on disk;
3. **pre-sampling flight recorder** -- the crash ring saw every event;
4. **anomaly retention** -- every dropped window is fully
   reconstructable from the sharded trace alone (``query explain``
   works for any of them), at a sampling rate that keeps almost
   nothing else.

Exits non-zero (assertion) on any violation. Used by the CI
observability job; also runnable by hand::

    python benchmarks/obs_smoke.py [--windows 50000] [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO / "src"))

PROBE_SRC = (
    "_net_ unsigned seen[1] = {0};\n"
    "_net_ _out_ void probe(unsigned *d) { seen[0] += d[0]; }\n"
)

#: sampler bound on in-flight windows; the peak-resident ceiling below
#: is derived from it
MAX_PENDING = 1024

#: trace events per window on the h0 -> s1 -> h1 path (send, queue,
#: serialize x2 links, parser/table/action spans, int:stack, recv ...);
#: a loose upper bound used only to size the ceiling
EVENTS_PER_WINDOW = 24


def run_smoke(n_windows: int, out_dir: Path, rate: float = 0.001,
              loss: float = 0.001) -> dict:
    from repro.nclc import Compiler, WindowConfig
    from repro.obs import (
        FlightRecorder,
        JsonlSink,
        Observability,
        Tracer,
        TraceSampler,
    )
    from repro.obs.lineage import LineageIndex
    from repro.runtime import Cluster

    out_dir.mkdir(parents=True, exist_ok=True)
    program = Compiler().compile(
        PROBE_SRC, windows={"probe": WindowConfig(mask=(1,))}
    )

    sampler = TraceSampler(rate=rate, max_pending=MAX_PENDING)
    tracer = Tracer(sampler=sampler, retain=False)
    # Small shards on purpose: the lineage rebuild below then proves
    # the streaming readers walk a multi-shard manifest correctly.
    sink = JsonlSink(str(out_dir / "smoke.trace.jsonl"), shard_events=256)
    tracer.add_stream(sink)
    flight = FlightRecorder(capacity=256)
    obs = Observability(tracer=tracer, flight=flight)

    cluster = Cluster.from_program(program, loss=loss, obs=obs)
    h0 = cluster.host("h0")

    t0 = time.monotonic()
    batch = 2000
    sent = 0
    while sent < n_windows:
        n = min(batch, n_windows - sent)
        # Explicit seqs: Host.out() restarts its windower's numbering
        # on every call, and the smoke needs globally unique window
        # identities for the retention check.
        for seq in range(sent, sent + n):
            h0.out_window("probe", seq, [[seq % 4096]], "h1", last=True)
        cluster.run()
        sent += n
    tracer.close()
    wall = time.monotonic() - t0

    stats = tracer.stats()
    frames = 2 * n_windows  # h0->s1 and s1->h1 legs
    ceiling = MAX_PENDING * EVENTS_PER_WINDOW

    print(f"{n_windows} windows ({frames} frames) in {wall:.1f}s wall "
          f"({frames / wall:,.0f} frames/s traced)")
    print(json.dumps(stats, indent=2, sort_keys=True))

    # 1. bounded memory
    assert frames >= 100_000, f"smoke must push >=100k packets, got {frames}"
    peak = stats["peak_resident_events"]
    assert peak <= ceiling, (
        f"peak resident events {peak} above ceiling {ceiling} "
        f"(= {MAX_PENDING} pending windows x {EVENTS_PER_WINDOW})"
    )
    unbounded = stats["events_recorded"]
    print(f"peak resident {peak} <= ceiling {ceiling} "
          f"(unbounded would be {unbounded}: {unbounded / peak:.0f}x)")

    # 2. honest self-accounting
    assert stats["events_recorded"] == (
        stats["events_emitted"] + stats["events_sampled_out"]
    ), "recorded != emitted + sampled_out"
    disk_bytes = sum(p.stat().st_size for p in map(Path, sink.paths()))
    assert stats["bytes_written"] == disk_bytes, (
        f"self-accounted bytes {stats['bytes_written']} != on-disk {disk_bytes}"
    )
    print(f"bytes_written {disk_bytes} matches disk across "
          f"{len(sink.paths())} shards")

    # 3. the flight recorder rides the pre-sampling stream
    assert flight.events_seen == stats["events_recorded"], (
        "flight recorder missed pre-sampling events"
    )

    # 4. anomaly retention: every dropped window reconstructs from the
    # sharded trace alone
    index = LineageIndex.from_jsonl(str(out_dir / "smoke.trace.jsonl"))
    dropped = [
        (window, attempt)
        for window in index.windows.values()
        for branch in window.branches.values()
        for attempt in branch.attempts.values()
        if attempt.outcome.startswith("drop:")
        and attempt.outcome != "drop:switch"
    ]
    assert dropped, (
        f"no drops at loss={loss} over {n_windows} windows -- "
        "raise --windows or loss"
    )
    for window, _attempt in dropped:
        story = index.explain(window.kernel_id, window.seq)
        assert "drop" in story, (window.kernel_id, window.seq)
    print(f"all {len(dropped)} dropped windows fully reconstructable "
          f"from shards (sampling rate {rate})")
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--windows", type=int, default=50_000,
                        help="windows to push (frames = 2x this)")
    parser.add_argument("--out", default="obs-smoke-out",
                        help="artifact directory for shards + manifest")
    parser.add_argument("--rate", type=float, default=0.001,
                        help="head-sampling keep rate")
    parser.add_argument("--loss", type=float, default=0.001,
                        help="link loss probability")
    args = parser.parse_args(argv)
    run_smoke(args.windows, Path(args.out), rate=args.rate, loss=args.loss)
    print("obs smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
