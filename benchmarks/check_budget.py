#!/usr/bin/env python3
"""Performance-budget gate: deterministic bench metrics vs budgets.json.

Wall-clock benchmarks flake in CI; the simulator's own numbers do not.
This script runs a *fast subset* of the benchmark scenarios and compares
metrics that are *deterministic functions of the code* -- simulated
completion time, bytes on the wire, switch packets processed, simulator
events -- against the committed budgets in ``benchmarks/budgets.json``.
A regression that makes the protocol chattier, the switch path process
more packets, or completion time drift shows up here even though no
wall-clock is measured.

Each budget carries a tolerance (percent): intentional changes inside
the tolerance pass, anything outside fails the gate. After an
intentional change, regenerate with::

    python benchmarks/check_budget.py --update

Some metrics are *wall-clock throughput floors* rather than
deterministic two-sided budgets: the profiler's events/sec and
packets/sec on the standard AllReduce round, and the ``sim_scale.*``
datacenter smoke (scheduler churn events/sec for both schedulers, the
wheel/heap speedup ratio, and the k=8 fat-tree packet-push throughput).
They carry ``"kind": "floor"`` and pass when the measured value is at
or above the budget; ``--update`` sets each floor to a per-metric
fraction of the measured value (see ``FLOOR_METRICS``) -- a fifth for
raw throughputs (loose enough for noisy CI machines, tight enough to
catch an order-of-magnitude regression), 0.7 for the scheduler speedup
ratio, where same-machine noise cancels.

The whole-fabric deployment checker is gated the same way: one
``check-deploy`` pass over the 64-switch / 8-tenant bench fabric
(``benchmarks/bench_deploy_check.py``) must stay admissible with zero
diagnostics, and its wall time carries a generous ``"kind": "ceiling"``
budget (``deploy_check.wall_s``) so a super-linear slowdown in the
checks fails the gate without flaking on machine noise.

The observer's own overhead is gated too: a sampled + streamed round
measures ``fig4_allreduce_obs.*`` (events recorded / sampled out,
bytes written, peak resident events). The memory/byte numbers carry
``"kind": "ceiling"`` and pass when measured *at or below* the budget,
so observability-layer memory growth fails the gate the same way a
chattier protocol would.

``--history DIR`` keeps a run ledger: every invocation appends its
measured metrics and profile report to DIR, and when a throughput floor
fails, the gate diffs the current profile against the previous run's
(via ``repro.obs.diff``) and names the handlers whose wall time
regressed most -- the "what got slower" answer, not just "something".

Runs standalone (no pytest): ``python benchmarks/check_budget.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO / "src"))

BUDGETS_PATH = REPO / "benchmarks" / "budgets.json"
SCHEMA = "repro.budgets/1"
DEFAULT_TOLERANCE_PCT = 5.0

#: wall-clock throughput metrics get one-sided floor budgets; --update
#: sets floor = measured * fraction. The scheduler speedup ratio keeps a
#: much tighter fraction than raw throughputs: it is a ratio of two
#: same-machine runs, so machine noise largely cancels, and the point of
#: the gate is that the wheel stays decisively ahead of the heap.
FLOOR_METRICS = {
    "fig4_allreduce.events_per_sec": 0.2,
    "fig4_allreduce.packets_per_sec": 0.2,
    "sim_scale.sched_events_per_sec_heap": 0.2,
    "sim_scale.sched_events_per_sec_wheel": 0.2,
    "sim_scale.sched_speedup_x": 0.7,
    "sim_scale.fattree_events_per_sec": 0.2,
    "sim_scale.fattree_packets_per_sec": 0.2,
}

#: overhead metrics get one-sided ceiling budgets (pass at or below);
#: --update sets ceiling = measured * headroom. Wall-clock ceilings
#: (deploy_check) get a much larger headroom than deterministic
#: byte/event counts because CI machines are noisy.
CEILING_METRICS = {
    "fig4_allreduce_obs.peak_resident_events": 1.5,
    "fig4_allreduce_obs.bytes_written": 1.5,
    "deploy_check.wall_s": 6.0,
    "proto_check.wall_s": 6.0,
}


def _switch_packets(network) -> int:
    from repro.net.pisanode import PisaSwitchNode

    return sum(
        node.stats.processed
        for node in network.nodes.values()
        if isinstance(node, PisaSwitchNode)
    )


def measure() -> tuple:
    """The fast bench subset: ``(metrics, profile_report)`` -- a flat
    {metric: deterministic value} dict plus the profiled round's
    ``repro.profile/1`` document (for --history regression naming)."""
    from repro.apps.allreduce import AllReduceJob
    from repro.apps.telemetry import TelemetryCluster
    from repro.apps.workloads import random_arrays
    from repro.obs import IntConfig, Observability

    out = {}

    # -- Fig 4 AllReduce, one INC round, untraced (the fast path) ----------
    job = AllReduceJob(4, 512, 8)
    arrays = random_arrays(4, 512, seed=4)
    results, elapsed = job.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    net = job.cluster.network
    out["fig4_allreduce.completion_us"] = round(elapsed * 1e6, 3)
    out["fig4_allreduce.link_bytes"] = net.total_bytes_on_links()
    out["fig4_allreduce.switch_packets"] = _switch_packets(net)
    out["fig4_allreduce.sim_events"] = net.sim.events_processed

    # -- the same round profiled: throughput floors (wall-clock) ----------
    from repro.obs import Profiler

    profiler = Profiler()
    job_prof = AllReduceJob(4, 512, 8, obs=Observability(profiler=profiler))
    results, _ = job_prof.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    out["fig4_allreduce.events_per_sec"] = round(profiler.events_per_sec())
    out["fig4_allreduce.packets_per_sec"] = round(profiler.packets_per_sec())
    profile_report = profiler.report()

    # -- the same round sampled + streamed: the observer's own overhead --
    import tempfile

    from repro.obs import JsonlSink, Tracer, TraceSampler

    with tempfile.TemporaryDirectory() as tmp:
        tracer = Tracer(
            sampler=TraceSampler(rate=0.1, max_pending=256), retain=False
        )
        tracer.add_stream(
            JsonlSink(str(Path(tmp) / "obs.trace.jsonl"), shard_events=2000)
        )
        job_obs = AllReduceJob(4, 512, 8, obs=Observability(tracer=tracer))
        results, _ = job_obs.run_round(arrays)
        assert results[0] == AllReduceJob.expected(arrays)
        tracer.close()
        stats = tracer.stats()
    out["fig4_allreduce_obs.events_recorded"] = stats["events_recorded"]
    out["fig4_allreduce_obs.events_sampled_out"] = stats["events_sampled_out"]
    out["fig4_allreduce_obs.bytes_written"] = stats["bytes_written"]
    out["fig4_allreduce_obs.peak_resident_events"] = stats[
        "peak_resident_events"
    ]

    # -- the same round with INT stamping on: the telemetry byte tax ------
    obs = Observability(int_config=IntConfig(max_hops=8))
    job_int = AllReduceJob(4, 512, 8, obs=obs)
    results, elapsed = job_int.run_round(arrays)
    assert results[0] == AllReduceJob.expected(arrays)
    out["fig4_allreduce_int.completion_us"] = round(elapsed * 1e6, 3)
    out["fig4_allreduce_int.link_bytes"] = (
        job_int.cluster.network.total_bytes_on_links()
    )
    snap = obs.snapshot()
    out["fig4_allreduce_int.int_records"] = sum(
        s["value"] for s in snap["int.records"]["series"]
    )

    # -- whole-fabric deployment check: 64 switches, 8 tenants ------------
    if str(REPO) not in sys.path:
        sys.path.insert(0, str(REPO))
    from benchmarks.bench_deploy_check import measure_deploy_check

    out.update(measure_deploy_check())

    # -- transport-safety sweep: every shipped program proved replay-safe -
    from benchmarks.bench_proto_check import measure_proto_check

    out.update(measure_proto_check())

    # -- datacenter-scale smoke: scheduler churn + k=8 fat-tree push ------
    # (>=100k packets; the full >=1M-packet run is
    # `python benchmarks/bench_sim_scale.py` without --smoke)
    from benchmarks.bench_sim_scale import measure_sim_scale

    out.update(measure_sim_scale(smoke=True))

    # -- two-switch flow telemetry (SPMD path), untraced ------------------
    cluster = TelemetryCluster(n_senders=2, slots=16, hh_threshold=3)
    for _ in range(6):
        cluster.send_flows(0, [5])
    cluster.send_flows(1, [1, 2, 3])
    assert cluster.heavy_hitters() == [5]
    out["telemetry.windows_seen"] = cluster.total_seen()
    out["telemetry.link_bytes"] = (
        cluster.cluster.network.total_bytes_on_links()
    )
    return out, profile_report


def load_budgets() -> dict:
    with open(BUDGETS_PATH) as fp:
        data = json.load(fp)
    if data.get("schema") != SCHEMA:
        raise SystemExit(
            f"error: {BUDGETS_PATH} has schema {data.get('schema')!r}, "
            f"expected {SCHEMA!r}"
        )
    return data


def check(measured: dict, budgets: dict, floor_failures=None) -> int:
    """Gate *measured* against *budgets*; 0 on pass. Failed floor-kind
    metric names are appended to *floor_failures* (when given) so the
    caller can run the --history profile diff for exactly those."""
    failures = []
    rows = []
    entries = budgets["metrics"]
    for name in sorted(set(measured) | set(entries)):
        if name not in entries:
            failures.append(f"{name}: measured but not budgeted; run --update")
            continue
        if name not in measured:
            failures.append(f"{name}: budgeted but no longer measured")
            continue
        entry = entries[name]
        budget = entry["budget"]
        value = measured[name]
        if entry.get("kind") == "floor":
            ok = value >= budget
            rows.append((name, budget, value, "  >=", "ok" if ok else "FAIL"))
            if not ok:
                failures.append(
                    f"{name}: measured {value} below floor {budget}"
                )
                if floor_failures is not None:
                    floor_failures.append(name)
            continue
        if entry.get("kind") == "ceiling":
            ok = value <= budget
            rows.append((name, budget, value, "  <=", "ok" if ok else "FAIL"))
            if not ok:
                failures.append(
                    f"{name}: measured {value} above ceiling {budget} "
                    "(observer overhead grew; if intentional, --update)"
                )
            continue
        tol_pct = entry.get("tolerance_pct", DEFAULT_TOLERANCE_PCT)
        allowed = abs(budget) * tol_pct / 100.0
        delta = value - budget
        ok = abs(delta) <= allowed
        rows.append((name, budget, value, f"{tol_pct:g}%", "ok" if ok else "FAIL"))
        if not ok:
            failures.append(
                f"{name}: measured {value} vs budget {budget} "
                f"(|delta| {abs(delta):g} > allowed {allowed:g})"
            )
    width = max(len(r[0]) for r in rows) if rows else 10
    print(f"{'metric':<{width}}  {'budget':>14}  {'measured':>14}  tol   status")
    for name, budget, value, tol, status in rows:
        print(f"{name:<{width}}  {budget:>14}  {value:>14}  {tol:>4}  {status}")
    if failures:
        print("\nbudget check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbudget check passed ({len(rows)} metrics)")
    return 0


def update(measured: dict) -> None:
    # Preserve any hand-tuned tolerances across regeneration.
    old = {}
    if BUDGETS_PATH.exists():
        old = load_budgets().get("metrics", {})
    data = {
        "schema": SCHEMA,
        "comment": (
            "Deterministic simulated metrics from the fast bench subset "
            "(benchmarks/check_budget.py). Regenerate with --update after "
            "an intentional perf-relevant change."
        ),
        "metrics": {},
    }
    for name in sorted(measured):
        if name in FLOOR_METRICS:
            floor = measured[name] * FLOOR_METRICS[name]
            data["metrics"][name] = {
                "budget": round(floor, 2)
                if isinstance(measured[name], float)
                else int(floor),
                "kind": "floor",
            }
        elif name in CEILING_METRICS:
            ceiling = measured[name] * CEILING_METRICS[name]
            data["metrics"][name] = {
                "budget": round(ceiling, 4)
                if isinstance(measured[name], float)
                else int(ceiling),
                "kind": "ceiling",
            }
        else:
            data["metrics"][name] = {
                "budget": measured[name],
                "tolerance_pct": old.get(name, {}).get(
                    "tolerance_pct", DEFAULT_TOLERANCE_PCT
                ),
            }
    with open(BUDGETS_PATH, "w") as fp:
        json.dump(data, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {BUDGETS_PATH} ({len(measured)} metrics)")


def _history_runs(history_dir: Path):
    return sorted(history_dir.glob("run-*.json"))


def _append_history(history_dir: Path, measured: dict, profile: dict) -> Path:
    history_dir.mkdir(parents=True, exist_ok=True)
    runs = _history_runs(history_dir)
    next_n = 0
    if runs:
        next_n = max(int(p.stem.split("-")[1]) for p in runs) + 1
    path = history_dir / f"run-{next_n:04d}.json"
    with open(path, "w") as fp:
        json.dump(
            {"measured": measured, "profile": profile},
            fp, indent=2, sort_keys=True,
        )
        fp.write("\n")
    return path


def _name_regressions(history_dir: Path, profile: dict) -> None:
    """A floor failed: diff this run's profile against the previous
    history entry's and say which handlers got slower."""
    from repro.obs.diff import diff_profile

    runs = _history_runs(history_dir)
    if not runs:
        print("(no prior run in --history dir to diff against)",
              file=sys.stderr)
        return
    with open(runs[-1]) as fp:
        prev = json.load(fp)
    section = diff_profile(prev.get("profile", {}), profile)
    regressed = section.get("top_regressed") or []
    if not regressed:
        print(f"(no handler wall-time regression vs {runs[-1].name}; "
              "floor failure is likely machine noise)", file=sys.stderr)
        return
    print(f"\nhandlers regressed vs {runs[-1].name}:", file=sys.stderr)
    for entry in regressed[:5]:
        pct = f" ({entry['pct']:+g}%)" if "pct" in entry else ""
        print(
            f"  {entry['label']}: {entry['a_wall_s']:.6f}s -> "
            f"{entry['b_wall_s']:.6f}s{pct}",
            file=sys.stderr,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate budgets.json from the current measurement",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the measured metrics as JSON and exit",
    )
    parser.add_argument(
        "--history", metavar="DIR",
        help="append this run to a history ledger; on a floor failure, "
        "diff profiles against the previous run and name the regressed "
        "handlers",
    )
    args = parser.parse_args(argv)
    measured, profile = measure()
    if args.json:
        print(json.dumps(measured, indent=2, sort_keys=True))
        if args.history:
            _append_history(Path(args.history), measured, profile)
        return 0
    if args.update:
        update(measured)
        return 0
    if not BUDGETS_PATH.exists():
        print(
            f"error: {BUDGETS_PATH} missing; create it with --update",
            file=sys.stderr,
        )
        return 1
    floor_failures: list = []
    rc = check(measured, load_budgets(), floor_failures)
    if args.history:
        history_dir = Path(args.history)
        if floor_failures:
            _name_regressions(history_dir, profile)
        _append_history(history_dir, measured, profile)
    return rc


if __name__ == "__main__":
    sys.exit(main())
