"""Make `benchmarks._util` importable and collect bench_*.py files."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

collect_ignore_glob = []
